//! Parallel experiment sweeps: run one [`Experiment`] shape across a grid of
//! configurations, fanned out over OS threads.
//!
//! The paper's core workflow — DS-Analyzer what-if analysis and HP search
//! over dozens of configurations (§3.4, §5.3) — is inherently a *sweep*: the
//! same simulation repeated across a grid of cache sizes, vCPU counts, batch
//! sizes and storage profiles.  This module makes that a first-class object:
//!
//! * [`ExperimentSpec`] — the plain-data mirror of the [`Experiment`]
//!   builder (server, jobs, scenario, epochs), cloneable and sendable across
//!   threads;
//! * [`Axis`] — one named sweep dimension: a list of labelled mutations of an
//!   [`ExperimentSpec`] (set the cache fraction, swap the loader, change the
//!   server count, …);
//! * [`SweepSpec`] — a base spec plus axes, combined
//!   [cartesian](GridMode::Cartesian) (every combination) or
//!   [zipped](GridMode::Zipped) (axes advance in lockstep);
//! * [`SweepRunner`] — fans the grid out across worker threads and collects
//!   a [`SweepReport`].  Results are keyed by grid index, so the report is
//!   **deterministic**: a parallel run is bit-identical to a serial run of
//!   the same grid, in the same order.  A panicking grid point fails that
//!   point ([`SweepPoint::outcome`] is `Err`), not the sweep.
//!
//! ```
//! use pipeline::sweep::{Axis, ExperimentSpec, SweepRunner, SweepSpec};
//! use pipeline::{JobSpec, LoaderConfig, ServerConfig};
//! use dataset::DatasetSpec;
//! use gpu::ModelKind;
//!
//! let dataset = DatasetSpec::imagenet_1k().scaled(4000);
//! let bytes = dataset.total_bytes();
//! let job = JobSpec::new(
//!     ModelKind::ResNet18,
//!     dataset,
//!     8,
//!     LoaderConfig::coordl_best(ModelKind::ResNet18),
//! );
//! let base = ExperimentSpec::new(ServerConfig::config_ssd_v100(), job);
//!
//! let mut cache = Axis::new("cache");
//! for pct in [25u32, 50, 100] {
//!     cache = cache.value(format!("{pct}%"), move |spec| {
//!         spec.server = spec.server.with_cache_fraction(bytes, pct as f64 / 100.0);
//!     });
//! }
//!
//! let report = SweepRunner::new().run(&SweepSpec::new("cache-sweep", base).axis(cache));
//! assert_eq!(report.points.len(), 3);
//! for (label, sim) in report.reports() {
//!     println!("{label}: {:.0} samples/s", sim.steady_samples_per_sec());
//! }
//! ```

use crate::config::ServerConfig;
use crate::engine::EngineScratch;
use crate::experiment::{CacheSpec, Experiment, Scenario, SimReport};
use crate::job::JobSpec;
use crate::json;
use std::fmt;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Arc};

/// A fully-described experiment ready to run: the plain-data counterpart of
/// the [`Experiment`] builder (everything except the observer), so sweeps can
/// clone it, mutate it per grid point and ship it across threads.
#[derive(Debug, Clone, PartialEq)]
pub struct ExperimentSpec {
    /// The server configuration.
    pub server: ServerConfig,
    /// The job list (a single template job for symmetric scenarios).
    pub jobs: Vec<JobSpec>,
    /// The scenario shape.
    pub scenario: Scenario,
    /// The cache hierarchy every storage node runs.
    pub cache: CacheSpec,
    /// Number of simulated epochs.
    pub epochs: u64,
}

impl ExperimentSpec {
    /// A single-job spec with the [`Experiment`] defaults:
    /// [`Scenario::SingleServer`], [`CacheSpec::DramOnly`], 3 epochs.
    pub fn new(server: ServerConfig, job: JobSpec) -> Self {
        ExperimentSpec {
            server,
            jobs: vec![job],
            scenario: Scenario::SingleServer,
            cache: CacheSpec::DramOnly,
            epochs: 3,
        }
    }

    /// Run this spec through the [`Experiment`] builder.
    ///
    /// # Panics
    /// Panics exactly where [`Experiment::run`] does (invalid
    /// configurations); [`SweepRunner`] isolates such panics per grid point.
    pub fn run(&self) -> SimReport {
        self.run_with(&mut EngineScratch::default(), false)
    }

    /// Like [`ExperimentSpec::run`], but reusing `scratch` for all per-epoch
    /// working memory and, when `exact_engine` is set, forcing the exact
    /// cache-chain engine where the vectorized MinIO fast path would apply.
    /// Bit-identical to [`ExperimentSpec::run`] in both dimensions.
    pub fn run_with(&self, scratch: &mut EngineScratch, exact_engine: bool) -> SimReport {
        Experiment::on(&self.server)
            .jobs(self.jobs.iter().cloned())
            .scenario(self.scenario)
            .cache(self.cache)
            .epochs(self.epochs)
            .scratch(scratch)
            .exact_engine(exact_engine)
            .run()
    }
}

/// The mutation one axis value applies to an [`ExperimentSpec`].
type AxisApply = Arc<dyn Fn(&mut ExperimentSpec) + Send + Sync>;

/// One named sweep dimension: an ordered list of labelled spec mutations.
///
/// Axis values are applied in the order the axes were added to the
/// [`SweepSpec`], so a later axis observes the mutations of earlier ones
/// (e.g. a `loader` axis rewriting the job list a `width` axis created).
#[derive(Clone)]
pub struct Axis {
    name: String,
    values: Vec<(String, AxisApply)>,
}

impl Axis {
    /// An empty axis named `name` (e.g. `"cache"`, `"vcpus"`).
    pub fn new(name: impl Into<String>) -> Self {
        Axis {
            name: name.into(),
            values: Vec::new(),
        }
    }

    /// Add one labelled value (builder style).
    pub fn value(
        mut self,
        label: impl Into<String>,
        apply: impl Fn(&mut ExperimentSpec) + Send + Sync + 'static,
    ) -> Self {
        self.push_value(label, apply);
        self
    }

    /// Add one labelled value in place (loop style).
    pub fn push_value(
        &mut self,
        label: impl Into<String>,
        apply: impl Fn(&mut ExperimentSpec) + Send + Sync + 'static,
    ) {
        self.values.push((label.into(), Arc::new(apply)));
    }

    /// The axis name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of values on this axis.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the axis has no values yet.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// The value labels, in order.
    pub fn labels(&self) -> impl Iterator<Item = &str> {
        self.values.iter().map(|(l, _)| l.as_str())
    }
}

impl fmt::Debug for Axis {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Axis")
            .field("name", &self.name)
            .field("labels", &self.labels().collect::<Vec<_>>())
            .finish()
    }
}

/// How a [`SweepSpec`]'s axes combine into a grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GridMode {
    /// Every combination of axis values (the default).  The first axis is the
    /// slowest-varying, the last the fastest.
    Cartesian,
    /// All axes advance in lockstep (they must have equal lengths): point `i`
    /// takes value `i` of every axis.
    Zipped,
}

/// A named sweep: a base [`ExperimentSpec`] plus the axes to vary.
#[derive(Debug, Clone)]
pub struct SweepSpec {
    name: String,
    base: ExperimentSpec,
    axes: Vec<Axis>,
    mode: GridMode,
}

impl SweepSpec {
    /// A cartesian sweep named `name` around `base`.  With no axes the grid
    /// is the single base point.
    pub fn new(name: impl Into<String>, base: ExperimentSpec) -> Self {
        SweepSpec {
            name: name.into(),
            base,
            axes: Vec::new(),
            mode: GridMode::Cartesian,
        }
    }

    /// Add a sweep axis.
    ///
    /// # Panics
    /// Panics on an empty axis or a duplicate axis name.
    pub fn axis(mut self, axis: Axis) -> Self {
        assert!(!axis.is_empty(), "axis {:?} has no values", axis.name);
        assert!(
            self.axes.iter().all(|a| a.name != axis.name),
            "duplicate axis name {:?}",
            axis.name
        );
        self.axes.push(axis);
        self
    }

    /// Combine the axes in lockstep instead of cartesian.
    ///
    /// # Panics
    /// Panics (here or in [`points`](SweepSpec::points)) if the axes do not
    /// all have the same length.
    pub fn zipped(mut self) -> Self {
        self.mode = GridMode::Zipped;
        self.assert_zippable();
        self
    }

    fn assert_zippable(&self) {
        if self.mode == GridMode::Zipped {
            if let Some(first) = self.axes.first() {
                for a in &self.axes {
                    assert_eq!(
                        a.len(),
                        first.len(),
                        "zipped axes must have equal lengths ({:?} has {}, {:?} has {})",
                        first.name,
                        first.len(),
                        a.name,
                        a.len()
                    );
                }
            }
        }
    }

    /// The sweep name (used in reports and JSON).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The grid combination mode.
    pub fn mode(&self) -> GridMode {
        self.mode
    }

    /// Number of grid points.
    pub fn num_points(&self) -> usize {
        match self.mode {
            GridMode::Cartesian => self.axes.iter().map(Axis::len).product(),
            GridMode::Zipped => self.axes.first().map_or(1, Axis::len),
        }
    }

    /// Materialise the grid: every point's label and fully-applied spec, in
    /// deterministic grid order.
    pub fn points(&self) -> Vec<(PointLabel, ExperimentSpec)> {
        self.assert_zippable();
        let n = self.num_points();
        (0..n)
            .map(|index| {
                // Per-axis value indices for this grid point (cartesian:
                // last axis fastest; zipped: every axis at `index`).
                let mut idxs = vec![0usize; self.axes.len()];
                match self.mode {
                    GridMode::Cartesian => {
                        let mut rest = index;
                        for (i, axis) in self.axes.iter().enumerate().rev() {
                            idxs[i] = rest % axis.len();
                            rest /= axis.len();
                        }
                    }
                    GridMode::Zipped => idxs.iter_mut().for_each(|i| *i = index),
                }
                let mut spec = self.base.clone();
                let mut coords = Vec::with_capacity(self.axes.len());
                for (axis, &vi) in self.axes.iter().zip(&idxs) {
                    let (label, apply) = &axis.values[vi];
                    coords.push((axis.name.clone(), label.clone()));
                    apply(&mut spec);
                }
                (PointLabel { index, coords }, spec)
            })
            .collect()
    }
}

/// Where one grid point sits: its index plus its `axis=value` coordinates.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PointLabel {
    /// Position in deterministic grid order (cartesian: first axis slowest).
    pub index: usize,
    /// `(axis name, value label)` pairs, in axis order.
    pub coords: Vec<(String, String)>,
}

impl PointLabel {
    /// The canonical `axis=value,axis=value` label (`"base"` for an axis-less
    /// sweep).
    pub fn label(&self) -> String {
        if self.coords.is_empty() {
            return "base".to_string();
        }
        self.coords
            .iter()
            .map(|(a, v)| format!("{a}={v}"))
            .collect::<Vec<_>>()
            .join(",")
    }
}

impl fmt::Display for PointLabel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label())
    }
}

/// One grid point's result: its label and either the simulation report or the
/// panic message that killed it.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepPoint {
    /// Where the point sits in the grid.
    pub label: PointLabel,
    /// The simulation result, or the panic message if the point panicked.
    pub outcome: Result<SimReport, String>,
}

impl SweepPoint {
    /// The report, if the point succeeded.
    pub fn report(&self) -> Option<&SimReport> {
        self.outcome.as_ref().ok()
    }
}

/// The collected results of one sweep, in deterministic grid order.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepReport {
    /// The sweep's name (from [`SweepSpec::new`]).
    pub name: String,
    /// One entry per grid point, in grid order.
    pub points: Vec<SweepPoint>,
}

impl SweepReport {
    /// Iterate over the successful points as `(label, report)` pairs.
    pub fn reports(&self) -> impl Iterator<Item = (&PointLabel, &SimReport)> {
        self.points
            .iter()
            .filter_map(|p| p.report().map(|r| (&p.label, r)))
    }

    /// The report of the point whose [`PointLabel::label`] equals `label`.
    pub fn get(&self, label: &str) -> Option<&SimReport> {
        self.points
            .iter()
            .find(|p| p.label.label() == label)
            .and_then(SweepPoint::report)
    }

    /// Number of grid points that panicked.
    pub fn num_failed(&self) -> usize {
        self.points.iter().filter(|p| p.outcome.is_err()).count()
    }

    /// Serialise the sweep — every point's label, coordinates and full
    /// [`SimReport`] (or its panic message) — as a JSON object.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(4096);
        out.push_str("{\"sweep\":");
        json::write_string(&mut out, &self.name);
        out.push_str(",\"points\":[");
        for (i, p) in self.points.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"label\":");
            json::write_string(&mut out, &p.label.label());
            out.push_str(",\"coords\":{");
            for (j, (axis, value)) in p.label.coords.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                json::write_string(&mut out, axis);
                out.push(':');
                json::write_string(&mut out, value);
            }
            out.push_str("},\"ok\":");
            out.push_str(if p.outcome.is_ok() { "true" } else { "false" });
            match &p.outcome {
                Ok(report) => {
                    out.push_str(",\"report\":");
                    out.push_str(&report.to_json());
                }
                Err(msg) => {
                    out.push_str(",\"error\":");
                    json::write_string(&mut out, msg);
                }
            }
            out.push('}');
        }
        out.push_str("]}");
        out
    }
}

/// Runs a [`SweepSpec`]'s grid, serially or across OS worker threads.
///
/// Work is handed out through a shared atomic cursor and results come back
/// over a channel keyed by grid index, so the collected [`SweepReport`] is
/// identical — bit for bit, including ordering — no matter how many threads
/// run it or how the scheduler interleaves them.  Each grid point runs under
/// [`std::panic::catch_unwind`]: a panicking point records its panic message
/// and the remaining points still run.
#[derive(Debug, Clone)]
pub struct SweepRunner {
    threads: usize,
    force_exact: bool,
}

impl SweepRunner {
    /// A parallel runner sized to the machine: one worker per available core,
    /// with a floor of two so sweeps overlap compute even on single-core
    /// containers.
    pub fn new() -> Self {
        let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
        SweepRunner {
            threads: cores.max(2),
            force_exact: false,
        }
    }

    /// A serial runner: the grid runs inline on the calling thread (still
    /// panic-isolated per point).
    pub fn serial() -> Self {
        SweepRunner {
            threads: 1,
            force_exact: false,
        }
    }

    /// A runner with exactly `threads` workers.
    ///
    /// # Panics
    /// Panics if `threads` is zero.
    pub fn with_threads(threads: usize) -> Self {
        assert!(threads >= 1, "need at least one worker thread");
        SweepRunner {
            threads,
            force_exact: false,
        }
    }

    /// Force every grid point through the exact cache-chain engine, even
    /// where the vectorized MinIO fast path applies (default `false`).  The
    /// two engines are bit-identical; the `mega-sweep` throughput gate runs
    /// the same grid both ways to prove it and to measure the speedup.
    pub fn force_exact(mut self, exact: bool) -> Self {
        self.force_exact = exact;
        self
    }

    /// The number of worker threads this runner uses.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Run every grid point of `spec` and collect the results in grid order.
    pub fn run(&self, spec: &SweepSpec) -> SweepReport {
        let points = spec.points();
        let n = points.len();
        let mut outcomes: Vec<Option<Result<SimReport, String>>> = (0..n).map(|_| None).collect();

        let workers = self.threads.min(n).max(1);
        let exact = self.force_exact;
        if workers <= 1 {
            // One scratch for the whole grid: per-point state is fully
            // re-initialised, so reuse is bit-identical to fresh allocation.
            let mut scratch = EngineScratch::default();
            for ((_, point), slot) in points.iter().zip(outcomes.iter_mut()) {
                *slot = Some(run_point(point, &mut scratch, exact));
            }
        } else {
            let cursor = AtomicUsize::new(0);
            let (tx, rx) = mpsc::channel::<(usize, Result<SimReport, String>)>();
            let points = &points;
            let cursor = &cursor;
            std::thread::scope(|scope| {
                for _ in 0..workers {
                    let tx = tx.clone();
                    scope.spawn(move || {
                        // One scratch per worker, reused across its points.
                        let mut scratch = EngineScratch::default();
                        loop {
                            let i = cursor.fetch_add(1, Ordering::SeqCst);
                            if i >= n {
                                break;
                            }
                            let outcome = run_point(&points[i].1, &mut scratch, exact);
                            if tx.send((i, outcome)).is_err() {
                                break;
                            }
                        }
                    });
                }
                drop(tx);
                for (i, outcome) in rx {
                    outcomes[i] = Some(outcome);
                }
            });
        }

        SweepReport {
            name: spec.name().to_string(),
            points: points
                .into_iter()
                .zip(outcomes)
                .map(|((label, _), outcome)| SweepPoint {
                    label,
                    outcome: outcome.expect("every grid point reports exactly once"),
                })
                .collect(),
        }
    }
}

impl Default for SweepRunner {
    fn default() -> Self {
        SweepRunner::new()
    }
}

/// Run one grid point, converting a panic into an `Err` message.  The
/// scratch is safe to reuse after a panic: every run re-initialises all the
/// scratch state it reads.
fn run_point(
    spec: &ExperimentSpec,
    scratch: &mut EngineScratch,
    exact_engine: bool,
) -> Result<SimReport, String> {
    panic::catch_unwind(AssertUnwindSafe(|| spec.run_with(scratch, exact_engine))).map_err(
        |payload| {
            if let Some(s) = payload.downcast_ref::<&str>() {
                (*s).to_string()
            } else if let Some(s) = payload.downcast_ref::<String>() {
                s.clone()
            } else {
                "grid point panicked".to_string()
            }
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loader::LoaderConfig;
    use dataset::DatasetSpec;
    use gpu::ModelKind;

    fn tiny_base() -> ExperimentSpec {
        let ds = DatasetSpec::imagenet_1k().scaled(8000);
        let server = ServerConfig::config_ssd_v100().with_cache_fraction(ds.total_bytes(), 0.5);
        let job = JobSpec::new(
            ModelKind::ResNet18,
            ds,
            8,
            LoaderConfig::coordl_best(ModelKind::ResNet18),
        );
        let mut spec = ExperimentSpec::new(server, job);
        spec.epochs = 2;
        spec
    }

    fn cache_axis(fractions: &[u32]) -> Axis {
        let mut axis = Axis::new("cache");
        for &pct in fractions {
            axis.push_value(format!("{pct}%"), move |spec: &mut ExperimentSpec| {
                let bytes = spec.jobs[0].dataset.total_bytes();
                spec.server = spec.server.with_cache_fraction(bytes, pct as f64 / 100.0);
            });
        }
        axis
    }

    #[test]
    fn cartesian_grid_orders_first_axis_slowest() {
        let spec = SweepSpec::new("grid", tiny_base())
            .axis(cache_axis(&[25, 75]))
            .axis(
                Axis::new("epochs")
                    .value("e1", |s| s.epochs = 1)
                    .value("e2", |s| s.epochs = 2),
            );
        assert_eq!(spec.num_points(), 4);
        let labels: Vec<String> = spec.points().iter().map(|(l, _)| l.label()).collect();
        assert_eq!(
            labels,
            [
                "cache=25%,epochs=e1",
                "cache=25%,epochs=e2",
                "cache=75%,epochs=e1",
                "cache=75%,epochs=e2"
            ]
        );
        let points = spec.points();
        assert_eq!(points[0].1.epochs, 1);
        assert_eq!(points[3].1.epochs, 2);
    }

    #[test]
    fn zipped_grid_advances_axes_in_lockstep() {
        let spec = SweepSpec::new("zip", tiny_base())
            .axis(cache_axis(&[25, 75]))
            .axis(
                Axis::new("epochs")
                    .value("e1", |s| s.epochs = 1)
                    .value("e2", |s| s.epochs = 2),
            )
            .zipped();
        assert_eq!(spec.num_points(), 2);
        let labels: Vec<String> = spec.points().iter().map(|(l, _)| l.label()).collect();
        assert_eq!(labels, ["cache=25%,epochs=e1", "cache=75%,epochs=e2"]);
    }

    #[test]
    #[should_panic(expected = "equal lengths")]
    fn zipped_rejects_mismatched_axes() {
        let _ = SweepSpec::new("bad", tiny_base())
            .axis(cache_axis(&[25, 75]))
            .axis(Axis::new("epochs").value("e1", |s| s.epochs = 1))
            .zipped();
    }

    #[test]
    fn axisless_sweep_runs_the_single_base_point() {
        let report = SweepRunner::serial().run(&SweepSpec::new("solo", tiny_base()));
        assert_eq!(report.points.len(), 1);
        assert_eq!(report.points[0].label.label(), "base");
        assert!(report.points[0].report().is_some());
    }

    #[test]
    fn later_axes_observe_earlier_mutations() {
        // A width axis builds the job list; a loader axis rewrites it.
        let base = tiny_base();
        let spec = SweepSpec::new("order", base)
            .axis(Axis::new("width").value("2-jobs", |s| {
                let template = s.jobs[0].clone();
                let mut t = template.clone();
                t.num_gpus = 4;
                s.jobs = vec![t.clone(), t.with_seed(7)];
                s.scenario = Scenario::HpSearch { jobs: 2 };
            }))
            .axis(Axis::new("loader").value("pytorch", |s| {
                for j in &mut s.jobs {
                    j.loader = LoaderConfig::pytorch_dl();
                }
            }));
        let points = spec.points();
        assert_eq!(points.len(), 1);
        let spec = &points[0].1;
        assert_eq!(spec.jobs.len(), 2, "width axis ran first");
        assert!(
            spec.jobs
                .iter()
                .all(|j| j.loader == LoaderConfig::pytorch_dl()),
            "loader axis saw the width axis's job list"
        );
    }

    #[test]
    fn sweep_json_is_parseable_even_with_hostile_labels() {
        let base = tiny_base();
        let spec = SweepSpec::new("quo\"te\\sweep", base)
            .axis(Axis::new("a\"x").value("v\\1", |s| s.epochs = 1));
        let report = SweepRunner::serial().run(&spec);
        let doc = json::parse(&report.to_json()).expect("SweepReport JSON must be valid");
        assert_eq!(
            doc.get("sweep").and_then(json::Value::as_str),
            Some("quo\"te\\sweep")
        );
        let points = doc.get("points").and_then(json::Value::as_array).unwrap();
        assert_eq!(
            points[0].get("label").and_then(json::Value::as_str),
            Some("a\"x=v\\1")
        );
    }

    #[test]
    fn get_finds_points_by_label() {
        let report = SweepRunner::serial()
            .run(&SweepSpec::new("find", tiny_base()).axis(cache_axis(&[25, 75])));
        assert!(report.get("cache=75%").is_some());
        assert!(report.get("cache=5%").is_none());
        assert_eq!(report.num_failed(), 0);
    }
}
