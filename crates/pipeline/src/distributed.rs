//! Multi-server distributed data-parallel training (§3.3.1, §4.2, §5.2).
//!
//! Each epoch the dataset is split into random, disjoint per-server shards
//! that change every epoch, so without coordination a server keeps re-reading
//! items from its local storage even when a peer has them cached.  CoorDL's
//! partitioned cache registers which server's MinIO cache holds each item and
//! serves local misses from the remote cache over the commodity network
//! instead of local storage: beyond the first epoch the dataset is read from
//! storage at most once for the entire job.

use crate::config::ServerConfig;
use crate::engine::{
    access_pattern, compute_secs_for_batch, prep_secs_for_batch, BatchFetch, EpochAccumulator,
};
use crate::job::JobSpec;
use crate::metrics::{EpochMetrics, RunResult};
use dataset::{minibatches, EpochSampler, ItemId};
use dcache::{Location, PartitionedIndex, ServerId};
use netsim::Fabric;
use prep::PrepCostModel;
use simkit::SimTime;
use storage::{FetchSource, StorageNode, DRAM_BANDWIDTH_BYTES_PER_SEC};

const IO_BINS: usize = 40;

/// Result of a distributed-training simulation.
#[derive(Debug, Clone, Default)]
pub struct DistributedResult {
    /// Per-server run results.
    pub per_server: Vec<RunResult>,
    /// Bytes fetched over the network per epoch, summed over servers.
    pub remote_bytes_per_epoch: Vec<u64>,
}

impl DistributedResult {
    /// Steady-state epoch time of the job: servers synchronise at every
    /// iteration, so the slowest server sets the pace.
    pub fn steady_epoch_seconds(&self) -> f64 {
        self.per_server
            .iter()
            .map(|r| r.steady_state().epoch_seconds())
            .fold(0.0, f64::max)
    }

    /// Steady-state job throughput in samples/second (whole job, all servers).
    pub fn steady_samples_per_sec(&self) -> f64 {
        let samples: u64 = self
            .per_server
            .iter()
            .map(|r| r.steady_state().samples)
            .sum();
        samples as f64 / self.steady_epoch_seconds()
    }

    /// Per-server disk I/O in the given epoch, in bytes.
    pub fn disk_bytes_per_server(&self, epoch: usize) -> Vec<u64> {
        self.per_server
            .iter()
            .map(|r| r.epochs[epoch].bytes_from_disk)
            .collect()
    }

    /// Speedup over a baseline distributed run in job throughput.
    pub fn speedup_over(&self, baseline: &DistributedResult) -> f64 {
        self.steady_samples_per_sec() / baseline.steady_samples_per_sec()
    }

    /// Average network receive bandwidth per server in Gbit/s during the
    /// given epoch (paper §5.5 reports CoorDL uses ~5.7 Gbps of the 40 Gbps).
    pub fn avg_network_gbps(&self, epoch: usize) -> f64 {
        let secs = self
            .per_server
            .iter()
            .map(|r| r.epochs[epoch].epoch_seconds())
            .fold(0.0, f64::max);
        if secs == 0.0 {
            return 0.0;
        }
        let per_server_bytes = self
            .per_server
            .iter()
            .map(|r| r.epochs[epoch].bytes_from_remote as f64)
            .sum::<f64>()
            / self.per_server.len() as f64;
        per_server_bytes * 8.0 / secs / 1e9
    }
}

/// Simulate `epochs` epochs of one data-parallel job spread over
/// `num_servers` identical servers (each contributing `job.num_gpus` GPUs).
pub fn simulate_distributed(
    server: &ServerConfig,
    job: &JobSpec,
    num_servers: usize,
    epochs: u64,
) -> DistributedResult {
    assert!(num_servers >= 1, "need at least one server");
    assert!(epochs > 0, "need at least one epoch");
    assert!(
        job.num_gpus <= server.num_gpus,
        "job wants {} GPUs per server but servers have {}",
        job.num_gpus,
        server.num_gpus
    );

    let partitioned = job.loader.partitioned_cache;
    let mut nodes: Vec<StorageNode> = (0..num_servers)
        .map(|_| {
            StorageNode::new(
                server.device,
                job.loader.cache_policy,
                server.dram_cache_bytes,
            )
        })
        .collect();
    let mut directory = PartitionedIndex::new(num_servers);
    let mut fabric = Fabric::new(server.link, num_servers);

    let mut result = DistributedResult {
        per_server: vec![RunResult::default(); num_servers],
        remote_bytes_per_epoch: Vec::new(),
    };

    let sampler = EpochSampler::new(job.dataset.num_items, job.seed);
    let cost = PrepCostModel::for_pipeline(&job.pipeline, job.loader.prep_backend);
    let cores = cost.effective_cores(server.cpu_cores as f64, server.cpu_cores as f64);
    let pattern = access_pattern(job);

    for epoch in 0..epochs {
        for node in nodes.iter_mut() {
            node.reset_epoch_stats();
        }
        fabric.reset();
        let mut epoch_metrics: Vec<EpochMetrics> = Vec::with_capacity(num_servers);
        let mut epoch_remote = 0u64;

        // Per-server shards for this epoch (random, disjoint, epoch-varying).
        let shards: Vec<Vec<ItemId>> = (0..num_servers)
            .map(|s| sampler.distributed_shard(epoch, s, num_servers))
            .collect();

        for (s, shard) in shards.iter().enumerate() {
            let me = ServerId(s);
            let node = &mut nodes[s];
            let batches = minibatches(shard, job.global_batch());
            let mut acc = EpochAccumulator::new(epoch, job.loader.prefetch_depth);

            for batch in &batches {
                let now = acc.now();
                let bf = if partitioned {
                    fetch_batch_partitioned(
                        node,
                        &mut directory,
                        &mut fabric,
                        me,
                        now,
                        batch,
                        job,
                        num_servers,
                    )
                } else {
                    // Uncoordinated: every miss goes to local storage.
                    crate::engine::fetch_batch_local(
                        node,
                        now,
                        batch,
                        &job.dataset,
                        job.loader.format,
                        pattern,
                        1.0,
                    )
                };
                let raw_bytes: u64 = batch.iter().map(|&it| job.dataset.item_size(it)).sum();
                let prep = prep_secs_for_batch(job, raw_bytes, cores);
                let compute = compute_secs_for_batch(job, server.gpu, batch.len());
                acc.push_batch(&bf, prep, compute, batch.len() as u64);
            }
            let m = acc.finish(IO_BINS);
            epoch_remote += m.bytes_from_remote;
            epoch_metrics.push(m);
        }

        result.remote_bytes_per_epoch.push(epoch_remote);
        for (s, m) in epoch_metrics.into_iter().enumerate() {
            result.per_server[s].epochs.push(m);
        }
    }
    result
}

/// Fetch one minibatch with CoorDL's partitioned cache: local MinIO cache
/// first, then a peer's cache over the network, then local storage.
#[allow(clippy::too_many_arguments)]
fn fetch_batch_partitioned(
    node: &mut StorageNode,
    directory: &mut PartitionedIndex,
    fabric: &mut Fabric,
    me: ServerId,
    at: SimTime,
    items: &[ItemId],
    job: &JobSpec,
    num_servers: usize,
) -> BatchFetch {
    let mut out = BatchFetch::default();
    let spec = &job.dataset;
    let device = *node.device().profile();
    let pattern = access_pattern(job);
    let mut remote_requests = 0u64;

    for &item in items {
        let bytes = spec.item_size(item);
        match directory.locate(item, me) {
            Location::Local => {
                // Resident in the local MinIO cache.
                let (_, src) = node.fetch(at, item, bytes, pattern);
                debug_assert_eq!(src, FetchSource::Cache);
                out.cache_bytes += bytes;
                out.hits += 1;
            }
            Location::Remote(peer) => {
                fabric.remote_fetch(peer.0, me.0, bytes, num_servers.saturating_sub(1).max(1));
                out.remote_bytes += bytes;
                out.hits += 1;
                remote_requests += 1;
            }
            Location::Storage => {
                // Not cached anywhere yet: read from local storage and, if the
                // local MinIO cache admits it, publish it in the directory.
                let (_, src) = node.fetch(at, item, bytes, pattern);
                debug_assert_eq!(src, FetchSource::Disk);
                out.disk_bytes += bytes;
                out.misses += 1;
                if node.is_cached(&item) {
                    directory.register(item, me);
                }
            }
        }
    }

    let link = fabric.link();
    let per_flow = link.per_flow_bandwidth(num_servers.saturating_sub(1).max(1));
    out.fetch_secs = out.disk_bytes as f64 / device.bandwidth(pattern)
        + out.misses as f64 * device.request_latency_s
        + out.cache_bytes as f64 / DRAM_BANDWIDTH_BYTES_PER_SEC
        + out.remote_bytes as f64 / per_flow
        + if remote_requests > 0 { link.rtt_s } else { 0.0 };
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loader::LoaderConfig;
    use dataset::DatasetSpec;
    use gpu::ModelKind;
    use prep::PrepBackend;

    fn small_openimages() -> DatasetSpec {
        DatasetSpec::openimages_extended().scaled(2000)
    }

    #[test]
    fn partitioned_cache_eliminates_disk_io_when_aggregate_memory_suffices() {
        // §4.2: two servers that can each cache 65 % of the dataset hold it
        // entirely in aggregate, so no disk I/O beyond the first epoch.
        let ds = small_openimages();
        let server =
            ServerConfig::config_hdd_1080ti().with_cache_fraction(ds.total_bytes(), 0.65);
        let job = JobSpec::new(
            ModelKind::AlexNet,
            ds,
            8,
            LoaderConfig::coordl(PrepBackend::DaliGpu),
        );
        let res = simulate_distributed(&server, &job, 2, 3);
        for s in 0..2 {
            assert_eq!(
                res.disk_bytes_per_server(1)[s],
                0,
                "server {s} should read nothing from disk after warm-up"
            );
            assert_eq!(res.disk_bytes_per_server(2)[s], 0);
        }
        // But the warm-up epoch did read from disk.
        assert!(res.disk_bytes_per_server(0).iter().sum::<u64>() > 0);
        // And the network carried roughly half the dataset per epoch.
        assert!(res.remote_bytes_per_epoch[1] > 0);
    }

    #[test]
    fn uncoordinated_distributed_training_keeps_hitting_disk() {
        let ds = small_openimages();
        let server =
            ServerConfig::config_hdd_1080ti().with_cache_fraction(ds.total_bytes(), 0.65);
        let job = JobSpec::new(
            ModelKind::AlexNet,
            ds.clone(),
            8,
            LoaderConfig::dali_shuffle(PrepBackend::DaliGpu),
        );
        let res = simulate_distributed(&server, &job, 2, 3);
        let disk_epoch2: u64 = res.disk_bytes_per_server(2).iter().sum();
        // Each server still reads a sizeable fraction of its shard from disk.
        assert!(
            disk_epoch2 > ds.total_bytes() / 10,
            "expected continued disk I/O, got {disk_epoch2} bytes"
        );
    }

    #[test]
    fn coordl_speeds_up_distributed_training_on_hdd() {
        // Figure 9b: AlexNet on OpenImages across two Config-HDD-1080Ti
        // servers speeds up by an order of magnitude.
        let ds = small_openimages();
        let server =
            ServerConfig::config_hdd_1080ti().with_cache_fraction(ds.total_bytes(), 0.65);
        let model = ModelKind::AlexNet;
        let mk = |loader| JobSpec::new(model, ds.clone(), 8, loader);
        let baseline = simulate_distributed(&server, &mk(LoaderConfig::dali_best(model)), 2, 3);
        let coordl = simulate_distributed(&server, &mk(LoaderConfig::coordl_best(model)), 2, 3);
        let speedup = coordl.speedup_over(&baseline);
        assert!(
            speedup > 5.0,
            "expected order-of-magnitude speedup on HDD, got {speedup:.1}x"
        );
    }

    #[test]
    fn adding_servers_scales_coordl_throughput() {
        // Figure 18: with partitioned caching, going from 2 to 4 servers keeps
        // the job GPU bound, so throughput scales with the GPU count.
        let ds = small_openimages();
        let server =
            ServerConfig::config_hdd_1080ti().with_cache_fraction(ds.total_bytes(), 0.65);
        let job = JobSpec::new(
            ModelKind::ResNet50,
            ds,
            8,
            LoaderConfig::coordl(PrepBackend::DaliCpu),
        );
        let two = simulate_distributed(&server, &job, 2, 3);
        let four = simulate_distributed(&server, &job, 4, 3);
        let scaling = four.steady_samples_per_sec() / two.steady_samples_per_sec();
        assert!(
            scaling > 1.6 && scaling < 2.3,
            "4-server vs 2-server scaling = {scaling:.2}"
        );
    }

    #[test]
    fn network_usage_is_a_fraction_of_the_link() {
        // §5.5: CoorDL used ~5.7 Gbps per server of the 40 Gbps link.
        let ds = small_openimages();
        let server =
            ServerConfig::config_ssd_v100().with_cache_fraction(ds.total_bytes(), 0.65);
        let job = JobSpec::new(
            ModelKind::ResNet50,
            ds,
            8,
            LoaderConfig::coordl(PrepBackend::DaliCpu),
        );
        let res = simulate_distributed(&server, &job, 2, 3);
        let gbps = res.avg_network_gbps(2);
        assert!(gbps > 0.0 && gbps < 36.0, "network use {gbps:.1} Gbps");
    }

    #[test]
    fn single_server_distributed_matches_single_server_shape() {
        // With one server, the distributed driver degenerates to the
        // single-server case (no remote traffic).
        let ds = small_openimages();
        let server = ServerConfig::config_ssd_v100().with_cache_fraction(ds.total_bytes(), 0.5);
        let job = JobSpec::new(
            ModelKind::ResNet18,
            ds,
            8,
            LoaderConfig::coordl(PrepBackend::DaliGpu),
        );
        let res = simulate_distributed(&server, &job, 1, 2);
        assert_eq!(res.remote_bytes_per_epoch[1], 0);
        assert_eq!(res.per_server.len(), 1);
    }
}
