//! Multi-server distributed data-parallel training (§3.3.1, §4.2, §5.2).
//!
//! Each epoch the dataset is split into random, disjoint per-server shards
//! that change every epoch, so without coordination a server keeps re-reading
//! items from its local storage even when a peer has them cached.  CoorDL's
//! partitioned cache registers which server's MinIO cache holds each item and
//! serves local misses from the remote cache over the commodity network
//! instead of local storage: beyond the first epoch the dataset is read from
//! storage at most once for the entire job.
//!
//! The driver lives in [`crate::Experiment`] with
//! [`crate::Scenario::Distributed`]; this module holds the scenario's
//! behavioural tests.  (The legacy `simulate_distributed` shim and its
//! `DistributedResult` type are gone — use the builder and
//! [`crate::SimReport`].)

#[cfg(test)]
mod tests {
    use crate::config::ServerConfig;
    use crate::experiment::{Experiment, Scenario, SimReport};
    use crate::job::JobSpec;
    use crate::loader::LoaderConfig;
    use dataset::DatasetSpec;
    use gpu::ModelKind;
    use prep::PrepBackend;

    fn small_openimages() -> DatasetSpec {
        DatasetSpec::openimages_extended().scaled(2000)
    }

    fn run_distributed(
        server: &ServerConfig,
        job: &JobSpec,
        servers: usize,
        epochs: u64,
    ) -> SimReport {
        Experiment::on(server)
            .job(job.clone())
            .scenario(Scenario::Distributed { servers })
            .epochs(epochs)
            .run()
    }

    #[test]
    fn partitioned_cache_eliminates_disk_io_when_aggregate_memory_suffices() {
        // §4.2: two servers that can each cache 65 % of the dataset hold it
        // entirely in aggregate, so no disk I/O beyond the first epoch.
        let ds = small_openimages();
        let server = ServerConfig::config_hdd_1080ti().with_cache_fraction(ds.total_bytes(), 0.65);
        let job = JobSpec::new(
            ModelKind::AlexNet,
            ds,
            8,
            LoaderConfig::coordl(PrepBackend::DaliGpu),
        );
        let res = run_distributed(&server, &job, 2, 3);
        for s in 0..2 {
            assert_eq!(
                res.disk_bytes_per_server(1)[s],
                0,
                "server {s} should read nothing from disk after warm-up"
            );
            assert_eq!(res.disk_bytes_per_server(2)[s], 0);
        }
        // But the warm-up epoch did read from disk.
        assert!(res.disk_bytes_per_server(0).iter().sum::<u64>() > 0);
        // And the network carried roughly half the dataset per epoch.
        assert!(res.remote_bytes_per_epoch[1] > 0);
    }

    #[test]
    fn uncoordinated_distributed_training_keeps_hitting_disk() {
        let ds = small_openimages();
        let server = ServerConfig::config_hdd_1080ti().with_cache_fraction(ds.total_bytes(), 0.65);
        let job = JobSpec::new(
            ModelKind::AlexNet,
            ds.clone(),
            8,
            LoaderConfig::dali_shuffle(PrepBackend::DaliGpu),
        );
        let res = run_distributed(&server, &job, 2, 3);
        let disk_epoch2: u64 = res.disk_bytes_per_server(2).iter().sum();
        // Each server still reads a sizeable fraction of its shard from disk.
        assert!(
            disk_epoch2 > ds.total_bytes() / 10,
            "expected continued disk I/O, got {disk_epoch2} bytes"
        );
    }

    #[test]
    fn coordl_speeds_up_distributed_training_on_hdd() {
        // Figure 9b: AlexNet on OpenImages across two Config-HDD-1080Ti
        // servers speeds up by an order of magnitude.
        let ds = small_openimages();
        let server = ServerConfig::config_hdd_1080ti().with_cache_fraction(ds.total_bytes(), 0.65);
        let model = ModelKind::AlexNet;
        let mk = |loader| JobSpec::new(model, ds.clone(), 8, loader);
        let baseline = run_distributed(&server, &mk(LoaderConfig::dali_best(model)), 2, 3);
        let coordl = run_distributed(&server, &mk(LoaderConfig::coordl_best(model)), 2, 3);
        let speedup = coordl.speedup_over(&baseline);
        assert!(
            speedup > 5.0,
            "expected order-of-magnitude speedup on HDD, got {speedup:.1}x"
        );
    }

    #[test]
    fn adding_servers_scales_coordl_throughput() {
        // Figure 18: with partitioned caching, going from 2 to 4 servers keeps
        // the job GPU bound, so throughput scales with the GPU count.
        let ds = small_openimages();
        let server = ServerConfig::config_hdd_1080ti().with_cache_fraction(ds.total_bytes(), 0.65);
        let job = JobSpec::new(
            ModelKind::ResNet50,
            ds,
            8,
            LoaderConfig::coordl(PrepBackend::DaliCpu),
        );
        let two = run_distributed(&server, &job, 2, 3);
        let four = run_distributed(&server, &job, 4, 3);
        let scaling = four.steady_samples_per_sec() / two.steady_samples_per_sec();
        assert!(
            scaling > 1.6 && scaling < 2.3,
            "4-server vs 2-server scaling = {scaling:.2}"
        );
    }

    #[test]
    fn network_usage_is_a_fraction_of_the_link() {
        // §5.5: CoorDL used ~5.7 Gbps per server of the 40 Gbps link.
        let ds = small_openimages();
        let server = ServerConfig::config_ssd_v100().with_cache_fraction(ds.total_bytes(), 0.65);
        let job = JobSpec::new(
            ModelKind::ResNet50,
            ds,
            8,
            LoaderConfig::coordl(PrepBackend::DaliCpu),
        );
        let res = run_distributed(&server, &job, 2, 3);
        let gbps = res.avg_network_gbps(2);
        assert!(gbps > 0.0 && gbps < 36.0, "network use {gbps:.1} Gbps");
    }

    fn run_chaos(
        server: &ServerConfig,
        job: &JobSpec,
        servers: usize,
        faults: usize,
        seed: u64,
        epochs: u64,
    ) -> SimReport {
        Experiment::on(server)
            .job(job.clone())
            .scenario(Scenario::PartitionedChaos {
                servers,
                faults,
                seed,
            })
            .epochs(epochs)
            .run()
    }

    #[test]
    fn chaos_healthy_prefix_is_bit_identical_to_distributed() {
        // The fault schedule never fires before epoch 1, so epoch 0 of a
        // chaos run must match Scenario::Distributed byte for byte: same
        // engine, same shards, same directory.
        let ds = small_openimages();
        let server = ServerConfig::config_hdd_1080ti().with_cache_fraction(ds.total_bytes(), 0.65);
        let job = JobSpec::new(
            ModelKind::AlexNet,
            ds,
            8,
            LoaderConfig::coordl(PrepBackend::DaliGpu),
        );
        let healthy = run_distributed(&server, &job, 3, 4);
        let chaos = run_chaos(&server, &job, 3, 2, 42, 4);
        for s in 0..3 {
            assert_eq!(
                chaos.per_server()[s].epochs[0],
                healthy.per_server()[s].epochs[0],
                "server {s}: healthy prefix diverged"
            );
        }
    }

    #[test]
    fn chaos_runs_are_deterministic_and_lose_no_sample() {
        let ds = small_openimages();
        let server = ServerConfig::config_hdd_1080ti().with_cache_fraction(ds.total_bytes(), 0.65);
        let job = JobSpec::new(
            ModelKind::AlexNet,
            ds.clone(),
            8,
            LoaderConfig::coordl(PrepBackend::DaliGpu),
        );
        let a = run_chaos(&server, &job, 3, 3, 7, 5);
        let b = run_chaos(&server, &job, 3, 3, 7, 5);
        assert_eq!(a, b, "chaos runs must be deterministic");
        // Exactly-once accounting: a failed server's consumer keeps training,
        // so every epoch still delivers the whole dataset across the shards.
        for e in 0..5 {
            let samples: u64 = a.per_server().iter().map(|r| r.epochs[e].samples).sum();
            assert_eq!(samples, ds.num_items, "epoch {e} lost or duplicated");
        }
    }

    #[test]
    fn a_kill_costs_disk_reads_that_a_healthy_cluster_avoids() {
        // Find a seed whose 3-server schedule starts with a kill that is
        // never rejoined: the dropped shard keeps costing storage reads in
        // every later epoch, where the healthy run reads nothing.
        let epochs = 4u64;
        let seed = (0..256)
            .find(|&s| {
                let sched = crate::fault_schedule(3, epochs, 1, s);
                sched.len() == 1 && sched[0].kind == crate::FaultKind::Kill
            })
            .expect("some seed schedules a lone kill");
        let ds = small_openimages();
        let server = ServerConfig::config_hdd_1080ti().with_cache_fraction(ds.total_bytes(), 0.65);
        let job = JobSpec::new(
            ModelKind::AlexNet,
            ds,
            8,
            LoaderConfig::coordl(PrepBackend::DaliGpu),
        );
        let healthy = run_distributed(&server, &job, 3, epochs);
        let chaos = run_chaos(&server, &job, 3, 1, seed, epochs);
        let last = (epochs - 1) as usize;
        assert_eq!(
            healthy.disk_bytes_per_epoch[last], 0,
            "healthy steady state is storage-free"
        );
        assert!(
            chaos.disk_bytes_per_epoch[last] > 0,
            "the dead server's shard must fall back to storage"
        );
    }

    #[test]
    fn single_server_distributed_matches_single_server_shape() {
        // With one server, the distributed driver degenerates to the
        // single-server case (no remote traffic).
        let ds = small_openimages();
        let server = ServerConfig::config_ssd_v100().with_cache_fraction(ds.total_bytes(), 0.5);
        let job = JobSpec::new(
            ModelKind::ResNet18,
            ds,
            8,
            LoaderConfig::coordl(PrepBackend::DaliGpu),
        );
        let res = run_distributed(&server, &job, 1, 2);
        assert_eq!(res.remote_bytes_per_epoch[1], 0);
        assert_eq!(res.per_server().len(), 1);
    }
}
