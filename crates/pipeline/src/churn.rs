//! Deterministic tenant-churn schedules for [`Scenario::ElasticCluster`].
//!
//! A schedule assigns every tenant an arrival epoch and a departure epoch;
//! the tenant trains during `[arrival, departure)` and its cached keys are
//! reclaimed when it departs.  Schedules are pure functions of
//! `(tenants, epochs, seed)` so the simulator, the runtime benches and
//! `dstool validate` can replay the *same* churn pattern and compare
//! outcomes.
//!
//! [`Scenario::ElasticCluster`]: crate::Scenario::ElasticCluster

/// One tenant's lifetime in epochs: active while
/// `arrival <= epoch < departure`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TenantSchedule {
    /// First epoch the tenant trains in.
    pub arrival: u64,
    /// First epoch the tenant is gone (its cache window is reclaimed at the
    /// start of this epoch).
    pub departure: u64,
}

impl TenantSchedule {
    /// Whether the tenant trains during `epoch`.
    pub fn is_active(&self, epoch: u64) -> bool {
        self.arrival <= epoch && epoch < self.departure
    }

    /// Number of epochs the tenant is active for.
    pub fn lifetime(&self) -> u64 {
        self.departure - self.arrival
    }
}

/// SplitMix64: the small, high-quality mixer the workspace already uses for
/// shard routing and RNG seeding.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Build a deterministic churn schedule for `tenants` jobs over `epochs`
/// epochs.
///
/// Invariants, relied on by the elastic-cluster driver and the validation
/// suite:
///
/// * tenant 0 spans the full run (`[0, epochs)`), so at least one tenant is
///   active in every epoch and warm steady-state epochs exist,
/// * every tenant is active for at least one epoch,
/// * the result depends only on the arguments (no global state, no clock).
///
/// # Panics
/// Panics when `tenants == 0` or `epochs == 0`.
pub fn churn_schedule(tenants: usize, epochs: u64, seed: u64) -> Vec<TenantSchedule> {
    assert!(tenants > 0, "need at least one tenant");
    assert!(epochs > 0, "need at least one epoch");
    let mut state = seed ^ 0xC0DA_0E1A_571C_0000u64.wrapping_add(epochs);
    let mut schedule = Vec::with_capacity(tenants);
    schedule.push(TenantSchedule {
        arrival: 0,
        departure: epochs,
    });
    for _ in 1..tenants {
        let arrival = splitmix64(&mut state) % epochs;
        // Departure is uniform in (arrival, epochs]: at least one active
        // epoch, possibly running to the end of the experiment.
        let span = epochs - arrival;
        let departure = arrival + 1 + splitmix64(&mut state) % span;
        schedule.push(TenantSchedule { arrival, departure });
    }
    schedule
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_is_deterministic_and_covers_every_epoch() {
        let a = churn_schedule(6, 8, 42);
        let b = churn_schedule(6, 8, 42);
        assert_eq!(a, b);
        assert_eq!(a.len(), 6);
        assert_eq!(
            a[0],
            TenantSchedule {
                arrival: 0,
                departure: 8
            }
        );
        for (i, t) in a.iter().enumerate() {
            assert!(t.lifetime() >= 1, "tenant {i} never active: {t:?}");
            assert!(t.departure <= 8, "tenant {i} outlives the run: {t:?}");
        }
        for epoch in 0..8 {
            assert!(a.iter().any(|t| t.is_active(epoch)), "epoch {epoch} empty");
        }
    }

    #[test]
    fn different_seeds_give_different_schedules() {
        // Not guaranteed for arbitrary seeds, but these particular ones must
        // differ — a regression guard against the seed being ignored.
        let a = churn_schedule(8, 16, 1);
        let b = churn_schedule(8, 16, 2);
        assert_ne!(a, b);
    }

    #[test]
    #[should_panic(expected = "at least one tenant")]
    fn zero_tenants_rejected() {
        let _ = churn_schedule(0, 4, 0);
    }
}
