//! Hyper-parameter search: several concurrent jobs training the same dataset
//! on one server (§3.3.1, §4.3, §5.3).
//!
//! Without coordination every job fetches and pre-processes the dataset
//! independently: the jobs share the server's page cache (causing thrashing
//! and read amplification) and split its CPU cores (causing prep stalls).
//! With CoorDL's *coordinated prep*, the dataset is fetched and pre-processed
//! exactly once per epoch by the ensemble and every prepared minibatch is
//! consumed by every job through the cross-job staging area.

use crate::config::ServerConfig;
use crate::engine::{
    access_pattern, compute_secs_for_batch, fetch_batch_local, fetch_stream, prep_secs_for_batch,
    EpochAccumulator,
};
use crate::job::JobSpec;
use crate::metrics::{EpochMetrics, RunResult};
use dataset::{minibatches, EpochSampler};
use prep::PrepCostModel;
use storage::StorageNode;

const IO_BINS: usize = 40;

/// Result of an HP-search simulation.
#[derive(Debug, Clone, Default)]
pub struct HpSearchResult {
    /// Per-job run results (jobs are symmetric, so these are near-identical).
    pub per_job: Vec<RunResult>,
    /// Total bytes read from storage per epoch, summed over all jobs.
    pub disk_bytes_per_epoch: Vec<u64>,
}

impl HpSearchResult {
    /// Average steady-state per-job throughput in samples/second.
    pub fn steady_per_job_samples_per_sec(&self) -> f64 {
        let n = self.per_job.len() as f64;
        self.per_job
            .iter()
            .map(RunResult::steady_samples_per_sec)
            .sum::<f64>()
            / n
    }

    /// Steady-state epoch time (the slowest job's, though jobs are symmetric).
    pub fn steady_epoch_seconds(&self) -> f64 {
        self.per_job
            .iter()
            .map(|r| r.steady_state().epoch_seconds())
            .fold(0.0, f64::max)
    }

    /// Read amplification relative to one sweep over the dataset
    /// (Table 3 / §3.3.1: 8 uncoordinated jobs read up to 7× the dataset).
    pub fn read_amplification(&self, dataset_bytes: u64, epoch: usize) -> f64 {
        self.disk_bytes_per_epoch[epoch] as f64 / dataset_bytes as f64
    }

    /// Total disk traffic across all epochs and jobs.
    pub fn total_disk_bytes(&self) -> u64 {
        self.disk_bytes_per_epoch.iter().sum()
    }

    /// Speedup of this configuration over `baseline` in per-job throughput.
    pub fn speedup_over(&self, baseline: &HpSearchResult) -> f64 {
        self.steady_per_job_samples_per_sec() / baseline.steady_per_job_samples_per_sec()
    }
}

/// Simulate `epochs` epochs of `jobs` concurrent HP-search jobs on `server`.
///
/// All jobs must train the same dataset (that is the HP-search setting the
/// paper considers); they may differ in seed, batch size or GPU count.  The
/// loader of the *first* job decides whether coordinated prep is used (all
/// jobs run the same loader during HP search).
pub fn simulate_hp_search(server: &ServerConfig, jobs: &[JobSpec], epochs: u64) -> HpSearchResult {
    assert!(!jobs.is_empty(), "need at least one job");
    assert!(epochs > 0, "need at least one epoch");
    let total_gpus: usize = jobs.iter().map(|j| j.num_gpus).sum();
    assert!(
        total_gpus <= server.num_gpus,
        "jobs use {total_gpus} GPUs but the server has {}",
        server.num_gpus
    );
    for j in jobs {
        assert_eq!(
            j.dataset, jobs[0].dataset,
            "HP-search jobs must share a dataset"
        );
    }

    let coordinated = jobs[0].loader.coordinated_prep;
    let mut node = StorageNode::new(
        server.device,
        jobs[0].loader.cache_policy,
        server.dram_cache_bytes,
    );

    let mut result = HpSearchResult {
        per_job: vec![RunResult::default(); jobs.len()],
        disk_bytes_per_epoch: Vec::new(),
    };

    for epoch in 0..epochs {
        node.reset_epoch_stats();
        let per_epoch = if coordinated {
            simulate_coordinated_epoch(server, jobs, &mut node, epoch)
        } else {
            simulate_uncoordinated_epoch(server, jobs, &mut node, epoch)
        };
        let disk: u64 = per_epoch.iter().map(|m| m.bytes_from_disk).sum();
        result.disk_bytes_per_epoch.push(disk);
        for (job_idx, m) in per_epoch.into_iter().enumerate() {
            result.per_job[job_idx].epochs.push(m);
        }
    }
    result
}

/// Uncoordinated baseline: every job sweeps the dataset independently.
///
/// Jobs are interleaved minibatch by minibatch so their accesses mix in the
/// shared page cache exactly as concurrent processes' would; each job gets an
/// even share of the CPU cores and of the device bandwidth.
fn simulate_uncoordinated_epoch(
    server: &ServerConfig,
    jobs: &[JobSpec],
    node: &mut StorageNode,
    epoch: u64,
) -> Vec<EpochMetrics> {
    let num_jobs = jobs.len();
    let disk_share = 1.0 / num_jobs as f64;

    struct JobState {
        batches: Vec<Vec<u64>>,
        fetch_order: Vec<u64>,
        acc: EpochAccumulator,
        cores: f64,
    }

    let mut states: Vec<JobState> = jobs
        .iter()
        .map(|job| {
            let sampler = EpochSampler::new(job.dataset.num_items, job.seed);
            let consume = sampler.permutation(epoch);
            let fetch_order = fetch_stream(job, &consume);
            let cost = PrepCostModel::for_pipeline(&job.pipeline, job.loader.prep_backend);
            let per_job_cores = server.cpu_cores as f64 / num_jobs as f64;
            JobState {
                batches: minibatches(&consume, job.global_batch()),
                fetch_order,
                acc: EpochAccumulator::new(epoch, job.loader.prefetch_depth),
                cores: cost.effective_cores(per_job_cores, per_job_cores),
            }
        })
        .collect();

    let max_batches = states.iter().map(|s| s.batches.len()).max().unwrap_or(0);
    for b in 0..max_batches {
        for (job_idx, (job, state)) in jobs.iter().zip(states.iter_mut()).enumerate() {
            if b >= state.batches.len() {
                continue;
            }
            // Concurrent jobs are never in lockstep: each starts its sweep at
            // a different position in its own epoch order (TensorFlow shards
            // record files across jobs, PyTorch workers drift apart within a
            // few iterations).  Offsetting each job's batch index models that
            // drift; without it, sequential readers would all touch the same
            // chunk at the same instant and the shared cache would hide the
            // read amplification the paper measures (§3.3.1, Table 3).
            let offset = job_idx * state.batches.len() / num_jobs;
            let b = (b + offset) % state.batches.len();
            let batch = &state.batches[b];
            let global = job.global_batch();
            let start = b * global;
            let end = (start + batch.len()).min(state.fetch_order.len());
            let fetch_items = state.fetch_order[start..end].to_vec();
            let now = state.acc.now();
            let bf = fetch_batch_local(
                node,
                now,
                &fetch_items,
                &job.dataset,
                job.loader.format,
                access_pattern(job),
                disk_share,
            );
            let raw_bytes: u64 = batch.iter().map(|&it| job.dataset.item_size(it)).sum();
            let prep = prep_secs_for_batch(job, raw_bytes, state.cores);
            let compute = compute_secs_for_batch(job, server.gpu, batch.len());
            state.acc.push_batch(&bf, prep, compute, batch.len() as u64);
        }
    }

    states.into_iter().map(|s| s.acc.finish(IO_BINS)).collect()
}

/// CoorDL's coordinated prep: one sweep over the dataset per epoch, shared by
/// every job through the staging area.
///
/// The producing side uses *all* CPU cores and the full device bandwidth (the
/// jobs collectively are the producer — each prepares its static shard).  The
/// consuming side is each job's own GPUs, which see every prepared minibatch
/// exactly once.
fn simulate_coordinated_epoch(
    server: &ServerConfig,
    jobs: &[JobSpec],
    node: &mut StorageNode,
    epoch: u64,
) -> Vec<EpochMetrics> {
    let lead = &jobs[0];
    let sampler = EpochSampler::new(lead.dataset.num_items, lead.seed);
    let consume = sampler.permutation(epoch);
    let fetch_order = fetch_stream(lead, &consume);
    let batches = minibatches(&consume, lead.global_batch());
    let cost = PrepCostModel::for_pipeline(&lead.pipeline, lead.loader.prep_backend);
    let cores = cost.effective_cores(server.cpu_cores as f64, server.cpu_cores as f64);

    let mut accs: Vec<EpochAccumulator> = jobs
        .iter()
        .map(|j| EpochAccumulator::new(epoch, j.loader.prefetch_depth))
        .collect();

    for (b, batch) in batches.iter().enumerate() {
        let global = lead.global_batch();
        let start = b * global;
        let end = (start + batch.len()).min(fetch_order.len());
        let fetch_items = &fetch_order[start..end];
        let now = accs[0].now();
        // Fetch + prep happen once for the whole ensemble.
        let bf = fetch_batch_local(
            node,
            now,
            fetch_items,
            &lead.dataset,
            lead.loader.format,
            access_pattern(lead),
            1.0,
        );
        let raw_bytes: u64 = batch.iter().map(|&it| lead.dataset.item_size(it)).sum();
        let prep = prep_secs_for_batch(lead, raw_bytes, cores);
        for (job, acc) in jobs.iter().zip(accs.iter_mut()) {
            let compute = compute_secs_for_batch(job, server.gpu, batch.len());
            acc.push_batch(&bf, prep, compute, batch.len() as u64);
        }
    }

    // The fetch/prep work is shared: every accumulator saw the same per-batch
    // fetch (so its stall timing is right), but the bytes must be attributed
    // once to the ensemble, not once per job.  Keep them on the first job and
    // zero the rest so the caller's per-epoch disk totals are not inflated.
    let mut metrics: Vec<EpochMetrics> = accs.into_iter().map(|a| a.finish(IO_BINS)).collect();
    for m in metrics.iter_mut().skip(1) {
        m.bytes_from_disk = 0;
        m.bytes_from_cache = 0;
        m.bytes_from_remote = 0;
        m.cache_hits = 0;
        m.cache_misses = 0;
        m.io_timeline.clear();
    }
    metrics
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loader::LoaderConfig;
    use dataset::DatasetSpec;
    use gpu::ModelKind;
    use prep::PrepBackend;

    fn small_imagenet() -> DatasetSpec {
        DatasetSpec::imagenet_1k().scaled(2000) // ~640 items
    }

    fn eight_jobs(model: ModelKind, ds: &DatasetSpec, loader: LoaderConfig) -> Vec<JobSpec> {
        (0..8)
            .map(|i| {
                JobSpec::new(model, ds.clone(), 1, loader.clone())
                    .with_seed(1000 + i)
                    .with_batch(64)
            })
            .collect()
    }

    #[test]
    fn uncoordinated_hp_search_amplifies_disk_reads() {
        // §3.3.1: 8 uncoordinated jobs with 35 % cache produce ~7× read
        // amplification per epoch.
        let ds = small_imagenet();
        let server = ServerConfig::config_ssd_v100()
            .with_cache_fraction(ds.total_bytes(), 0.35);
        let jobs = eight_jobs(
            ModelKind::ResNet18,
            &ds,
            LoaderConfig::dali_shuffle(PrepBackend::DaliGpu),
        );
        let res = simulate_hp_search(&server, &jobs, 2);
        let amp = res.read_amplification(ds.total_bytes(), 1);
        assert!(
            amp > 4.0 && amp <= 8.3,
            "expected 5-8x read amplification, got {amp:.2}"
        );
    }

    #[test]
    fn coordinated_prep_fetches_dataset_once_per_epoch() {
        let ds = small_imagenet();
        let server = ServerConfig::config_ssd_v100()
            .with_cache_fraction(ds.total_bytes(), 0.35);
        let jobs = eight_jobs(ModelKind::ResNet18, &ds, LoaderConfig::coordl(PrepBackend::DaliGpu));
        let res = simulate_hp_search(&server, &jobs, 2);
        // Steady state: only the uncached 65 % is read, once for all jobs.
        let amp = res.read_amplification(ds.total_bytes(), 1);
        assert!(amp < 0.75, "expected < 0.75x dataset per epoch, got {amp:.2}");
    }

    #[test]
    fn coordl_speeds_up_hp_search() {
        let ds = small_imagenet();
        let server =
            ServerConfig::config_ssd_v100().with_cache_fraction(ds.total_bytes(), 0.35);
        let model = ModelKind::AlexNet;
        let baseline = simulate_hp_search(
            &server,
            &eight_jobs(model, &ds, LoaderConfig::dali_best(model)),
            3,
        );
        let coordl = simulate_hp_search(
            &server,
            &eight_jobs(model, &ds, LoaderConfig::coordl_best(model)),
            3,
        );
        let speedup = coordl.speedup_over(&baseline);
        assert!(
            speedup > 1.5,
            "CoorDL should clearly accelerate HP search, got {speedup:.2}x"
        );
    }

    #[test]
    fn fully_cached_hp_search_still_benefits_from_shared_prep() {
        // §5.3 / Table 7: with ImageNet-1k fully cached, coordinating prep
        // alone speeds up AlexNet HP search (~1.9×) because the baseline is
        // prep bound at 3 cores/job.
        let ds = small_imagenet();
        let server =
            ServerConfig::config_ssd_v100().with_cache_fraction(ds.total_bytes(), 1.05);
        let model = ModelKind::AlexNet;
        let baseline = simulate_hp_search(
            &server,
            &eight_jobs(model, &ds, LoaderConfig::dali_best(model)),
            2,
        );
        let coordl = simulate_hp_search(
            &server,
            &eight_jobs(model, &ds, LoaderConfig::coordl_best(model)),
            2,
        );
        let speedup = coordl.speedup_over(&baseline);
        assert!(speedup > 1.3, "expected >1.3x, got {speedup:.2}x");
        // No fetch I/O in either case beyond warm-up.
        assert_eq!(coordl.disk_bytes_per_epoch[1], 0);
    }

    #[test]
    fn jobs_with_different_datasets_are_rejected() {
        let ds = small_imagenet();
        let other = DatasetSpec::new("other", 100, 1000, 0.0, 6.0);
        let server = ServerConfig::config_ssd_v100();
        let jobs = vec![
            JobSpec::new(ModelKind::ResNet18, ds, 1, LoaderConfig::pytorch_dl()),
            JobSpec::new(ModelKind::ResNet18, other, 1, LoaderConfig::pytorch_dl()),
        ];
        let result = std::panic::catch_unwind(|| simulate_hp_search(&server, &jobs, 1));
        assert!(result.is_err());
    }

    #[test]
    fn per_job_results_are_symmetric() {
        let ds = small_imagenet();
        let server =
            ServerConfig::config_ssd_v100().with_cache_fraction(ds.total_bytes(), 0.5);
        let jobs = eight_jobs(
            ModelKind::MobileNetV2,
            &ds,
            LoaderConfig::dali_shuffle(PrepBackend::DaliGpu),
        );
        let res = simulate_hp_search(&server, &jobs, 2);
        let times: Vec<f64> = res
            .per_job
            .iter()
            .map(|r| r.steady_state().epoch_seconds())
            .collect();
        let min = times.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = times.iter().cloned().fold(0.0, f64::max);
        assert!(max / min < 1.25, "jobs should finish within 25% of each other");
    }
}
