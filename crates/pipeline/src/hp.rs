//! Hyper-parameter search: several concurrent jobs training the same dataset
//! on one server (§3.3.1, §4.3, §5.3).
//!
//! Without coordination every job fetches and pre-processes the dataset
//! independently: the jobs share the server's page cache (causing thrashing
//! and read amplification) and split its CPU cores (causing prep stalls).
//! With CoorDL's *coordinated prep*, the dataset is fetched and pre-processed
//! exactly once per epoch by the ensemble and every prepared minibatch is
//! consumed by every job through the cross-job staging area.
//!
//! The driver lives in [`crate::Experiment`] with
//! [`crate::Scenario::HpSearch`]; this module holds the scenario's
//! behavioural tests.  (The legacy `simulate_hp_search` shim and its
//! `HpSearchResult` type are gone — use the builder and [`crate::SimReport`].)

#[cfg(test)]
mod tests {
    use crate::config::ServerConfig;
    use crate::experiment::{Experiment, Scenario, SimReport};
    use crate::job::JobSpec;
    use crate::loader::LoaderConfig;
    use dataset::DatasetSpec;
    use gpu::ModelKind;
    use prep::PrepBackend;

    fn small_imagenet() -> DatasetSpec {
        DatasetSpec::imagenet_1k().scaled(2000) // ~640 items
    }

    fn eight_jobs(model: ModelKind, ds: &DatasetSpec, loader: LoaderConfig) -> Vec<JobSpec> {
        (0..8)
            .map(|i| {
                JobSpec::new(model, ds.clone(), 1, loader.clone())
                    .with_seed(1000 + i)
                    .with_batch(64)
            })
            .collect()
    }

    fn run_hp(server: &ServerConfig, jobs: &[JobSpec], epochs: u64) -> SimReport {
        Experiment::on(server)
            .jobs(jobs.to_vec())
            .scenario(Scenario::HpSearch { jobs: jobs.len() })
            .epochs(epochs)
            .run()
    }

    #[test]
    fn uncoordinated_hp_search_amplifies_disk_reads() {
        // §3.3.1: 8 uncoordinated jobs with 35 % cache produce ~7× read
        // amplification per epoch.
        let ds = small_imagenet();
        let server = ServerConfig::config_ssd_v100().with_cache_fraction(ds.total_bytes(), 0.35);
        let jobs = eight_jobs(
            ModelKind::ResNet18,
            &ds,
            LoaderConfig::dali_shuffle(PrepBackend::DaliGpu),
        );
        let res = run_hp(&server, &jobs, 2);
        let amp = res.read_amplification(ds.total_bytes(), 1);
        assert!(
            amp > 4.0 && amp <= 8.3,
            "expected 5-8x read amplification, got {amp:.2}"
        );
    }

    #[test]
    fn coordinated_prep_fetches_dataset_once_per_epoch() {
        let ds = small_imagenet();
        let server = ServerConfig::config_ssd_v100().with_cache_fraction(ds.total_bytes(), 0.35);
        let jobs = eight_jobs(
            ModelKind::ResNet18,
            &ds,
            LoaderConfig::coordl(PrepBackend::DaliGpu),
        );
        let res = run_hp(&server, &jobs, 2);
        // Steady state: only the uncached 65 % is read, once for all jobs.
        let amp = res.read_amplification(ds.total_bytes(), 1);
        assert!(
            amp < 0.75,
            "expected < 0.75x dataset per epoch, got {amp:.2}"
        );
    }

    #[test]
    fn coordl_speeds_up_hp_search() {
        let ds = small_imagenet();
        let server = ServerConfig::config_ssd_v100().with_cache_fraction(ds.total_bytes(), 0.35);
        let model = ModelKind::AlexNet;
        let baseline = run_hp(
            &server,
            &eight_jobs(model, &ds, LoaderConfig::dali_best(model)),
            3,
        );
        let coordl = run_hp(
            &server,
            &eight_jobs(model, &ds, LoaderConfig::coordl_best(model)),
            3,
        );
        let speedup = coordl.speedup_over(&baseline);
        assert!(
            speedup > 1.5,
            "CoorDL should clearly accelerate HP search, got {speedup:.2}x"
        );
    }

    #[test]
    fn fully_cached_hp_search_still_benefits_from_shared_prep() {
        // §5.3 / Table 7: with ImageNet-1k fully cached, coordinating prep
        // alone speeds up AlexNet HP search (~1.9×) because the baseline is
        // prep bound at 3 cores/job.
        let ds = small_imagenet();
        let server = ServerConfig::config_ssd_v100().with_cache_fraction(ds.total_bytes(), 1.05);
        let model = ModelKind::AlexNet;
        let baseline = run_hp(
            &server,
            &eight_jobs(model, &ds, LoaderConfig::dali_best(model)),
            2,
        );
        let coordl = run_hp(
            &server,
            &eight_jobs(model, &ds, LoaderConfig::coordl_best(model)),
            2,
        );
        let speedup = coordl.speedup_over(&baseline);
        assert!(speedup > 1.3, "expected >1.3x, got {speedup:.2}x");
        // No fetch I/O in either case beyond warm-up.
        assert_eq!(coordl.disk_bytes_per_epoch[1], 0);
    }

    #[test]
    fn jobs_with_different_datasets_are_rejected() {
        let ds = small_imagenet();
        let other = DatasetSpec::new("other", 100, 1000, 0.0, 6.0);
        let server = ServerConfig::config_ssd_v100();
        let jobs = vec![
            JobSpec::new(ModelKind::ResNet18, ds, 1, LoaderConfig::pytorch_dl()),
            JobSpec::new(ModelKind::ResNet18, other, 1, LoaderConfig::pytorch_dl()),
        ];
        let result = std::panic::catch_unwind(|| run_hp(&server, &jobs, 1));
        assert!(result.is_err());
    }

    #[test]
    fn per_job_results_are_symmetric() {
        let ds = small_imagenet();
        let server = ServerConfig::config_ssd_v100().with_cache_fraction(ds.total_bytes(), 0.5);
        let jobs = eight_jobs(
            ModelKind::MobileNetV2,
            &ds,
            LoaderConfig::dali_shuffle(PrepBackend::DaliGpu),
        );
        let res = run_hp(&server, &jobs, 2);
        let times: Vec<f64> = res
            .per_job()
            .iter()
            .map(|r| r.steady_state().epoch_seconds())
            .collect();
        let min = times.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = times.iter().cloned().fold(0.0, f64::max);
        assert!(
            max / min < 1.25,
            "jobs should finish within 25% of each other"
        );
    }
}
