//! Input-pipeline simulator.
//!
//! This crate ties the substrates together into the experiment engine used by
//! DS-Analyzer, the benches and the examples: given a server configuration, a
//! model, a dataset and a *loader* (native PyTorch, DALI-seq, DALI-shuffle,
//! TFRecord or CoorDL), it simulates training epoch by epoch at minibatch
//! granularity and reports epoch time, the fetch/prep stall breakdown, cache
//! hit rates, disk/remote/cache byte counts and an I/O timeline.
//!
//! Three training scenarios are modelled, matching the paper's evaluation:
//!
//! * [`simulate_single_server`] — one data-parallel job on one server
//!   (Figure 9a, Figures 2–6, 11, 13, 14, 21),
//! * [`simulate_hp_search`] — several concurrent hyper-parameter-search jobs
//!   sharing one server's CPU, DRAM and storage (Figures 9d/e, 17, 22, 23,
//!   Tables 3 and 7),
//! * [`simulate_distributed`] — one job spread across several servers
//!   (Figures 9b, 10, 18).

pub mod config;
pub(crate) mod engine;
pub mod distributed;
pub mod hp;
pub mod job;
pub mod loader;
pub mod metrics;
pub mod single;

pub use config::ServerConfig;
pub use distributed::{simulate_distributed, DistributedResult};
pub use hp::{simulate_hp_search, HpSearchResult};
pub use job::JobSpec;
pub use loader::{FetchOrder, LoaderConfig, LoaderKind};
pub use metrics::{EpochMetrics, RunResult};
pub use single::simulate_single_server;
