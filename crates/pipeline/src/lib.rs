//! Input-pipeline simulator.
//!
//! This crate ties the substrates together into the experiment engine used by
//! DS-Analyzer, the benches and the examples: given a server configuration, a
//! model, a dataset and a *loader* (native PyTorch, DALI-seq, DALI-shuffle,
//! TFRecord or CoorDL), it simulates training epoch by epoch at minibatch
//! granularity and reports epoch time, the fetch/prep stall breakdown, cache
//! hit rates, disk/remote/cache byte counts and an I/O timeline.
//!
//! The entry point is the [`Experiment`] builder with a [`Scenario`] matching
//! the paper's evaluation shapes:
//!
//! * [`Scenario::SingleServer`] — one data-parallel job on one server
//!   (Figure 9a, Figures 2–6, 11, 13, 14, 21),
//! * [`Scenario::HpSearch`] — several concurrent hyper-parameter-search jobs
//!   sharing one server's CPU, DRAM and storage (Figures 9d/e, 17, 22, 23,
//!   Tables 3 and 7),
//! * [`Scenario::Distributed`] — one job spread across several servers
//!   (Figures 9b, 10, 18),
//! * [`Scenario::MixedCluster`] — heterogeneous jobs (different models,
//!   datasets, loaders) contending for one server's cache, CPU and disk,
//! * [`Scenario::PartitionedChaos`] — the distributed scenario under a
//!   seeded schedule of server crashes, graceful leaves and rejoins
//!   ([`fault_schedule`], shared with the runtime's `coordl::FaultPlan`).
//!
//! Every run returns one [`SimReport`]; register an
//! [`observer`](Experiment::observer) for per-epoch live telemetry and use
//! [`SimReport::to_json`] to export trajectories.  Grids of configurations —
//! cache sizes, vCPU counts, loaders, server counts — run through the
//! [`sweep`] module: a [`SweepSpec`] names the axes and a [`SweepRunner`]
//! fans the grid out across OS threads with deterministic, panic-isolated
//! results.  Every storage node runs a [`CacheSpec`] cache hierarchy
//! (`dcache::TierChain`): the classic single DRAM tier by default, or a
//! DRAM tier spilling into a profiled local-SSD tier with
//! [`CacheSpec::Tiered`].

pub mod churn;
pub mod config;
pub mod distributed;
pub(crate) mod engine;
pub mod experiment;
pub(crate) mod fast;
pub mod hp;
pub mod job;
pub mod json;
pub mod loader;
pub mod metrics;
pub mod single;
pub mod sweep;

pub use churn::{churn_schedule, TenantSchedule};
pub use config::ServerConfig;
pub use dcache::{fault_schedule, FaultEvent, FaultKind};
pub use engine::EngineScratch;
pub use experiment::{CacheSpec, EpochUpdate, Experiment, Scenario, SimReport};
pub use job::JobSpec;
pub use loader::{FetchOrder, LoaderConfig, LoaderKind};
pub use metrics::{EpochMetrics, RunResult};
pub use sweep::{
    Axis, ExperimentSpec, GridMode, PointLabel, SweepPoint, SweepReport, SweepRunner, SweepSpec,
};
