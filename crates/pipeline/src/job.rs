//! Training-job specifications.

use crate::loader::LoaderConfig;
use dataset::DatasetSpec;
use gpu::{ModelKind, Task};
use prep::PrepPipeline;

/// One training job: a model, a dataset, a loader and resource allotment.
#[derive(Debug, Clone, PartialEq)]
pub struct JobSpec {
    /// The DNN being trained.
    pub model: ModelKind,
    /// The dataset it trains on.
    pub dataset: DatasetSpec,
    /// The pre-processing pipeline (derived from the model's task).
    pub pipeline: PrepPipeline,
    /// Per-GPU minibatch size.
    pub batch_per_gpu: usize,
    /// Number of GPUs this job uses (on each server for distributed jobs).
    pub num_gpus: usize,
    /// Data-loader configuration.
    pub loader: LoaderConfig,
    /// RNG seed for the epoch sampler.
    pub seed: u64,
}

impl JobSpec {
    /// A job using the model's reference batch size (§3.1) on `num_gpus`
    /// GPUs.
    pub fn new(
        model: ModelKind,
        dataset: DatasetSpec,
        num_gpus: usize,
        loader: LoaderConfig,
    ) -> Self {
        assert!(num_gpus > 0, "need at least one GPU");
        let profile = model.profile();
        let pipeline = match profile.task {
            Task::ImageClassification => PrepPipeline::image_classification(),
            Task::LanguageModel => PrepPipeline::language_model(),
            Task::ObjectDetection => PrepPipeline::object_detection(),
            Task::AudioClassification => PrepPipeline::audio_classification(),
        };
        JobSpec {
            model,
            dataset,
            pipeline,
            batch_per_gpu: profile.reference_batch,
            num_gpus,
            loader,
            seed: 0x5EED,
        }
    }

    /// Copy with a different per-GPU batch size (batch-size sweeps).
    pub fn with_batch(&self, batch_per_gpu: usize) -> Self {
        assert!(batch_per_gpu > 0);
        JobSpec {
            batch_per_gpu,
            ..self.clone()
        }
    }

    /// Copy with a different sampler seed (distinct HP-search jobs shuffle
    /// with distinct seeds).
    pub fn with_seed(&self, seed: u64) -> Self {
        JobSpec {
            seed,
            ..self.clone()
        }
    }

    /// Copy with a different loader.
    pub fn with_loader(&self, loader: LoaderConfig) -> Self {
        JobSpec {
            loader,
            ..self.clone()
        }
    }

    /// Global minibatch size (per-GPU batch × GPUs on one server).
    pub fn global_batch(&self) -> usize {
        self.batch_per_gpu * self.num_gpus
    }

    /// Number of iterations in one epoch over `items` items.
    pub fn iterations_per_epoch(&self, items: u64) -> u64 {
        items.div_ceil(self.global_batch() as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prep::PrepBackend;

    #[test]
    fn job_uses_reference_batch_and_task_pipeline() {
        let j = JobSpec::new(
            ModelKind::ResNet50,
            DatasetSpec::imagenet_1k().scaled(1000),
            8,
            LoaderConfig::dali_shuffle(PrepBackend::DaliCpu),
        );
        assert_eq!(j.batch_per_gpu, 512);
        assert_eq!(j.global_batch(), 4096);
        assert_eq!(j.pipeline.name, "image-classification");

        let audio = JobSpec::new(
            ModelKind::AudioM5,
            DatasetSpec::fma().scaled(100),
            8,
            LoaderConfig::dali_shuffle(PrepBackend::DaliCpu),
        );
        assert_eq!(audio.batch_per_gpu, 16);
        assert_eq!(audio.pipeline.name, "audio-classification");
    }

    #[test]
    fn language_models_use_the_language_pipeline() {
        // Pins the Task::LanguageModel -> PrepPipeline::language_model()
        // mapping: BERT/GNMT jobs must not silently run JPEG-decode prep
        // costs (text tokenisation is far cheaper per byte, which is why the
        // paper's language models are GPU bound, §3.1).
        for model in [ModelKind::BertLarge, ModelKind::Gnmt] {
            let j = JobSpec::new(
                model,
                DatasetSpec::new("wiki", 1000, 8 * 1024, 0.2, 3.0),
                8,
                LoaderConfig::dali_shuffle(PrepBackend::DaliCpu),
            );
            assert_eq!(j.pipeline.name, "language-model", "{:?}", model);
            assert!(
                j.pipeline.has_random_augmentation(),
                "MLM masking is per-epoch random"
            );
        }
    }

    #[test]
    fn iterations_round_up() {
        let j = JobSpec::new(
            ModelKind::ResNet18,
            DatasetSpec::new("t", 1000, 1000, 0.0, 6.0),
            1,
            LoaderConfig::pytorch_dl(),
        )
        .with_batch(128);
        assert_eq!(j.iterations_per_epoch(1000), 8);
    }

    #[test]
    fn with_helpers_preserve_other_fields() {
        let j = JobSpec::new(
            ModelKind::AlexNet,
            DatasetSpec::new("t", 100, 1000, 0.0, 6.0),
            4,
            LoaderConfig::pytorch_dl(),
        );
        let j2 = j.with_batch(64).with_seed(99);
        assert_eq!(j2.batch_per_gpu, 64);
        assert_eq!(j2.seed, 99);
        assert_eq!(j2.num_gpus, 4);
        assert_eq!(j2.model, ModelKind::AlexNet);
    }
}
