//! The MinIO byte cache: the functional counterpart of
//! `coordl-cache::MinIoCache`, holding actual item bytes and shared across
//! loader worker threads.

use crate::stats::LoaderStats;
use dataset::{DataSource, ItemId};
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A thread-safe, byte-capacity, never-evicting cache of raw data items.
///
/// Items are admitted in arrival order until the capacity is reached; after
/// that, misses bypass the cache (they are returned to the caller but not
/// retained).  Resident items are never evicted for the lifetime of the
/// training job, which is exactly the MinIO policy of §4.1.
#[derive(Debug)]
pub struct MinIoByteCache {
    capacity_bytes: u64,
    used_bytes: AtomicU64,
    items: RwLock<HashMap<ItemId, Arc<Vec<u8>>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl MinIoByteCache {
    /// Create a cache with the given byte capacity.
    pub fn new(capacity_bytes: u64) -> Self {
        MinIoByteCache {
            capacity_bytes,
            used_bytes: AtomicU64::new(0),
            items: RwLock::new(HashMap::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// Capacity in bytes.
    pub fn capacity_bytes(&self) -> u64 {
        self.capacity_bytes
    }

    /// Bytes currently resident.
    pub fn used_bytes(&self) -> u64 {
        self.used_bytes.load(Ordering::Relaxed)
    }

    /// Number of resident items.
    pub fn len(&self) -> usize {
        self.items.read().len()
    }

    /// True when nothing is resident.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether `item` is resident.
    pub fn contains(&self, item: ItemId) -> bool {
        self.items.read().contains_key(&item)
    }

    /// Cache hits since construction.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Cache misses since construction.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Look up `item`, returning the cached bytes on a hit.
    pub fn get(&self, item: ItemId) -> Option<Arc<Vec<u8>>> {
        let guard = self.items.read();
        match guard.get(&item) {
            Some(bytes) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(Arc::clone(bytes))
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Offer `bytes` for `item`. The cache admits it only if it is not
    /// already resident and the capacity allows; in every case the caller
    /// keeps a usable reference.
    pub fn insert(&self, item: ItemId, bytes: Arc<Vec<u8>>) -> Arc<Vec<u8>> {
        let size = bytes.len() as u64;
        let mut guard = self.items.write();
        if let Some(existing) = guard.get(&item) {
            return Arc::clone(existing);
        }
        // Reserve capacity optimistically; back off if it would overflow.
        let prev = self.used_bytes.fetch_add(size, Ordering::Relaxed);
        if prev + size > self.capacity_bytes {
            self.used_bytes.fetch_sub(size, Ordering::Relaxed);
            return bytes;
        }
        guard.insert(item, Arc::clone(&bytes));
        bytes
    }

    /// Fetch `item` through the cache, reading it from `source` on a miss and
    /// recording bytes-from-cache / bytes-from-source in `stats`.
    pub fn fetch(
        &self,
        item: ItemId,
        source: &dyn DataSource,
        stats: &LoaderStats,
    ) -> Arc<Vec<u8>> {
        if let Some(bytes) = self.get(item) {
            stats.record_cache_read(bytes.len() as u64);
            return bytes;
        }
        let bytes = Arc::new(source.read(item));
        stats.record_storage_read(bytes.len() as u64);
        self.insert(item, bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dataset::{DatasetSpec, SyntheticItemStore};

    fn store(n: u64, size: u64) -> SyntheticItemStore {
        SyntheticItemStore::new(DatasetSpec::new("t", n, size, 0.0, 6.0), 7)
    }

    #[test]
    fn insert_then_get_round_trips() {
        let cache = MinIoByteCache::new(1000);
        let data = Arc::new(vec![1u8, 2, 3]);
        cache.insert(5, Arc::clone(&data));
        assert!(cache.contains(5));
        assert_eq!(cache.get(5).unwrap().as_slice(), &[1, 2, 3]);
        assert_eq!(cache.used_bytes(), 3);
    }

    #[test]
    fn never_exceeds_capacity_and_never_evicts() {
        let cache = MinIoByteCache::new(250);
        let src = store(10, 100);
        let stats = LoaderStats::default();
        for i in 0..10 {
            cache.fetch(i, &src, &stats);
        }
        assert_eq!(cache.len(), 2, "only two 100-byte items fit in 250 bytes");
        assert!(cache.used_bytes() <= 250);
        // The first two items admitted are still resident (no eviction).
        assert!(cache.contains(0) && cache.contains(1));
    }

    #[test]
    fn fetch_hits_do_not_touch_storage() {
        let cache = MinIoByteCache::new(10_000);
        let src = store(4, 100);
        let stats = LoaderStats::default();
        for _ in 0..3 {
            for i in 0..4 {
                cache.fetch(i, &src, &stats);
            }
        }
        assert_eq!(stats.bytes_from_storage(), 400, "each item read once");
        assert_eq!(stats.bytes_from_cache(), 800, "two further epochs of hits");
        assert_eq!(cache.misses(), 4);
        assert_eq!(cache.hits(), 8);
    }

    #[test]
    fn duplicate_insert_keeps_first_copy_and_bytes_accounting() {
        let cache = MinIoByteCache::new(1000);
        cache.insert(1, Arc::new(vec![1; 10]));
        cache.insert(1, Arc::new(vec![2; 10]));
        assert_eq!(cache.used_bytes(), 10);
        assert_eq!(cache.get(1).unwrap()[0], 1);
    }

    #[test]
    fn concurrent_fetches_are_consistent() {
        let cache = Arc::new(MinIoByteCache::new(1 << 20));
        let src = Arc::new(store(50, 64));
        let stats = Arc::new(LoaderStats::default());
        let mut handles = Vec::new();
        for t in 0..4 {
            let cache = Arc::clone(&cache);
            let src = Arc::clone(&src);
            let stats = Arc::clone(&stats);
            handles.push(std::thread::spawn(move || {
                for i in 0..50u64 {
                    let item = (i + t * 13) % 50;
                    let bytes = cache.fetch(item, src.as_ref(), &stats);
                    assert_eq!(bytes.as_slice(), src.read(item).as_slice());
                }
            }));
        }
        for h in handles {
            h.join().expect("no panics");
        }
        assert_eq!(cache.len(), 50);
        // Every byte delivered came from either storage or the cache.
        assert_eq!(
            stats.bytes_from_storage() + stats.bytes_from_cache(),
            4 * 50 * 64
        );
    }
}
