//! Pluggable fetch backends: where raw bytes come from when every cache
//! tier misses.
//!
//! A [`FetchBackend`] is the bottom of a [`Session`](crate::Session)'s fetch
//! stack.  [`DirectBackend`] reads straight from a [`DataSource`] with no
//! timing model (a ramdisk, effectively); [`ProfiledBackend`] wraps the same
//! source in a [`storage::DeviceProfile`] and accounts the *modelled* device
//! busy time of every read, so a runtime session can report how long its
//! storage traffic would have taken on a SATA SSD or a hard drive — the
//! number `dstool validate` compares against the simulator's predictions.
//! [`FsBackend`](crate::FsBackend) goes one step further and serves fetches
//! from real files, recording *measured* wall-clock device seconds next to
//! the modelled ones.
//!
//! A failed read (item out of range, missing or truncated file) surfaces as
//! [`CoordlError::BackendIo`] rather than a panic, and propagates through
//! the batch stream to the consumer that asked for the item.

use crate::error::CoordlError;
use dataset::{DataSource, ItemId};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use storage::{AccessPattern, DeviceProfile};

/// A source of raw item bytes below every cache tier.
pub trait FetchBackend: Send + Sync {
    /// Number of items the backend can serve.
    fn num_items(&self) -> u64;

    /// Raw size of `item` in bytes, without reading it.
    fn item_bytes(&self, item: ItemId) -> u64;

    /// Read the raw bytes of `item`.  Out-of-range items and failed or
    /// truncated reads are [`CoordlError::BackendIo`].
    fn read(&self, item: ItemId) -> Result<Vec<u8>, CoordlError>;

    /// The device profile timing this backend, if any.
    fn profile(&self) -> Option<&DeviceProfile> {
        None
    }

    /// Cumulative *modelled* device busy time of all reads, in seconds
    /// (0 for unprofiled backends).
    fn device_seconds(&self) -> f64 {
        0.0
    }

    /// Cumulative *measured* wall-clock time spent inside real I/O, in
    /// seconds (0 for backends that fabricate bytes in memory).
    fn measured_seconds(&self) -> f64 {
        0.0
    }

    /// Short name used in reports.
    fn name(&self) -> &'static str;
}

/// The shared out-of-range check: every backend rejects items past the end
/// of its dataset with the same typed error.
pub(crate) fn check_item_in_range(
    backend: &'static str,
    item: ItemId,
    num_items: u64,
) -> Result<(), CoordlError> {
    if item >= num_items {
        return Err(CoordlError::BackendIo {
            backend: backend.to_string(),
            item,
            detail: format!("item out of range (dataset has {num_items} items)"),
        });
    }
    Ok(())
}

/// Reads items directly from a [`DataSource`] with no timing model.
pub struct DirectBackend {
    source: Arc<dyn DataSource>,
}

impl DirectBackend {
    /// Wrap `source`.
    pub fn new(source: Arc<dyn DataSource>) -> Self {
        DirectBackend { source }
    }
}

impl FetchBackend for DirectBackend {
    fn num_items(&self) -> u64 {
        self.source.len()
    }

    fn item_bytes(&self, item: ItemId) -> u64 {
        self.source.item_bytes(item)
    }

    fn read(&self, item: ItemId) -> Result<Vec<u8>, CoordlError> {
        check_item_in_range(self.name(), item, self.source.len())?;
        Ok(self.source.read(item))
    }

    fn name(&self) -> &'static str {
        "direct"
    }
}

/// Reads items from a [`DataSource`] while accounting the modelled device
/// time of each read against a [`DeviceProfile`].
///
/// The bytes are still served immediately (this is a functional loader, not
/// a simulator); only the *accounting* is profiled.  `device_seconds` then
/// answers "how long would this epoch's storage traffic have kept an SSD /
/// HDD busy", which is what the predicted-vs-empirical validation compares.
pub struct ProfiledBackend {
    source: Arc<dyn DataSource>,
    profile: DeviceProfile,
    pattern: AccessPattern,
    busy_nanos: AtomicU64,
}

impl ProfiledBackend {
    /// Wrap `source` with `profile`, assuming random small-file reads (the
    /// shuffled access pattern of DNN training).
    pub fn new(source: Arc<dyn DataSource>, profile: DeviceProfile) -> Self {
        Self::with_pattern(source, profile, AccessPattern::Random)
    }

    /// Wrap `source` with `profile` and an explicit access pattern.
    pub fn with_pattern(
        source: Arc<dyn DataSource>,
        profile: DeviceProfile,
        pattern: AccessPattern,
    ) -> Self {
        ProfiledBackend {
            source,
            profile,
            pattern,
            busy_nanos: AtomicU64::new(0),
        }
    }

    /// The access pattern used for timing.
    pub fn pattern(&self) -> AccessPattern {
        self.pattern
    }
}

impl FetchBackend for ProfiledBackend {
    fn num_items(&self) -> u64 {
        self.source.len()
    }

    fn item_bytes(&self, item: ItemId) -> u64 {
        self.source.item_bytes(item)
    }

    fn read(&self, item: ItemId) -> Result<Vec<u8>, CoordlError> {
        check_item_in_range(self.name(), item, self.source.len())?;
        let bytes = self.source.read(item);
        let secs = self.profile.read_seconds(bytes.len() as u64, self.pattern);
        self.busy_nanos
            .fetch_add((secs * 1e9) as u64, Ordering::Relaxed);
        Ok(bytes)
    }

    fn profile(&self) -> Option<&DeviceProfile> {
        Some(&self.profile)
    }

    fn device_seconds(&self) -> f64 {
        self.busy_nanos.load(Ordering::Relaxed) as f64 / 1e9
    }

    fn name(&self) -> &'static str {
        self.profile.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dataset::{DatasetSpec, SyntheticItemStore};

    fn store(n: u64, size: u64) -> Arc<dyn DataSource> {
        Arc::new(SyntheticItemStore::new(
            DatasetSpec::new("t", n, size, 0.0, 6.0),
            3,
        ))
    }

    #[test]
    fn direct_backend_serves_source_bytes() {
        let src = store(10, 64);
        let b = DirectBackend::new(Arc::clone(&src));
        assert_eq!(b.num_items(), 10);
        assert_eq!(b.item_bytes(3), 64);
        assert_eq!(b.read(3).unwrap(), src.read(3));
        assert_eq!(b.device_seconds(), 0.0);
        assert_eq!(b.measured_seconds(), 0.0);
        assert!(b.profile().is_none());
    }

    #[test]
    fn out_of_range_items_are_typed_backend_errors() {
        let direct = DirectBackend::new(store(10, 64));
        match direct.read(10) {
            Err(CoordlError::BackendIo {
                backend,
                item,
                detail,
            }) => {
                assert_eq!(backend, "direct");
                assert_eq!(item, 10);
                assert!(detail.contains("out of range"));
            }
            other => panic!("expected BackendIo, got {other:?}"),
        }
        let profiled = ProfiledBackend::new(store(10, 64), DeviceProfile::hdd());
        assert!(matches!(
            profiled.read(u64::MAX),
            Err(CoordlError::BackendIo { .. })
        ));
        assert_eq!(
            profiled.device_seconds(),
            0.0,
            "failed reads charge nothing"
        );
    }

    #[test]
    fn profiled_backend_accounts_modelled_read_time() {
        let src = store(4, 1_000_000);
        let b = ProfiledBackend::new(src, DeviceProfile::hdd());
        for i in 0..4 {
            let _ = b.read(i).unwrap();
        }
        let expected = 4.0 * DeviceProfile::hdd().read_seconds(1_000_000, AccessPattern::Random);
        assert!(
            (b.device_seconds() - expected).abs() < 1e-6,
            "modelled busy time {} vs expected {expected}",
            b.device_seconds()
        );
        assert_eq!(b.name(), "hdd");
    }

    #[test]
    fn modelled_device_seconds_are_invariant_under_concurrent_fetch() {
        // Each read's charge is quantized to whole nanoseconds *before* the
        // atomic add, so any partition of the items across threads accounts
        // exactly the same total as one thread reading them all — the
        // invariant that keeps `device_seconds` identical across
        // `fetch_threads` values.
        let serial = ProfiledBackend::new(store(64, 10_000), DeviceProfile::sata_ssd());
        for i in 0..64 {
            let _ = serial.read(i).unwrap();
        }
        for threads in [2u64, 4] {
            let b = Arc::new(ProfiledBackend::new(
                store(64, 10_000),
                DeviceProfile::sata_ssd(),
            ));
            std::thread::scope(|s| {
                for t in 0..threads {
                    let b = Arc::clone(&b);
                    s.spawn(move || {
                        let mut i = t;
                        while i < 64 {
                            let _ = b.read(i).unwrap();
                            i += threads;
                        }
                    });
                }
            });
            assert_eq!(
                b.device_seconds(),
                serial.device_seconds(),
                "threads={threads}"
            );
        }
    }

    #[test]
    fn hdd_models_more_busy_time_than_ramdisk_for_the_same_bytes() {
        let hdd = ProfiledBackend::new(store(8, 10_000), DeviceProfile::hdd());
        let ram = ProfiledBackend::new(store(8, 10_000), DeviceProfile::ramdisk());
        for i in 0..8 {
            let _ = hdd.read(i).unwrap();
            let _ = ram.read(i).unwrap();
        }
        assert!(hdd.device_seconds() > 100.0 * ram.device_seconds());
    }
}
