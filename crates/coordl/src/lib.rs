//! CoorDL: a coordinated data-loading library for DNN training.
//!
//! This crate is the functional (really multi-threaded, really moving bytes)
//! implementation of the paper's three techniques, unified behind one
//! [`Session`] builder that mirrors the simulator's `pipeline::Experiment`:
//!
//! * the **MinIO cache** ([`MinIoByteCache`]) — a DNN-aware software cache
//!   that admits raw items until full and never evicts them, so every epoch
//!   after warm-up performs only capacity misses (§4.1),
//! * **coordinated prep** ([`Mode::Coordinated`], [`StagingArea`]) — when
//!   several hyper-parameter-search jobs train on the same dataset on one
//!   server, the dataset is fetched and pre-processed exactly once per epoch
//!   and every prepared minibatch is shared through an in-memory staging area
//!   with per-batch use counters and failure detection (§4.3),
//! * **partitioned caching** ([`Mode::Partitioned`],
//!   [`PartitionedCacheCluster`]) — in distributed training each server's
//!   cache tier holds a shard of the dataset and local misses are served from
//!   the remote cache instead of storage (§4.2).
//!
//! A session composes a pluggable [`CacheTier`] (MinIO, or any
//! `coordl-cache` policy via [`PolicyByteCache`]) over a pluggable
//! [`FetchBackend`] ([`DirectBackend`], or [`ProfiledBackend`] timed by a
//! `storage::DeviceProfile`), hands out per-job [`BatchStream`] iterators
//! from [`Session::epoch`] and produces a [`LoaderReport`] whose JSON is
//! structurally comparable to the simulator's reports — the contract
//! `dstool validate` exploits to diff predicted against empirical behaviour.
//!
//! Every mode runs on one **prefetching executor** (the paper's overlap
//! prescription, §2/§5): a single fetch thread sweeps the epoch plan in
//! training order — so every cache-tier transaction is sequential and
//! deterministic — while `workers(n)` prep threads pre-process batches in
//! parallel behind a `prefetch_depth(d)` window.  Parallelism changes *when*
//! work happens (reported as per-stage busy/stall seconds in the
//! [`LoaderReport`]), never *what* a job observes: streams and counters are
//! bit-identical across worker counts, pinned by
//! `tests/parallel_session_equivalence.rs`.
//!
//! Device timing is *not* simulated here (that is `coordl-pipeline`'s job);
//! this crate is about the coordination semantics: exactly-once delivery,
//! fresh per-epoch randomness, sharing, and fault handling.

pub mod backend;
pub mod cache;
pub mod coordinator;
pub mod error;
pub(crate) mod executor;
pub mod fault;
pub mod fsbackend;
pub mod minibatch;
pub mod partition;
pub mod report;
pub mod server;
pub mod session;
pub(crate) mod stack;
pub mod staging;
pub mod stats;
pub mod tier;

pub use backend::{DirectBackend, FetchBackend, ProfiledBackend};
pub use cache::MinIoByteCache;
pub use coordinator::{EpochSession, JobEpochIterator};
pub use error::CoordlError;
pub use fault::{FaultClock, FaultEvent, FaultKind, FaultPlan, FaultStep};
pub use fsbackend::FsBackend;
pub use minibatch::Minibatch;
pub use partition::{
    FetchOrigin, PartitionStats, PartitionedCacheCluster, RemoteHit, RemotePeerTier,
};
pub use report::{EpochTrajectory, LoaderReport, TenantReport};
pub use server::{Server, ServerConfig, TenantHandle, TenantSpec, TenantView};
pub use session::{
    BatchStream, EpochRun, Mode, Session, SessionBuilder, SessionConfig, DEFAULT_FETCH_SHARDS,
};
pub use staging::{PublishOutcome, StagingArea, StagingStats, TakeError};
pub use stats::LoaderStats;
pub use tier::{
    ByteTierSpec, CacheTier, PolicyByteCache, TierBacking, TierSnapshot, TieredByteCache,
};
