//! CoorDL: a coordinated data-loading library for DNN training.
//!
//! This crate is the functional (really multi-threaded, really moving bytes)
//! implementation of the paper's three techniques:
//!
//! * the **MinIO cache** ([`MinIoByteCache`]) — a DNN-aware software cache
//!   that admits raw items until full and never evicts them, so every epoch
//!   after warm-up performs only capacity misses (§4.1),
//! * **coordinated prep** ([`CoordinatedJobGroup`], [`StagingArea`]) — when
//!   several hyper-parameter-search jobs train on the same dataset on one
//!   server, the dataset is fetched and pre-processed exactly once per epoch
//!   and every prepared minibatch is shared through an in-memory staging area
//!   with per-batch use counters and failure detection (§4.3),
//! * **partitioned caching** ([`PartitionedCacheCluster`]) — in distributed
//!   training each server's MinIO cache holds a shard of the dataset and
//!   local misses are served from the remote cache instead of storage (§4.2).
//!
//! The loaders operate on any [`dataset::DataSource`] and any
//! [`prep::ExecutablePipeline`], so the same code path is exercised by unit
//! tests, the mini-DNN accuracy experiments and the examples.  Device timing
//! is *not* simulated here (that is `coordl-pipeline`'s job); this crate is
//! about the coordination semantics: exactly-once delivery, fresh per-epoch
//! randomness, sharing, and fault handling.

pub mod cache;
pub mod coordinator;
pub mod error;
pub mod loader;
pub mod minibatch;
pub mod partition;
pub mod staging;
pub mod stats;

pub use cache::MinIoByteCache;
pub use coordinator::{CoordinatedConfig, CoordinatedJobGroup, JobEpochIterator};
pub use error::CoordlError;
pub use loader::{DataLoader, DataLoaderConfig, EpochIterator};
pub use minibatch::Minibatch;
pub use partition::{FetchOrigin, PartitionStats, PartitionedCacheCluster};
pub use staging::{StagingArea, StagingStats, TakeError};
pub use stats::LoaderStats;
