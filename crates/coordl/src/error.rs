//! Error types.

use std::fmt;

/// Errors surfaced by the CoorDL loaders.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CoordlError {
    /// A configuration value was invalid (empty dataset, zero batch size, …).
    InvalidConfig(String),
    /// A consumer timed out waiting for a minibatch and the responsible
    /// producer job was found dead and could not be recovered.
    ProducerFailed {
        /// The job that should have produced the minibatch.
        job: usize,
        /// The minibatch index that was never produced.
        batch: usize,
    },
    /// The staging area was shut down while a consumer was waiting.
    Shutdown,
    /// A loader worker thread (fetch, prep or recovery) panicked.  The
    /// session that owned it fails with this error; other sessions are
    /// unaffected.
    WorkerPanicked {
        /// Which executor stage the thread belonged to (`"fetch"`, `"prep"`
        /// or `"recovery"`).
        stage: &'static str,
        /// The panic payload, when it was a string.
        detail: String,
    },
    /// A fetch backend failed to produce an item's bytes: the item is out
    /// of range, its file is missing, or the read came back truncated.
    /// Surfaced through the batch stream instead of panicking the fetch
    /// thread, so a consumer sees *which* read failed and why.
    BackendIo {
        /// The backend's reported name (`"direct"`, `"fs"`, a profile name).
        backend: String,
        /// The item whose read failed.
        item: u64,
        /// What went wrong.
        detail: String,
    },
    /// A remote peer's cache tier failed mid-lookup (a poisoned tier, a
    /// panicking policy, an injected fault).  The degraded-mode signal of
    /// the partitioned fetch path: the caller marks the peer dead and
    /// retries through the surviving cluster, so a consumer stream never
    /// loses the sample.
    PeerFailed {
        /// The server whose tier failed.
        peer: usize,
        /// The failure payload, when it was a string.
        detail: String,
    },
}

impl fmt::Display for CoordlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoordlError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            CoordlError::ProducerFailed { job, batch } => {
                write!(
                    f,
                    "producer job {job} failed before producing batch {batch}"
                )
            }
            CoordlError::Shutdown => write!(f, "staging area shut down"),
            CoordlError::WorkerPanicked { stage, detail } => {
                write!(f, "loader {stage} worker panicked: {detail}")
            }
            CoordlError::BackendIo {
                backend,
                item,
                detail,
            } => {
                write!(f, "backend {backend} failed reading item {item}: {detail}")
            }
            CoordlError::PeerFailed { peer, detail } => {
                write!(f, "remote peer {peer} failed during lookup: {detail}")
            }
        }
    }
}

impl std::error::Error for CoordlError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(CoordlError::InvalidConfig("x".into())
            .to_string()
            .contains("x"));
        let e = CoordlError::ProducerFailed { job: 3, batch: 7 };
        let s = e.to_string();
        assert!(s.contains('3') && s.contains('7'));
        assert!(!CoordlError::Shutdown.to_string().is_empty());
        let p = CoordlError::WorkerPanicked {
            stage: "prep",
            detail: "boom".into(),
        };
        let s = p.to_string();
        assert!(s.contains("prep") && s.contains("boom") && s.contains("panicked"));
        let io = CoordlError::BackendIo {
            backend: "fs".into(),
            item: 42,
            detail: "truncated".into(),
        };
        let s = io.to_string();
        assert!(s.contains("fs") && s.contains("42") && s.contains("truncated"));
        let pf = CoordlError::PeerFailed {
            peer: 2,
            detail: "tier poisoned".into(),
        };
        let s = pf.to_string();
        assert!(s.contains("peer 2") && s.contains("tier poisoned"));
    }

    #[test]
    fn error_trait_object() {
        let e: Box<dyn std::error::Error> = Box::new(CoordlError::Shutdown);
        assert_eq!(e.to_string(), "staging area shut down");
    }
}
