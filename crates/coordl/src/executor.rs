//! The multi-threaded prefetching executor behind every
//! [`Session`](crate::Session) mode.
//!
//! The paper's fix for data stalls is *overlap*: prefetch raw items ahead of
//! the consumer and pre-process them on parallel CPU workers so storage and
//! prep latency hide behind the GPU (§2, §5).  This module implements that
//! overlap once, for all three session modes:
//!
//! ```text
//!   plan (ordered batches)
//!        │ fetch stage: 1 serial thread (default), or a pool of
//!        │ `fetch_threads` threads partitioned by cache-shard ownership
//!        ▼
//!   bounded raw-batch queue (prefetch_depth)
//!        │ N prep workers, deterministic per-(epoch, item) pipeline
//!        ▼
//!   PreparedSink — reorder buffer (single / partitioned) or the
//!                  coordinated StagingArea
//! ```
//!
//! **Determinism contract.**  With the default `fetch_threads = 1` every
//! cache-tier transaction happens on the single fetch thread, in plan
//! order, so cache hits, misses, byte provenance and eviction decisions are
//! a pure function of the plan: `workers(1)` and `workers(n)` produce
//! bit-identical [`LoaderStats`] counters for *any* tier policy, and the
//! order-preserving sinks make the delivered minibatch streams bit-identical
//! too (prep is deterministic per `(epoch, item)`).
//!
//! With `fetch_threads = f > 1` the fetch stage becomes a **sharded pool**:
//! items are routed to cache shards by `dcache::shard_of_key` (the same
//! routing the sharded tiers use), and pool thread `t` owns exactly the
//! shards `{k : k % f == t}`.  Every pool thread walks *every* plan position
//! in order, fetching only the items it owns, so all tier transactions for
//! a given key are still executed by exactly one thread, in plan order for
//! that key's shard — the per-shard access subsequence is identical to what
//! a serial sweep over the same `fetch_shards`-way sharded tier performs.
//! Streams and counters are therefore bit-identical across `fetch_threads`
//! for a fixed shard count; only the stage-timing counters (fetch
//! busy/stall per thread, prep busy/stall, consumer wait) move.  The root
//! `tests/parallel_session_equivalence.rs` and
//! `tests/parallel_fetch_equivalence.rs` suites pin this contract.
//!
//! **Failure contract.**  A panicking stage thread is caught, converted into
//! a descriptive [`CoordlError::WorkerPanicked`] and recorded in the shared
//! [`ExecutorShared`] slot; the channels disconnect, the remaining threads
//! drain out, and only the owning session's streams observe the error.
//! Shutting down mid-epoch (dropping a stream or an epoch run) never
//! deadlocks: the owner drops the consumer endpoint (or shuts the staging
//! area down) *before* joining, which unblocks any worker parked on a full
//! queue.

use crate::error::CoordlError;
use crate::minibatch::Minibatch;
use crate::stats::LoaderStats;
use crossbeam::channel::{bounded, Receiver, Sender};
use dataset::ItemId;
use parking_lot::Mutex;
use prep::ExecutablePipeline;
use std::collections::{BTreeMap, HashMap};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// How raw bytes for one item are obtained (tier → backend for single and
/// coordinated sessions, cluster lookup order for partitioned nodes).
/// A typed `Err` (a failed backend read) ends the epoch early and surfaces
/// through the stream, unlike a panic, which is caught and wrapped.
pub(crate) type FetchFn = dyn Fn(ItemId) -> Result<Arc<Vec<u8>>, CoordlError> + Send + Sync;

/// Batch-index filter: `true` drops the batch before fetch and prep
/// (coordinated failure injection).
pub(crate) type SkipFn = dyn Fn(usize) -> bool + Send + Sync;

/// Where prep workers deliver prepared minibatches.
pub(crate) trait PreparedSink: Send + Sync + 'static {
    /// Deliver one prepared minibatch.  Returning `false` tells the worker
    /// to stop (the consumer is gone or the epoch was shut down).
    fn publish(&self, mb: Minibatch) -> bool;
}

impl PreparedSink for Sender<Minibatch> {
    fn publish(&self, mb: Minibatch) -> bool {
        self.send(mb).is_ok()
    }
}

/// One fetched-but-not-yet-prepared minibatch in flight between the stages.
struct RawBatch {
    index: usize,
    items: Vec<ItemId>,
    raw: Vec<Arc<Vec<u8>>>,
}

/// State shared between an executor's threads and its owner: the first
/// worker panic (as a typed error) and the shutdown flag.
#[derive(Default)]
pub(crate) struct ExecutorShared {
    error: Mutex<Option<CoordlError>>,
    shutdown: AtomicBool,
}

impl ExecutorShared {
    /// Record the first panic; later ones are dropped (the first is the
    /// cause, the rest are fallout).
    fn record_panic(&self, stage: &'static str, payload: Box<dyn std::any::Any + Send>) {
        let detail = if let Some(s) = payload.downcast_ref::<&str>() {
            (*s).to_string()
        } else if let Some(s) = payload.downcast_ref::<String>() {
            s.clone()
        } else {
            "<non-string panic payload>".to_string()
        };
        let mut slot = self.error.lock();
        if slot.is_none() {
            *slot = Some(CoordlError::WorkerPanicked { stage, detail });
        }
    }

    /// Record a recovery-producer panic (coordinated mode's failure path).
    pub(crate) fn record_recovery_panic(&self, payload: Box<dyn std::any::Any + Send>) {
        self.record_panic("recovery", payload);
    }

    /// Record the first typed error (e.g. a failed backend read); later
    /// ones are dropped, like later panics.
    pub(crate) fn record_error(&self, err: CoordlError) {
        let mut slot = self.error.lock();
        if slot.is_none() {
            *slot = Some(err);
        }
    }

    /// The recorded failure, if any worker panicked.
    pub(crate) fn failure(&self) -> Option<CoordlError> {
        self.error.lock().clone()
    }

    /// Take the recorded failure, so a stream surfaces it exactly once.
    pub(crate) fn take_failure(&self) -> Option<CoordlError> {
        self.error.lock().take()
    }

    /// Ask the fetch thread to stop at the next batch boundary.
    pub(crate) fn begin_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
    }

    fn is_shutdown(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }
}

/// Everything needed to run one epoch's fetch + prep pipeline.
pub(crate) struct ExecutorSpec {
    /// Epoch index (seeds the per-(epoch, item) augmentations).
    pub epoch: u64,
    /// The ordered plan: `(batch_index, item_ids)` in training order.
    pub batches: Vec<(usize, Vec<ItemId>)>,
    /// Raw-byte source, called sequentially in plan order.
    pub fetch: Arc<FetchFn>,
    /// Optional batch filter (coordinated failure injection).
    pub skip: Option<Arc<SkipFn>>,
    /// The deterministic prep pipeline.
    pub pipeline: Arc<ExecutablePipeline>,
    /// Shared statistics (byte provenance, sample counts, stage timings).
    pub stats: Arc<LoaderStats>,
    /// Where prepared minibatches go.
    pub sink: Arc<dyn PreparedSink>,
    /// Prep worker threads (>= 1 enforced).
    pub workers: usize,
    /// Raw batches buffered between fetch and prep (>= 1 enforced).
    pub prefetch_depth: usize,
    /// Fetch-stage threads (>= 1 enforced).  1 is the serial default; more
    /// spawn the sharded fetch pool (see the module docs).
    pub fetch_threads: usize,
    /// Cache shards the pool's key-ownership map is computed against
    /// (>= 1 enforced; ignored when `fetch_threads == 1`).  Must match the
    /// shard count of the session's sharded tier for the determinism
    /// contract to hold.
    pub fetch_shards: usize,
}

/// A running fetch + prep pipeline for one epoch.  Dropping it (after the
/// owner has disconnected the sink's consumer side) joins every thread.
pub(crate) struct PrefetchExecutor {
    shared: Arc<ExecutorShared>,
    handles: Vec<JoinHandle<()>>,
}

impl PrefetchExecutor {
    /// Spawn the fetch stage and prep pool described by `spec`.
    pub(crate) fn spawn(spec: ExecutorSpec) -> Self {
        let shared = Arc::new(ExecutorShared::default());
        let workers = spec.workers.max(1);
        let fetch_threads = spec.fetch_threads.max(1);
        let depth = spec.prefetch_depth.max(1);
        let (raw_tx, raw_rx) = bounded::<RawBatch>(depth);
        let mut handles = Vec::with_capacity(workers + fetch_threads);

        if fetch_threads == 1 {
            // The serial fetch stage, preserved verbatim: the default path
            // every existing baseline digest was produced with.
            handles.push(spawn_fetch_thread(
                spec.batches,
                spec.fetch,
                spec.skip,
                Arc::clone(&spec.stats),
                Arc::clone(&shared),
                raw_tx,
            ));
        } else {
            let pool = Arc::new(FetchPool::new(
                fetch_threads,
                spec.fetch_shards.max(1),
                depth,
            ));
            let batches = Arc::new(spec.batches);
            for thread in 0..fetch_threads {
                handles.push(spawn_pool_fetch_thread(
                    Arc::clone(&pool),
                    thread,
                    Arc::clone(&batches),
                    Arc::clone(&spec.fetch),
                    spec.skip.clone(),
                    Arc::clone(&spec.stats),
                    Arc::clone(&shared),
                    raw_tx.clone(),
                ));
            }
            drop(raw_tx);
        }
        for _ in 0..workers {
            handles.push(spawn_prep_worker(
                spec.epoch,
                Arc::clone(&spec.pipeline),
                Arc::clone(&spec.stats),
                Arc::clone(&spec.sink),
                Arc::clone(&shared),
                raw_rx.clone(),
            ));
        }
        drop(raw_rx);

        PrefetchExecutor { shared, handles }
    }

    /// The error/shutdown state shared with streams and consumers.
    pub(crate) fn shared(&self) -> &Arc<ExecutorShared> {
        &self.shared
    }

    /// Stop fetching and join every stage thread.
    ///
    /// The owner must first unblock any worker parked on the sink (drop the
    /// consumer receiver, or shut the staging area down) — this method only
    /// unblocks the fetch → prep queue.
    pub(crate) fn shutdown_and_join(&mut self) {
        self.shared.begin_shutdown();
        for h in self.handles.drain(..) {
            // A panicked worker already recorded its error; the Err here is
            // just the resume payload.
            let _ = h.join();
        }
    }
}

impl Drop for PrefetchExecutor {
    fn drop(&mut self) {
        self.shutdown_and_join();
    }
}

fn spawn_fetch_thread(
    batches: Vec<(usize, Vec<ItemId>)>,
    fetch: Arc<FetchFn>,
    skip: Option<Arc<SkipFn>>,
    stats: Arc<LoaderStats>,
    shared: Arc<ExecutorShared>,
    raw_tx: Sender<RawBatch>,
) -> JoinHandle<()> {
    std::thread::spawn(move || {
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            for (index, items) in batches {
                if shared.is_shutdown() {
                    break;
                }
                if skip.as_ref().is_some_and(|s| s(index)) {
                    continue;
                }
                let busy = Instant::now();
                let fetched: Result<Vec<Arc<Vec<u8>>>, CoordlError> =
                    items.iter().map(|&item| fetch(item)).collect();
                stats.record_fetch_busy_for(0, busy.elapsed());
                let raw = match fetched {
                    Ok(raw) => raw,
                    Err(err) => {
                        // A typed fetch failure ends the epoch exactly like
                        // a panic would, but with the real cause attached.
                        shared.record_error(err);
                        break;
                    }
                };
                let stall = Instant::now();
                let sent = raw_tx.send(RawBatch { index, items, raw });
                stats.record_fetch_stall_for(0, stall.elapsed());
                if sent.is_err() {
                    break; // every prep worker is gone
                }
            }
        }));
        if let Err(payload) = outcome {
            shared.record_panic("fetch", payload);
        }
    })
}

/// One plan position in the pool's in-flight window: per-item byte slots
/// filled by their owning threads, and the once-evaluated skip decision.
struct PendingBatch {
    skipped: bool,
    raw: Vec<Option<Arc<Vec<u8>>>>,
    /// Pool threads that have not yet contributed to this position.
    remaining: usize,
}

/// Mutable state of a `fetch_threads > 1` pool.
///
/// `done` counts fully completed positions.  Positions complete strictly in
/// plan order: a position is complete only once every thread has passed it,
/// and each thread visits positions in increasing order, so completion of
/// position `p` implies completion of every earlier one.  The window
/// invariant threads wait on (`pos < done + depth`) therefore never
/// deadlocks: if the minimum incomplete position is `p_min`, all positions
/// below it are complete (`done >= p_min`), so a thread parked at
/// `p <= p_min` would need `p >= done + depth > p_min >= p` — impossible —
/// and the thread holding up `p_min` is running, not waiting.
struct PoolState {
    done: usize,
    pending: HashMap<usize, PendingBatch>,
    aborted: bool,
}

/// Shared coordination of the sharded fetch pool (see the module docs).
struct FetchPool {
    state: std::sync::Mutex<PoolState>,
    cv: Condvar,
    threads: usize,
    shards: usize,
    depth: usize,
}

impl FetchPool {
    fn new(threads: usize, shards: usize, depth: usize) -> Self {
        FetchPool {
            state: std::sync::Mutex::new(PoolState {
                done: 0,
                pending: HashMap::new(),
                aborted: false,
            }),
            cv: Condvar::new(),
            threads,
            shards,
            depth,
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, PoolState> {
        // A panicking pool thread records a typed error and aborts the pool;
        // peers must still be able to observe the abort through the lock.
        self.state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Stop every pool thread at its next window check (error/panic/
    /// disconnect fallout — never called on a normal completion).
    fn abort(&self) {
        self.lock().aborted = true;
        self.cv.notify_all();
    }

    /// Which pool thread owns `item`: the thread that executes every cache
    /// transaction for `item`'s shard.  Routing MUST match the sharded
    /// tier's (`dcache::shard_of_key`) so shard ownership and lock ownership
    /// coincide.
    fn owner(&self, item: ItemId) -> usize {
        dcache::shard_of_key(item, self.shards) % self.threads
    }
}

#[allow(clippy::too_many_arguments)]
fn spawn_pool_fetch_thread(
    pool: Arc<FetchPool>,
    thread: usize,
    batches: Arc<Vec<(usize, Vec<ItemId>)>>,
    fetch: Arc<FetchFn>,
    skip: Option<Arc<SkipFn>>,
    stats: Arc<LoaderStats>,
    shared: Arc<ExecutorShared>,
    raw_tx: Sender<RawBatch>,
) -> JoinHandle<()> {
    std::thread::spawn(move || {
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            run_pool_fetch_thread(
                &pool,
                thread,
                &batches,
                &*fetch,
                skip.as_deref(),
                &stats,
                &shared,
                &raw_tx,
            );
        }));
        if let Err(payload) = outcome {
            shared.record_panic("fetch", payload);
            // Peers parked on the window must not wait for contributions
            // that will never come.
            pool.abort();
        }
    })
}

#[allow(clippy::too_many_arguments)]
fn run_pool_fetch_thread(
    pool: &FetchPool,
    thread: usize,
    batches: &[(usize, Vec<ItemId>)],
    fetch: &FetchFn,
    skip: Option<&SkipFn>,
    stats: &LoaderStats,
    shared: &ExecutorShared,
    raw_tx: &Sender<RawBatch>,
) {
    for (pos, (index, items)) in batches.iter().enumerate() {
        // Wait for the prefetch window, then claim (or join) this
        // position's pending entry under the same lock hold.
        let wait = Instant::now();
        let mut st = pool.lock();
        while !st.aborted && !shared.is_shutdown() && pos >= st.done + pool.depth {
            // Timed wait: `begin_shutdown` does not know about this condvar,
            // so a parked thread re-checks the flag on its own clock.
            let (guard, _timeout) = pool
                .cv
                .wait_timeout(st, Duration::from_millis(25))
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            st = guard;
        }
        if st.aborted || shared.is_shutdown() {
            return;
        }
        let threads = pool.threads;
        let entry = st.pending.entry(pos).or_insert_with(|| PendingBatch {
            // Evaluated exactly once per position, by whichever thread
            // arrives first: the filter may read mutable state (coordinated
            // kill flags), and the pool must agree on one decision.
            skipped: skip.is_some_and(|s| s(*index)),
            raw: vec![None; items.len()],
            remaining: threads,
        });
        let skipped = entry.skipped;
        drop(st);
        stats.record_fetch_stall_for(thread, wait.elapsed());

        // Fetch the items this thread owns, outside the lock: owners are
        // disjoint across threads, so every tier transaction for a given
        // key happens on one thread, in plan order for that key's shard.
        let mut mine: Vec<(usize, Arc<Vec<u8>>)> = Vec::new();
        if !skipped {
            let busy = Instant::now();
            for (slot, &item) in items.iter().enumerate() {
                if pool.owner(item) != thread {
                    continue;
                }
                match fetch(item) {
                    Ok(bytes) => mine.push((slot, bytes)),
                    Err(err) => {
                        stats.record_fetch_busy_for(thread, busy.elapsed());
                        shared.record_error(err);
                        pool.abort();
                        return;
                    }
                }
            }
            stats.record_fetch_busy_for(thread, busy.elapsed());
        }

        // Contribute, and as the last thread in, take the completed batch.
        let ready = {
            let mut st = pool.lock();
            let entry = st
                .pending
                .get_mut(&pos)
                .expect("a contributed position stays pending until complete");
            for (slot, bytes) in mine {
                entry.raw[slot] = Some(bytes);
            }
            entry.remaining -= 1;
            if entry.remaining == 0 {
                let entry = st.pending.remove(&pos).expect("entry just updated");
                st.done += 1;
                pool.cv.notify_all();
                (!entry.skipped).then_some(entry)
            } else {
                None
            }
        };
        // Dispatch outside the lock; the sink reorders, so out-of-order
        // sends between racing last-contributors are fine.
        if let Some(entry) = ready {
            let raw: Vec<Arc<Vec<u8>>> = entry
                .raw
                .into_iter()
                .map(|slot| slot.expect("every item was fetched by its owner"))
                .collect();
            let stall = Instant::now();
            let sent = raw_tx.send(RawBatch {
                index: *index,
                items: items.clone(),
                raw,
            });
            stats.record_fetch_stall_for(thread, stall.elapsed());
            if sent.is_err() {
                // Every prep worker is gone; the channel stays disconnected
                // for all senders, so stop the whole pool.
                pool.abort();
                return;
            }
        }
    }
}

fn spawn_prep_worker(
    epoch: u64,
    pipeline: Arc<ExecutablePipeline>,
    stats: Arc<LoaderStats>,
    sink: Arc<dyn PreparedSink>,
    shared: Arc<ExecutorShared>,
    raw_rx: Receiver<RawBatch>,
) -> JoinHandle<()> {
    std::thread::spawn(move || {
        let outcome = catch_unwind(AssertUnwindSafe(|| loop {
            let stall = Instant::now();
            let Ok(batch) = raw_rx.recv() else {
                break; // fetch thread done and queue drained
            };
            stats.record_prep_stall(stall.elapsed());
            let busy = Instant::now();
            let samples = batch
                .items
                .iter()
                .zip(&batch.raw)
                .map(|(&item, raw)| pipeline.prepare(epoch, item, raw))
                .collect::<Vec<_>>();
            stats.record_prepared(samples.len() as u64);
            stats.record_prep_busy(busy.elapsed());
            // Publishing blocks on downstream backpressure (a full output
            // queue or staging window); like the recv above, that is time
            // the worker is not pre-processing, so it counts as prep stall.
            let publishing = Instant::now();
            let delivered = sink.publish(Minibatch {
                epoch,
                index: batch.index,
                samples,
            });
            stats.record_prep_stall(publishing.elapsed());
            if !delivered {
                break; // consumer gone or epoch shut down
            }
        }));
        if let Err(payload) = outcome {
            shared.record_panic("prep", payload);
        }
    })
}

/// Spawn one epoch's executor delivering into an order-preserving stream:
/// prepared batches flow through a bounded channel into a reorder buffer
/// that yields them strictly in plan order.
#[allow(clippy::too_many_arguments)]
pub(crate) fn spawn_ordered_epoch(
    epoch: u64,
    batches: Vec<(usize, Vec<ItemId>)>,
    fetch: Arc<FetchFn>,
    pipeline: Arc<ExecutablePipeline>,
    stats: Arc<LoaderStats>,
    workers: usize,
    prefetch_depth: usize,
    fetch_threads: usize,
    fetch_shards: usize,
) -> OrderedStream {
    let total = batches.len();
    let (out_tx, out_rx) = bounded::<Minibatch>(prefetch_depth.max(1));
    let executor = PrefetchExecutor::spawn(ExecutorSpec {
        epoch,
        batches,
        fetch,
        skip: None,
        pipeline,
        stats: Arc::clone(&stats),
        sink: Arc::new(out_tx),
        workers,
        prefetch_depth,
        fetch_threads,
        fetch_shards,
    });
    OrderedStream {
        rx: out_rx,
        reorder: BTreeMap::new(),
        next: 0,
        total,
        stats,
        executor,
    }
}

/// Iterator over one epoch's minibatches, delivered in training order.
///
/// Owns the epoch's executor: dropping the stream disconnects the output
/// channel (unblocking any worker mid-`send`) and joins every stage thread,
/// so no worker outlives the stream.
pub(crate) struct OrderedStream {
    rx: Receiver<Minibatch>,
    reorder: BTreeMap<usize, Minibatch>,
    next: usize,
    total: usize,
    stats: Arc<LoaderStats>,
    executor: PrefetchExecutor,
}

impl OrderedStream {
    /// Number of minibatches this epoch will deliver.
    pub(crate) fn total_batches(&self) -> usize {
        self.total
    }

    /// The worker failure that ended this stream early, surfaced at most
    /// once (used by `Session` streams to turn an early end into a typed
    /// error).
    pub(crate) fn take_failure(&mut self) -> Option<CoordlError> {
        if self.next >= self.total {
            return None; // the epoch completed; any panic came after
        }
        self.executor.shared().take_failure()
    }
}

impl Iterator for OrderedStream {
    type Item = Minibatch;

    fn next(&mut self) -> Option<Minibatch> {
        if self.next >= self.total {
            return None;
        }
        loop {
            if let Some(mb) = self.reorder.remove(&self.next) {
                self.next += 1;
                self.stats.record_delivered(mb.len() as u64);
                return Some(mb);
            }
            let wait = Instant::now();
            let received = self.rx.recv();
            self.stats.record_consumer_wait(wait.elapsed());
            match received {
                Ok(mb) => {
                    self.reorder.insert(mb.index, mb);
                }
                Err(_) => return None, // workers gone; epoch incomplete
            }
        }
    }
}

impl Drop for OrderedStream {
    fn drop(&mut self) {
        // Disconnect the output channel so any worker blocked on `send`
        // observes the disconnect and exits, then join them all.
        self.reorder.clear();
        let (_tx, dummy_rx) = bounded::<Minibatch>(1);
        let real_rx = std::mem::replace(&mut self.rx, dummy_rx);
        drop(real_rx);
        self.executor.shutdown_and_join();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    fn plan(batches: usize, per_batch: usize) -> Vec<(usize, Vec<ItemId>)> {
        (0..batches)
            .map(|i| {
                let items = (0..per_batch)
                    .map(|j| (i * per_batch + j) as ItemId)
                    .collect();
                (i, items)
            })
            .collect()
    }

    fn byte_fetch() -> Arc<FetchFn> {
        Arc::new(|item: ItemId| Ok(Arc::new(vec![item as u8; 16])))
    }

    fn pipeline() -> Arc<ExecutablePipeline> {
        Arc::new(ExecutablePipeline::new(
            prep::PrepPipeline::image_classification(),
            2,
            7,
        ))
    }

    #[test]
    fn ordered_stream_delivers_in_plan_order_for_any_worker_count() {
        for workers in [1, 2, 8] {
            for depth in [1, 4] {
                let stats = Arc::new(LoaderStats::default());
                let stream = spawn_ordered_epoch(
                    0,
                    plan(9, 4),
                    byte_fetch(),
                    pipeline(),
                    Arc::clone(&stats),
                    workers,
                    depth,
                    1,
                    1,
                );
                let indices: Vec<usize> = stream.map(|mb| mb.index).collect();
                assert_eq!(indices, (0..9).collect::<Vec<_>>(), "w={workers} d={depth}");
                assert_eq!(stats.samples_prepared(), 36);
                assert_eq!(stats.samples_delivered(), 36);
            }
        }
    }

    #[test]
    fn fetch_order_is_sequential_regardless_of_workers() {
        // The determinism contract: fetches happen in plan order on one
        // thread, so a recording fetch function sees the identical sequence
        // for any worker count.
        let record = |workers: usize| {
            let seen = Arc::new(Mutex::new(Vec::new()));
            let seen2 = Arc::clone(&seen);
            let fetch: Arc<FetchFn> = Arc::new(move |item| {
                seen2.lock().push(item);
                Ok(Arc::new(vec![0u8; 8]))
            });
            let stream = spawn_ordered_epoch(
                0,
                plan(6, 3),
                fetch,
                pipeline(),
                Arc::new(LoaderStats::default()),
                workers,
                2,
                1,
                1,
            );
            let _ = stream.count();
            let order = seen.lock().clone();
            order
        };
        let serial = record(1);
        assert_eq!(serial, (0..18).collect::<Vec<ItemId>>());
        assert_eq!(record(4), serial);
    }

    #[test]
    fn dropping_the_stream_early_joins_all_threads_without_deadlock() {
        for _ in 0..8 {
            let mut stream = spawn_ordered_epoch(
                0,
                plan(64, 4),
                byte_fetch(),
                pipeline(),
                Arc::new(LoaderStats::default()),
                3,
                1, // smallest window: workers park on full queues constantly
                1,
                1,
            );
            let _ = stream.next();
            drop(stream); // must unblock + join, not hang
        }
    }

    #[test]
    fn panicking_fetch_surfaces_a_typed_error() {
        let fetch: Arc<FetchFn> = Arc::new(|item| {
            if item == 7 {
                panic!("injected fetch failure for item {item}");
            }
            Ok(Arc::new(vec![1u8; 8]))
        });
        let mut stream = spawn_ordered_epoch(
            0,
            plan(5, 2),
            fetch,
            pipeline(),
            Arc::new(LoaderStats::default()),
            2,
            2,
            1,
            1,
        );
        let delivered = stream.by_ref().count();
        assert!(delivered < 5, "the epoch must end early");
        let err = stream.take_failure().expect("panic recorded");
        match &err {
            CoordlError::WorkerPanicked { stage, detail } => {
                assert_eq!(*stage, "fetch");
                assert!(detail.contains("injected fetch failure"));
            }
            other => panic!("expected WorkerPanicked, got {other}"),
        }
        assert!(stream.take_failure().is_none(), "surfaced exactly once");
    }

    #[test]
    fn skip_filter_drops_batches_before_fetch() {
        let fetched = Arc::new(AtomicUsize::new(0));
        let f2 = Arc::clone(&fetched);
        let fetch: Arc<FetchFn> = Arc::new(move |_| {
            f2.fetch_add(1, Ordering::SeqCst);
            Ok(Arc::new(vec![0u8; 4]))
        });
        let (out_tx, out_rx) = bounded::<Minibatch>(16);
        let stats = Arc::new(LoaderStats::default());
        let mut executor = PrefetchExecutor::spawn(ExecutorSpec {
            epoch: 0,
            batches: plan(6, 2),
            fetch,
            skip: Some(Arc::new(|index| index % 2 == 1)),
            pipeline: pipeline(),
            stats,
            sink: Arc::new(out_tx),
            workers: 2,
            prefetch_depth: 4,
            fetch_threads: 1,
            fetch_shards: 1,
        });
        let mut indices = Vec::new();
        while let Ok(mb) = out_rx.recv() {
            indices.push(mb.index);
        }
        indices.sort_unstable();
        assert_eq!(indices, vec![0, 2, 4]);
        assert_eq!(fetched.load(Ordering::SeqCst), 6, "3 batches x 2 items");
        executor.shutdown_and_join();
    }

    #[test]
    fn fetch_pool_delivers_the_serial_stream_for_any_thread_count() {
        let run = |fetch_threads: usize| {
            let stats = Arc::new(LoaderStats::default());
            let stream = spawn_ordered_epoch(
                3,
                plan(11, 4),
                byte_fetch(),
                pipeline(),
                Arc::clone(&stats),
                2,
                3,
                fetch_threads,
                8,
            );
            let out: Vec<(usize, Vec<Vec<u8>>)> = stream
                .map(|mb| {
                    (
                        mb.index,
                        mb.samples.iter().map(|s| s.data.clone()).collect(),
                    )
                })
                .collect();
            assert_eq!(stats.samples_prepared(), 44);
            out
        };
        let serial = run(1);
        assert_eq!(serial.len(), 11);
        for f in [2, 3, 4, 7] {
            assert_eq!(run(f), serial, "fetch_threads={f}");
        }
    }

    #[test]
    fn fetch_pool_partitions_keys_exactly_once_by_shard_ownership() {
        // Every item must be fetched exactly once, by the thread that owns
        // its shard.  A recording fetch closure tags each fetch with the
        // calling thread's id; the ownership map is then checked against
        // `shard_of_key` directly.
        let threads = 3;
        let shards = 8;
        let seen: Arc<Mutex<Vec<(ItemId, std::thread::ThreadId)>>> =
            Arc::new(Mutex::new(Vec::new()));
        let seen2 = Arc::clone(&seen);
        let fetch: Arc<FetchFn> = Arc::new(move |item| {
            seen2.lock().push((item, std::thread::current().id()));
            Ok(Arc::new(vec![item as u8; 8]))
        });
        let stream = spawn_ordered_epoch(
            0,
            plan(10, 5),
            fetch,
            pipeline(),
            Arc::new(LoaderStats::default()),
            2,
            4,
            threads,
            shards,
        );
        assert_eq!(stream.count(), 10);
        let log = seen.lock().clone();
        assert_eq!(log.len(), 50, "each item fetched exactly once");
        let mut item_thread: HashMap<ItemId, std::thread::ThreadId> = HashMap::new();
        let mut pool_thread_of: HashMap<usize, std::thread::ThreadId> = HashMap::new();
        for (item, tid) in log {
            assert!(
                item_thread.insert(item, tid).is_none(),
                "item {item} fetched twice"
            );
            let owner = dcache::shard_of_key(item, shards) % threads;
            // Each pool-thread slot maps to one OS thread, consistently.
            match pool_thread_of.entry(owner) {
                std::collections::hash_map::Entry::Vacant(e) => {
                    e.insert(tid);
                }
                std::collections::hash_map::Entry::Occupied(e) => {
                    assert_eq!(*e.get(), tid, "owner {owner} split across threads");
                }
            }
        }
        // Distinct pool-thread slots really are distinct OS threads.
        let distinct: std::collections::HashSet<_> = pool_thread_of.values().collect();
        assert_eq!(distinct.len(), pool_thread_of.len());
    }

    #[test]
    fn fetch_pool_panic_surfaces_a_typed_error() {
        let fetch: Arc<FetchFn> = Arc::new(|item| {
            if item == 13 {
                panic!("injected pool fetch failure for item {item}");
            }
            Ok(Arc::new(vec![1u8; 8]))
        });
        let mut stream = spawn_ordered_epoch(
            0,
            plan(8, 3),
            fetch,
            pipeline(),
            Arc::new(LoaderStats::default()),
            2,
            2,
            4,
            8,
        );
        let delivered = stream.by_ref().count();
        assert!(delivered < 8, "the epoch must end early");
        let err = stream.take_failure().expect("panic recorded");
        match &err {
            CoordlError::WorkerPanicked { stage, detail } => {
                assert_eq!(*stage, "fetch");
                assert!(detail.contains("injected pool fetch failure"));
            }
            other => panic!("expected WorkerPanicked, got {other}"),
        }
    }

    #[test]
    fn fetch_pool_typed_error_ends_the_epoch() {
        let fetch: Arc<FetchFn> = Arc::new(|item| {
            if item == 9 {
                return Err(CoordlError::BackendIo {
                    backend: "test".into(),
                    item,
                    detail: "injected typed failure".into(),
                });
            }
            Ok(Arc::new(vec![2u8; 8]))
        });
        let mut stream = spawn_ordered_epoch(
            0,
            plan(6, 3),
            fetch,
            pipeline(),
            Arc::new(LoaderStats::default()),
            2,
            2,
            2,
            8,
        );
        let delivered = stream.by_ref().count();
        assert!(delivered < 6, "the epoch must end early");
        match stream.take_failure().expect("error recorded") {
            CoordlError::BackendIo { item, .. } => assert_eq!(item, 9),
            other => panic!("expected BackendIo, got {other}"),
        }
    }

    #[test]
    fn dropping_a_pool_stream_early_joins_all_threads_without_deadlock() {
        for _ in 0..8 {
            let mut stream = spawn_ordered_epoch(
                0,
                plan(64, 4),
                byte_fetch(),
                pipeline(),
                Arc::new(LoaderStats::default()),
                2,
                1, // smallest window: pool threads park on it constantly
                4,
                8,
            );
            let _ = stream.next();
            drop(stream); // must unblock + join, not hang
        }
    }

    #[test]
    fn skip_filter_drops_batches_before_fetch_with_a_pool() {
        let fetched = Arc::new(AtomicUsize::new(0));
        let f2 = Arc::clone(&fetched);
        let fetch: Arc<FetchFn> = Arc::new(move |_| {
            f2.fetch_add(1, Ordering::SeqCst);
            Ok(Arc::new(vec![0u8; 4]))
        });
        let (out_tx, out_rx) = bounded::<Minibatch>(16);
        let stats = Arc::new(LoaderStats::default());
        let mut executor = PrefetchExecutor::spawn(ExecutorSpec {
            epoch: 0,
            batches: plan(6, 2),
            fetch,
            skip: Some(Arc::new(|index| index % 2 == 1)),
            pipeline: pipeline(),
            stats,
            sink: Arc::new(out_tx),
            workers: 2,
            prefetch_depth: 4,
            fetch_threads: 3,
            fetch_shards: 8,
        });
        let mut indices = Vec::new();
        while let Ok(mb) = out_rx.recv() {
            indices.push(mb.index);
        }
        indices.sort_unstable();
        assert_eq!(indices, vec![0, 2, 4]);
        assert_eq!(fetched.load(Ordering::SeqCst), 6, "3 batches x 2 items");
        executor.shutdown_and_join();
    }
}
