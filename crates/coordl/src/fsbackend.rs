//! [`FsBackend`]: a fetch backend that serves real bytes from real files.
//!
//! Where [`DirectBackend`](crate::DirectBackend) fabricates payloads and
//! [`ProfiledBackend`](crate::ProfiledBackend) only charges modelled
//! seconds, `FsBackend` materializes the dataset once as a packed,
//! page-aligned `DATA` file under a [`Vfs`] directory and serves every
//! fetch with an actual positional read through an
//! [`AlignedReader`].  Each read's wall-clock time is
//! accumulated as *measured* device seconds next to the optional modelled
//! ones, which is what turns `dstool validate` into a genuine
//! predicted-vs-modelled-vs-measured three-way.

use crate::backend::{check_item_in_range, FetchBackend};
use crate::error::CoordlError;
use dataset::{DataSource, ItemId};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;
use storage::{AccessPattern, DeviceProfile};
use vfs::{AlignedReader, Vfs, VfsError, PAGE_SIZE};

fn io_error(item: ItemId, err: VfsError) -> CoordlError {
    CoordlError::BackendIo {
        backend: "fs".to_string(),
        item,
        detail: err.to_string(),
    }
}

/// A [`FetchBackend`] over a materialized, page-aligned dataset file.
///
/// Layout: item `i` starts at page-aligned offset `offsets[i]` of
/// `<dir>/DATA` and occupies `item_bytes(i)` bytes; the gap to the next
/// page boundary is zero padding.  Materialization happens once in
/// [`FsBackend::new`] and is skipped when the file already has the expected
/// length — so a backend rebuilt over the same [`OsVfs`](vfs::OsVfs) root
/// (a restart) pays no re-write, and CI's `MemVfs` runs stay deterministic.
pub struct FsBackend {
    vfs: Arc<dyn Vfs>,
    reader: AlignedReader,
    /// Page-aligned start offset of each item, plus the total file length
    /// as a sentinel (`offsets[num_items]`).
    offsets: Vec<u64>,
    sizes: Vec<u64>,
    profile: Option<(DeviceProfile, AccessPattern)>,
    modelled_nanos: AtomicU64,
    measured_nanos: AtomicU64,
}

impl FsBackend {
    /// Materialize `source` under `dir` of `vfs` (skipping the write when a
    /// previous materialization is already present) and serve reads with a
    /// readahead window of `readahead_pages` pages.
    pub fn new(
        vfs: Arc<dyn Vfs>,
        dir: &str,
        source: &dyn DataSource,
        readahead_pages: u32,
    ) -> Result<Self, CoordlError> {
        let num_items = source.len();
        let mut offsets = Vec::with_capacity(num_items as usize + 1);
        let mut sizes = Vec::with_capacity(num_items as usize);
        let mut cursor = 0u64;
        for item in 0..num_items {
            offsets.push(cursor);
            let size = source.item_bytes(item);
            sizes.push(size);
            cursor += size.div_ceil(PAGE_SIZE) * PAGE_SIZE;
        }
        offsets.push(cursor);

        let path = format!("{dir}/DATA");
        let file = vfs.open(&path, true).map_err(|e| io_error(u64::MAX, e))?;
        let existing = vfs.len(file).map_err(|e| io_error(u64::MAX, e))?;
        if existing != cursor {
            // Write item by item; the file ends page-aligned, so a matching
            // length marks a completed materialization.
            for item in 0..num_items {
                let bytes = source.read(item);
                if bytes.len() as u64 != sizes[item as usize] {
                    return Err(CoordlError::BackendIo {
                        backend: "fs".to_string(),
                        item,
                        detail: format!(
                            "source returned {} bytes, expected {}",
                            bytes.len(),
                            sizes[item as usize]
                        ),
                    });
                }
                vfs.write_at(file, offsets[item as usize], &bytes)
                    .map_err(|e| io_error(item, e))?;
            }
            // Pad the final page so length alone certifies completeness.
            if cursor > 0 {
                vfs.write_at(file, cursor - 1, &[0u8][..])
                    .map_err(|e| io_error(num_items.saturating_sub(1), e))?;
                // The last item's tail byte may be the pad position; restore
                // it when the item runs to the very end of the file.
                let last = num_items - 1;
                let last_end = offsets[last as usize] + sizes[last as usize];
                if last_end == cursor {
                    let bytes = source.read(last);
                    vfs.write_at(file, cursor - 1, &bytes[bytes.len() - 1..])
                        .map_err(|e| io_error(last, e))?;
                }
            }
            vfs.sync(file).map_err(|e| io_error(u64::MAX, e))?;
        }

        let reader = AlignedReader::new(Arc::clone(&vfs), file, readahead_pages);
        Ok(FsBackend {
            vfs,
            reader,
            offsets,
            sizes,
            profile: None,
            modelled_nanos: AtomicU64::new(0),
            measured_nanos: AtomicU64::new(0),
        })
    }

    /// Also charge modelled seconds per read against `profile`, so reports
    /// carry the modelled and the measured number side by side.
    pub fn with_profile(mut self, profile: DeviceProfile, pattern: AccessPattern) -> Self {
        self.profile = Some((profile, pattern));
        self
    }

    /// The VFS the dataset lives on.
    pub fn vfs(&self) -> &Arc<dyn Vfs> {
        &self.vfs
    }

    /// The readahead window, in pages.
    pub fn readahead_pages(&self) -> u32 {
        self.reader.readahead_pages()
    }

    /// Reads served from the readahead span without touching the VFS.
    pub fn span_hits(&self) -> u64 {
        self.reader.span_hits()
    }

    /// Reads that issued a physical aligned read.
    pub fn span_misses(&self) -> u64 {
        self.reader.span_misses()
    }
}

impl FetchBackend for FsBackend {
    fn num_items(&self) -> u64 {
        self.sizes.len() as u64
    }

    fn item_bytes(&self, item: ItemId) -> u64 {
        self.sizes[item as usize]
    }

    fn read(&self, item: ItemId) -> Result<Vec<u8>, CoordlError> {
        check_item_in_range("fs", item, self.num_items())?;
        let offset = self.offsets[item as usize];
        let len = self.sizes[item as usize] as usize;
        let started = Instant::now();
        let bytes = self
            .reader
            .read(offset, len)
            .map_err(|e| io_error(item, e))?;
        self.measured_nanos
            .fetch_add(started.elapsed().as_nanos() as u64, Ordering::Relaxed);
        if bytes.len() != len {
            return Err(CoordlError::BackendIo {
                backend: "fs".to_string(),
                item,
                detail: format!("truncated read: expected {len} bytes, got {}", bytes.len()),
            });
        }
        if let Some((profile, pattern)) = &self.profile {
            let secs = profile.read_seconds(len as u64, *pattern);
            self.modelled_nanos
                .fetch_add((secs * 1e9) as u64, Ordering::Relaxed);
        }
        Ok(bytes)
    }

    fn profile(&self) -> Option<&DeviceProfile> {
        self.profile.as_ref().map(|(p, _)| p)
    }

    fn device_seconds(&self) -> f64 {
        self.modelled_nanos.load(Ordering::Relaxed) as f64 / 1e9
    }

    fn measured_seconds(&self) -> f64 {
        self.measured_nanos.load(Ordering::Relaxed) as f64 / 1e9
    }

    fn name(&self) -> &'static str {
        "fs"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dataset::{DatasetSpec, SyntheticItemStore};
    use vfs::MemVfs;

    fn store(n: u64, size: u64) -> SyntheticItemStore {
        SyntheticItemStore::new(DatasetSpec::new("t", n, size, 0.0, 6.0), 3)
    }

    #[test]
    fn fs_backend_serves_the_same_bytes_as_the_source() {
        let src = store(20, 1000);
        let vfs: Arc<dyn Vfs> = Arc::new(MemVfs::new());
        let b = FsBackend::new(Arc::clone(&vfs), "ds", &src, 2).unwrap();
        assert_eq!(b.num_items(), 20);
        for item in 0..20 {
            assert_eq!(b.read(item).unwrap(), src.read(item), "item {item}");
            assert_eq!(b.item_bytes(item), 1000);
        }
        assert!(b.measured_seconds() >= 0.0);
        assert_eq!(b.device_seconds(), 0.0, "unprofiled: no modelled time");
    }

    #[test]
    fn items_start_on_page_boundaries() {
        let src = store(4, 5000);
        let vfs: Arc<dyn Vfs> = Arc::new(MemVfs::new());
        let b = FsBackend::new(Arc::clone(&vfs), "ds", &src, 0).unwrap();
        for item in 0..4usize {
            assert_eq!(b.offsets[item] % PAGE_SIZE, 0);
        }
        // 5000 bytes occupy two 4 KiB pages.
        assert_eq!(b.offsets[1], 2 * PAGE_SIZE);
        let file = vfs.open("ds/DATA", false).unwrap();
        assert_eq!(vfs.len(file).unwrap(), 8 * PAGE_SIZE, "4 items × 2 pages");
    }

    #[test]
    fn rematerialization_is_skipped_when_the_file_is_complete() {
        let src = store(8, 3000);
        let vfs: Arc<dyn Vfs> = Arc::new(MemVfs::new());
        let _first = FsBackend::new(Arc::clone(&vfs), "ds", &src, 0).unwrap();
        let writes_after_first = vfs.stats().writes;
        let second = FsBackend::new(Arc::clone(&vfs), "ds", &src, 0).unwrap();
        assert_eq!(
            vfs.stats().writes,
            writes_after_first,
            "a complete DATA file is reused, not rewritten"
        );
        assert_eq!(second.read(5).unwrap(), src.read(5));
    }

    #[test]
    fn readahead_turns_sequential_item_reads_into_fewer_physical_reads() {
        let src = store(32, 2048);
        let vfs: Arc<dyn Vfs> = Arc::new(MemVfs::new());
        let wide = FsBackend::new(Arc::clone(&vfs), "wide", &src, 8).unwrap();
        let narrow = FsBackend::new(Arc::clone(&vfs), "narrow", &src, 0).unwrap();
        for item in 0..32 {
            let _ = wide.read(item).unwrap();
            let _ = narrow.read(item).unwrap();
        }
        assert!(
            wide.span_misses() < narrow.span_misses(),
            "readahead {} misses vs none {}",
            wide.span_misses(),
            narrow.span_misses()
        );
        assert_eq!(narrow.span_misses(), 32, "no readahead: one read per item");
    }

    #[test]
    fn truncated_data_file_surfaces_backend_io() {
        let src = store(4, 2048);
        let dir = std::env::temp_dir().join(format!("coordl-fsb-trunc-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let vfs: Arc<dyn Vfs> = Arc::new(vfs::OsVfs::new(&dir).unwrap());
        let b = FsBackend::new(Arc::clone(&vfs), "ds", &src, 0).unwrap();
        assert_eq!(b.read(3).unwrap(), src.read(3));
        // Truncate the materialized file behind the backend's back: the
        // next uncached read comes back short and must be a typed error,
        // not a panic.  (Item 3's span is still buffered; item 1 is not.)
        std::fs::OpenOptions::new()
            .write(true)
            .open(dir.join("ds/DATA"))
            .unwrap()
            .set_len(100)
            .unwrap();
        match b.read(1) {
            Err(CoordlError::BackendIo {
                backend,
                item,
                detail,
            }) => {
                assert_eq!(backend, "fs");
                assert_eq!(item, 1);
                assert!(detail.contains("truncated"), "{detail}");
            }
            other => panic!("expected truncated-read error, got {other:?}"),
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn out_of_range_item_is_a_typed_error() {
        let src = store(4, 2048);
        let vfs: Arc<dyn Vfs> = Arc::new(MemVfs::new());
        let b = FsBackend::new(Arc::clone(&vfs), "ds", &src, 0).unwrap();
        assert!(matches!(
            b.read(99),
            Err(CoordlError::BackendIo { item: 99, .. })
        ));
    }

    #[test]
    fn modelled_seconds_accumulate_exactly_under_concurrent_reads() {
        // The sharded fetch pool issues backend reads from several threads
        // at once; the per-read nanosecond quantization happens before the
        // atomic add, so a disjoint partition of the items across threads
        // models exactly the serial total (measured seconds are wall-clock
        // and only need to stay monotone).
        let src = store(48, 4096);
        let serial = FsBackend::new(Arc::new(MemVfs::new()), "ds", &src, 2)
            .unwrap()
            .with_profile(DeviceProfile::sata_ssd(), AccessPattern::Random);
        for item in 0..48 {
            let _ = serial.read(item).unwrap();
        }
        let b = Arc::new(
            FsBackend::new(Arc::new(MemVfs::new()), "ds", &src, 2)
                .unwrap()
                .with_profile(DeviceProfile::sata_ssd(), AccessPattern::Random),
        );
        let threads = 4u64;
        std::thread::scope(|s| {
            for t in 0..threads {
                let b = Arc::clone(&b);
                s.spawn(move || {
                    let mut item = t;
                    while item < 48 {
                        let _ = b.read(item).unwrap();
                        item += threads;
                    }
                });
            }
        });
        assert_eq!(b.device_seconds(), serial.device_seconds());
        assert!(b.measured_seconds() > 0.0);
    }

    #[test]
    fn profiled_fs_backend_reports_modelled_and_measured_side_by_side() {
        let src = store(16, 4096);
        let vfs: Arc<dyn Vfs> = Arc::new(MemVfs::new());
        let b = FsBackend::new(Arc::clone(&vfs), "ds", &src, 2)
            .unwrap()
            .with_profile(DeviceProfile::sata_ssd(), AccessPattern::Random);
        for item in 0..16 {
            let _ = b.read(item).unwrap();
        }
        let expected = 16.0 * DeviceProfile::sata_ssd().read_seconds(4096, AccessPattern::Random);
        assert!((b.device_seconds() - expected).abs() < 1e-6);
        assert!(b.measured_seconds() > 0.0, "real reads take real time");
        assert_eq!(b.profile().unwrap().name, "sata-ssd");
    }
}
