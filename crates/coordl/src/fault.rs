//! Fault injection for partitioned clusters: a deterministic [`FaultPlan`]
//! driven by a shared [`FaultClock`].
//!
//! The clock counts cluster fetches; the plan is a sorted schedule of
//! membership events (kill / graceful leave / rejoin) positioned on that
//! step axis.  [`PartitionedCacheCluster`](crate::PartitionedCacheCluster)
//! ticks the clock once per fetch and applies every event that has come due
//! before serving, so a plan replays bit-identically whenever fetches are
//! driven in the same order — which is exactly how the chaos bench compares
//! a faulty run's healthy prefix against a fault-free twin.
//!
//! Schedules come from the same seeded generator the simulator uses
//! ([`dcache::fault_schedule`]); [`FaultPlan::seeded`] scales its
//! epoch-boundary units to fetch steps, so predicted (simulator) and
//! empirical (runtime) degraded behaviour line up event for event.

use std::sync::atomic::{AtomicU64, Ordering};

pub use dcache::{FaultEvent, FaultKind};

/// A monotonically increasing fetch-step counter shared by every node of a
/// cluster.  Step 0 is "before the first fetch"; the n-th fetch observes
/// step n.
#[derive(Debug, Default)]
pub struct FaultClock {
    step: AtomicU64,
}

impl FaultClock {
    /// A clock at step 0.
    pub fn new() -> Self {
        FaultClock::default()
    }

    /// Advance by one fetch and return the new step.
    pub fn tick(&self) -> u64 {
        self.step.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// The current step without advancing.
    pub fn now(&self) -> u64 {
        self.step.load(Ordering::Relaxed)
    }
}

/// One scheduled membership event on the fetch-step axis.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultStep {
    /// The event fires once `at_step` fetches have completed: the first
    /// fetch to tick the [`FaultClock`] *past* `at_step` observes the new
    /// membership before it is served.  With `at_step = epoch × dataset_len`
    /// the event lands exactly on an epoch boundary.
    pub at_step: u64,
    /// The node the event applies to.
    pub node: usize,
    /// What happens to it.
    pub kind: FaultKind,
}

/// A deterministic, sorted schedule of membership faults for one cluster.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    steps: Vec<FaultStep>,
}

impl FaultPlan {
    /// Build a plan from explicit events; they are stably sorted by
    /// `at_step`, so same-step events keep their given order.
    pub fn new(mut steps: Vec<FaultStep>) -> Self {
        steps.sort_by_key(|s| s.at_step);
        FaultPlan { steps }
    }

    /// The seeded schedule shared with the simulator: `faults` events over
    /// `epochs` epoch boundaries for a `nodes`-strong cluster, with each
    /// boundary unit scaled to `steps_per_epoch` fetch steps (for a
    /// partitioned session this is the dataset length — every epoch fetches
    /// each item exactly once across the node shards).
    pub fn seeded(
        nodes: usize,
        epochs: u64,
        faults: usize,
        seed: u64,
        steps_per_epoch: u64,
    ) -> Self {
        let events = dcache::fault_schedule(nodes, epochs, faults, seed);
        FaultPlan::new(
            events
                .into_iter()
                .map(|e| FaultStep {
                    at_step: e.at * steps_per_epoch,
                    node: e.node,
                    kind: e.kind,
                })
                .collect(),
        )
    }

    /// The scheduled events, sorted by `at_step`.
    pub fn steps(&self) -> &[FaultStep] {
        &self.steps
    }

    /// Number of scheduled events.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// Whether the plan schedules nothing.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// The step of the earliest event — the end of the guaranteed-healthy
    /// prefix.
    pub fn first_fault_step(&self) -> Option<u64> {
        self.steps.first().map(|s| s.at_step)
    }

    /// The largest node index any event touches.
    pub fn max_node(&self) -> Option<usize> {
        self.steps.iter().map(|s| s.node).max()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_ticks_monotonically() {
        let clock = FaultClock::new();
        assert_eq!(clock.now(), 0);
        assert_eq!(clock.tick(), 1);
        assert_eq!(clock.tick(), 2);
        assert_eq!(clock.now(), 2);
    }

    #[test]
    fn plan_sorts_events_stably() {
        let plan = FaultPlan::new(vec![
            FaultStep {
                at_step: 20,
                node: 1,
                kind: FaultKind::Kill,
            },
            FaultStep {
                at_step: 10,
                node: 2,
                kind: FaultKind::Leave,
            },
            FaultStep {
                at_step: 10,
                node: 3,
                kind: FaultKind::Kill,
            },
        ]);
        let at: Vec<(u64, usize)> = plan.steps().iter().map(|s| (s.at_step, s.node)).collect();
        assert_eq!(at, vec![(10, 2), (10, 3), (20, 1)]);
        assert_eq!(plan.first_fault_step(), Some(10));
        assert_eq!(plan.max_node(), Some(3));
        assert_eq!(plan.len(), 3);
        assert!(!plan.is_empty());
    }

    #[test]
    fn seeded_plan_scales_epoch_units_to_steps() {
        let plan = FaultPlan::seeded(4, 6, 5, 77, 1000);
        let raw = dcache::fault_schedule(4, 6, 5, 77);
        assert_eq!(plan.len(), raw.len());
        for (step, event) in plan.steps().iter().zip(raw.iter()) {
            assert_eq!(step.at_step, event.at * 1000);
            assert_eq!(step.node, event.node);
            assert_eq!(step.kind, event.kind);
            assert_eq!(step.at_step % 1000, 0, "events land on epoch boundaries");
        }
        assert!(plan.first_fault_step().unwrap() >= 1000, "epoch 0 healthy");
    }

    #[test]
    fn empty_plan_defaults() {
        let plan = FaultPlan::default();
        assert!(plan.is_empty());
        assert_eq!(plan.first_fault_step(), None);
        assert_eq!(plan.max_node(), None);
    }
}
