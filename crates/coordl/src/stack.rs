//! The loader stack shared by every [`Session`](crate::Session) mode: one
//! cache tier over one fetch backend, plus the executable prep pipeline and
//! the shared statistics.
//!
//! This module also owns the single-job epoch engine (the multi-threaded
//! fetch → prep → collate worker pool with an in-order reorder buffer) that
//! both `Mode::Single` sessions and the legacy `DataLoader` shim run on, so
//! the two are bit-identical by construction.

use crate::minibatch::Minibatch;
use crate::stats::LoaderStats;
use crate::{CacheTier, FetchBackend};
use crossbeam::channel::{bounded, Receiver, Sender};
use dataset::ItemId;
use prep::{ExecutablePipeline, PreparedSample};
use std::collections::BTreeMap;
use std::sync::Arc;
use std::thread::JoinHandle;

/// One cache tier over one fetch backend, with shared statistics and the
/// prep pipeline: everything a worker needs to turn item ids into prepared
/// samples.
#[derive(Clone)]
pub(crate) struct LoaderStack {
    pub tier: Arc<dyn CacheTier>,
    pub backend: Arc<dyn FetchBackend>,
    pub stats: Arc<LoaderStats>,
    pub pipeline: Arc<ExecutablePipeline>,
}

impl LoaderStack {
    /// Fetch `item` through the tier, reading from the backend on a miss.
    pub(crate) fn fetch(&self, item: ItemId) -> Arc<Vec<u8>> {
        if let Some(bytes) = self.tier.lookup(item) {
            self.stats.record_cache_read(bytes.len() as u64);
            return bytes;
        }
        let bytes = Arc::new(self.backend.read(item));
        self.stats.record_storage_read(bytes.len() as u64);
        self.tier.admit(item, bytes)
    }

    /// Fetch and pre-process one minibatch's items in order.
    pub(crate) fn prepare(&self, epoch: u64, items: &[ItemId]) -> Vec<PreparedSample> {
        items
            .iter()
            .map(|&item| {
                let raw = self.fetch(item);
                self.stats.record_prepared(1);
                self.pipeline.prepare(epoch, item, &raw)
            })
            .collect()
    }
}

/// Spawn the single-job worker pool for one epoch and return the stream of
/// its minibatches in training order.
pub(crate) fn spawn_single_epoch(
    epoch: u64,
    batches: Vec<(usize, Vec<ItemId>)>,
    stack: LoaderStack,
    num_workers: usize,
    prefetch_depth: usize,
) -> SingleEpochStream {
    let total = batches.len();
    let (work_tx, work_rx) = bounded::<(usize, Vec<ItemId>)>(total.max(1));
    for b in batches {
        work_tx.send(b).expect("queue sized to hold all batches");
    }
    drop(work_tx);

    let capacity = prefetch_depth.max(num_workers * 2);
    let (out_tx, out_rx) = bounded::<Minibatch>(capacity);

    let mut workers = Vec::with_capacity(num_workers);
    for _ in 0..num_workers {
        workers.push(spawn_worker(
            epoch,
            stack.clone(),
            work_rx.clone(),
            out_tx.clone(),
        ));
    }
    drop(out_tx);

    SingleEpochStream {
        rx: out_rx,
        reorder: BTreeMap::new(),
        next: 0,
        total,
        stats: Arc::clone(&stack.stats),
        workers,
    }
}

fn spawn_worker(
    epoch: u64,
    stack: LoaderStack,
    work_rx: Receiver<(usize, Vec<ItemId>)>,
    out_tx: Sender<Minibatch>,
) -> JoinHandle<()> {
    std::thread::spawn(move || {
        while let Ok((index, items)) = work_rx.recv() {
            let mb = Minibatch {
                epoch,
                index,
                samples: stack.prepare(epoch, &items),
            };
            // The consumer may have been dropped early; that is not an error.
            if out_tx.send(mb).is_err() {
                return;
            }
        }
    })
}

/// Iterator over one single-job epoch's minibatches, delivered in training
/// order.
pub(crate) struct SingleEpochStream {
    rx: Receiver<Minibatch>,
    reorder: BTreeMap<usize, Minibatch>,
    next: usize,
    total: usize,
    stats: Arc<LoaderStats>,
    workers: Vec<JoinHandle<()>>,
}

impl SingleEpochStream {
    /// Number of minibatches this epoch will deliver.
    pub(crate) fn total_batches(&self) -> usize {
        self.total
    }
}

impl Iterator for SingleEpochStream {
    type Item = Minibatch;

    fn next(&mut self) -> Option<Minibatch> {
        if self.next >= self.total {
            return None;
        }
        loop {
            if let Some(mb) = self.reorder.remove(&self.next) {
                self.next += 1;
                self.stats.record_delivered(mb.len() as u64);
                return Some(mb);
            }
            match self.rx.recv() {
                Ok(mb) => {
                    self.reorder.insert(mb.index, mb);
                }
                Err(_) => return None, // workers gone; epoch incomplete
            }
        }
    }
}

impl Drop for SingleEpochStream {
    fn drop(&mut self) {
        // Disconnect the output channel so any worker blocked on `send`
        // observes the disconnect and exits, then join them all.
        self.reorder.clear();
        let (_tx, dummy_rx) = bounded::<Minibatch>(1);
        let real_rx = std::mem::replace(&mut self.rx, dummy_rx);
        drop(real_rx);
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}
