//! The loader stack shared by every [`Session`](crate::Session) mode: one
//! cache tier over one fetch backend, plus the executable prep pipeline and
//! the shared statistics.
//!
//! The multi-threaded epoch engine itself lives in
//! [`executor`](crate::executor); this module provides the stack (what a
//! fetch *does*) and the single-job entry point `Mode::Single` sessions run
//! on.

use crate::error::CoordlError;
use crate::executor::{spawn_ordered_epoch, FetchFn, OrderedStream};
use crate::stats::LoaderStats;
use crate::{CacheTier, FetchBackend};
use dataset::ItemId;
use prep::{ExecutablePipeline, PreparedSample};
use std::sync::Arc;

/// One cache tier over one fetch backend, with shared statistics and the
/// prep pipeline: everything a worker needs to turn item ids into prepared
/// samples.
#[derive(Clone)]
pub(crate) struct LoaderStack {
    pub tier: Arc<dyn CacheTier>,
    pub backend: Arc<dyn FetchBackend>,
    pub stats: Arc<LoaderStats>,
    pub pipeline: Arc<ExecutablePipeline>,
}

impl LoaderStack {
    /// Fetch `item` through the tier, reading from the backend on a miss.
    /// A failed backend read surfaces as [`CoordlError::BackendIo`].
    pub(crate) fn fetch(&self, item: ItemId) -> Result<Arc<Vec<u8>>, CoordlError> {
        if let Some((bytes, level)) = self.tier.lookup_traced(item) {
            self.stats.record_cache_read(bytes.len() as u64);
            if level > 0 {
                self.stats.record_lower_tier_read(bytes.len() as u64);
            }
            return Ok(bytes);
        }
        let bytes = Arc::new(self.backend.read(item)?);
        self.stats.record_storage_read(bytes.len() as u64);
        Ok(self.tier.admit(item, bytes))
    }

    /// Fetch and pre-process one minibatch's items in order (the sequential
    /// path used by coordinated recovery producers).
    pub(crate) fn prepare(
        &self,
        epoch: u64,
        items: &[ItemId],
    ) -> Result<Vec<PreparedSample>, CoordlError> {
        items
            .iter()
            .map(|&item| {
                let raw = self.fetch(item)?;
                self.stats.record_prepared(1);
                Ok(self.pipeline.prepare(epoch, item, &raw))
            })
            .collect()
    }

    /// The stack's fetch path as an executor fetch function.
    pub(crate) fn fetch_fn(&self) -> Arc<FetchFn> {
        let stack = self.clone();
        Arc::new(move |item| stack.fetch(item))
    }
}

/// Spawn the single-job prefetching executor for one epoch and return the
/// stream of its minibatches in training order.
pub(crate) fn spawn_single_epoch(
    epoch: u64,
    batches: Vec<(usize, Vec<ItemId>)>,
    stack: LoaderStack,
    num_workers: usize,
    prefetch_depth: usize,
    fetch_threads: usize,
    fetch_shards: usize,
) -> OrderedStream {
    spawn_ordered_epoch(
        epoch,
        batches,
        stack.fetch_fn(),
        Arc::clone(&stack.pipeline),
        Arc::clone(&stack.stats),
        num_workers,
        prefetch_depth,
        fetch_threads,
        fetch_shards,
    )
}
