//! Pluggable byte-cache tiers.
//!
//! A [`CacheTier`] sits between a [`Session`](crate::Session)'s prep workers
//! and its [`FetchBackend`](crate::FetchBackend).  Three implementations
//! ship with the crate:
//!
//! * [`TieredByteCache`] — a `dcache::TierChain` of real byte tiers (DRAM
//!   MinIO/LRU/FIFO/CLOCK spilling into a profiled local-SSD tier, and so
//!   on), the tier every session builds by default — a single-level chain is
//!   bit-identical to the dedicated implementations below;
//! * [`MinIoByteCache`] — CoorDL's own never-evict policy (§4.1) as a
//!   standalone lock-free-ish cache;
//! * [`PolicyByteCache`] — any single `coordl-cache` replacement policy
//!   holding real item bytes, so the runtime can reproduce the page-cache
//!   thrashing the paper measures with the *same* policy code the
//!   simulator's [`storage::StorageNode`] uses.

use crate::cache::MinIoByteCache;
use crate::error::CoordlError;
use dataset::ItemId;
use dcache::{build_cache, AccessOutcome, Cache, ChainAccess, PolicyKind, TierChain, TierSpec};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;
use storage::{AccessPattern, DeviceProfile};
use vfs::{SpillStore, Vfs};

/// A thread-safe byte cache tier keyed by item id.
///
/// `lookup` and `admit` mirror the two halves of a fetch: every lookup miss
/// is expected to be followed by an `admit` of the bytes read from the next
/// tier down, which is when the policy decides whether to retain them (and
/// what to evict).  Hit/miss counters therefore count *fetches*, exactly as
/// the simulator's cache statistics do.
pub trait CacheTier: Send + Sync {
    /// Look `item` up, returning its bytes on a hit.
    fn lookup(&self, item: ItemId) -> Option<Arc<Vec<u8>>>;

    /// Offer `bytes` for `item` after a miss.  The tier admits (and possibly
    /// evicts) according to its policy; the caller always keeps a usable
    /// reference.
    fn admit(&self, item: ItemId, bytes: Arc<Vec<u8>>) -> Arc<Vec<u8>>;

    /// Whether `item` is currently resident.
    fn contains(&self, item: ItemId) -> bool;

    /// Bytes currently resident.
    fn used_bytes(&self) -> u64;

    /// Capacity in bytes.
    fn capacity_bytes(&self) -> u64;

    /// Number of resident items.
    fn resident_items(&self) -> usize;

    /// Lookup hits since construction.
    fn hits(&self) -> u64;

    /// Lookup misses since construction.
    fn misses(&self) -> u64;

    /// Name of the replacement policy.
    fn policy_name(&self) -> &'static str;

    /// Like [`CacheTier::lookup`], additionally reporting which level of the
    /// tier's hierarchy served the hit (0 for flat tiers).
    fn lookup_traced(&self, item: ItemId) -> Option<(Arc<Vec<u8>>, usize)> {
        self.lookup(item).map(|bytes| (bytes, 0))
    }

    /// Per-level statistics of the tier's hierarchy (a single level for flat
    /// tiers).
    fn tier_snapshots(&self) -> Vec<TierSnapshot> {
        vec![TierSnapshot {
            name: "dram",
            policy: self.policy_name(),
            capacity_bytes: self.capacity_bytes(),
            used_bytes: self.used_bytes(),
            resident_items: self.resident_items(),
            hits: self.hits(),
            misses: self.misses(),
            evictions: 0,
            demoted_in: 0,
            demoted_out: 0,
            device_seconds: 0.0,
        }]
    }
}

/// A point-in-time view of one level of a cache-tier hierarchy, used by
/// reports and `dstool validate`'s per-tier hit-ratio rows.
#[derive(Debug, Clone, PartialEq)]
pub struct TierSnapshot {
    /// Level name (`"dram"`, `"ssd"`, ...).
    pub name: &'static str,
    /// Replacement policy at this level.
    pub policy: &'static str,
    /// Capacity in bytes.
    pub capacity_bytes: u64,
    /// Bytes resident.
    pub used_bytes: u64,
    /// Items resident.
    pub resident_items: usize,
    /// Fetches served by this level.
    pub hits: u64,
    /// Fetches that consulted this level and fell through.
    pub misses: u64,
    /// Entries this level's policy evicted on the fetch path (0 for flat
    /// tiers, which do not track evictions at the wrapper level).
    pub evictions: u64,
    /// Victims accepted from the level above (demotion).
    pub demoted_in: u64,
    /// Victims this level evicted that were offered below.
    pub demoted_out: u64,
    /// Modelled busy time of this level's backing device across all hits,
    /// in seconds (0 for unprofiled DRAM levels).
    pub device_seconds: f64,
}

impl CacheTier for MinIoByteCache {
    fn lookup(&self, item: ItemId) -> Option<Arc<Vec<u8>>> {
        self.get(item)
    }

    fn admit(&self, item: ItemId, bytes: Arc<Vec<u8>>) -> Arc<Vec<u8>> {
        self.insert(item, bytes)
    }

    fn contains(&self, item: ItemId) -> bool {
        MinIoByteCache::contains(self, item)
    }

    fn used_bytes(&self) -> u64 {
        MinIoByteCache::used_bytes(self)
    }

    fn capacity_bytes(&self) -> u64 {
        MinIoByteCache::capacity_bytes(self)
    }

    fn resident_items(&self) -> usize {
        self.len()
    }

    fn hits(&self) -> u64 {
        MinIoByteCache::hits(self)
    }

    fn misses(&self) -> u64 {
        MinIoByteCache::misses(self)
    }

    fn policy_name(&self) -> &'static str {
        PolicyKind::MinIo.name()
    }
}

struct PolicyInner {
    policy: Box<dyn Cache<u64> + Send>,
    bytes: HashMap<ItemId, Arc<Vec<u8>>>,
    // Fetch counters live in the wrapper, not the policy: with concurrent
    // workers, a lookup miss raced by another worker's admit would otherwise
    // be lost (the policy sees neither a miss nor a hit for it).  Counting
    // at lookup time matches MinIoByteCache exactly: one hit or one miss per
    // fetch, always.
    hits: u64,
    misses: u64,
}

/// A byte-holding cache tier driven by any `coordl-cache` replacement
/// policy.
///
/// The policy decides residency and eviction; this wrapper stores the actual
/// payloads and drops them as soon as the policy reports their eviction (via
/// [`Cache::take_evicted`]), so resident bytes always equal what the policy
/// accounts.
pub struct PolicyByteCache {
    inner: Mutex<PolicyInner>,
    name: &'static str,
}

impl PolicyByteCache {
    /// Create a byte cache driven by `kind` with the given byte capacity.
    pub fn new(kind: PolicyKind, capacity_bytes: u64) -> Self {
        let mut policy = build_cache(kind, capacity_bytes);
        // Victim logging is opt-in (plain simulations skip it); this wrapper
        // needs it to drop payloads alongside their evicted entries.
        policy.set_eviction_tracking(true);
        PolicyByteCache {
            inner: Mutex::new(PolicyInner {
                policy,
                bytes: HashMap::new(),
                hits: 0,
                misses: 0,
            }),
            name: kind.name(),
        }
    }
}

impl CacheTier for PolicyByteCache {
    fn lookup(&self, item: ItemId) -> Option<Arc<Vec<u8>>> {
        let mut inner = self.inner.lock();
        let Some(bytes) = inner.bytes.get(&item).map(Arc::clone) else {
            inner.misses += 1;
            return None;
        };
        inner.hits += 1;
        // Touch recency in the policy (LRU promotion, CLOCK bit, ...).
        let outcome = inner.policy.access(item, bytes.len() as u64);
        debug_assert_eq!(outcome, AccessOutcome::Hit);
        Some(bytes)
    }

    fn admit(&self, item: ItemId, bytes: Arc<Vec<u8>>) -> Arc<Vec<u8>> {
        let mut inner = self.inner.lock();
        if inner.bytes.contains_key(&item) {
            // A concurrent worker admitted it first; keep the resident copy.
            return Arc::clone(&inner.bytes[&item]);
        }
        let outcome = inner.policy.access(item, bytes.len() as u64);
        for victim in inner.policy.take_evicted() {
            inner.bytes.remove(&victim);
        }
        if outcome == AccessOutcome::Inserted {
            inner.bytes.insert(item, Arc::clone(&bytes));
        }
        bytes
    }

    fn contains(&self, item: ItemId) -> bool {
        self.inner.lock().policy.contains(&item)
    }

    fn used_bytes(&self) -> u64 {
        self.inner.lock().policy.used_bytes()
    }

    fn capacity_bytes(&self) -> u64 {
        self.inner.lock().policy.capacity_bytes()
    }

    fn resident_items(&self) -> usize {
        self.inner.lock().policy.len()
    }

    fn hits(&self) -> u64 {
        self.inner.lock().hits
    }

    fn misses(&self) -> u64 {
        self.inner.lock().misses
    }

    fn policy_name(&self) -> &'static str {
        self.name
    }
}

// ---------------------------------------------------------------------------
// Tiered byte cache: a TierChain holding real payloads
// ---------------------------------------------------------------------------

/// Where a [`TieredByteCache`] level keeps its payloads.
///
/// `Memory` (the default) holds everything in the shared in-memory payload
/// map — the behaviour every existing digest was produced with.  `Vfs`
/// additionally persists the level's resident set through a
/// [`SpillStore`] under a VFS directory: demoted victims landing at the
/// level are written to files, and a later cache built over the same VFS
/// root warms the level back up from the manifest — the persistent-SSD
/// restart story.
#[derive(Clone)]
pub enum TierBacking {
    /// Payloads live only in memory (the default; zero behaviour change).
    Memory,
    /// Payloads resident at this level are mirrored to files under `dir`
    /// of `vfs`, and replayed into the level on construction.
    Vfs {
        /// The filesystem the level persists through.
        vfs: Arc<dyn Vfs>,
        /// Directory (within the VFS namespace) owned by this level.
        dir: String,
    },
}

impl TierBacking {
    /// Whether this is the in-memory backing.
    pub fn is_memory(&self) -> bool {
        matches!(self, TierBacking::Memory)
    }
}

impl std::fmt::Debug for TierBacking {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TierBacking::Memory => write!(f, "Memory"),
            TierBacking::Vfs { vfs, dir } => write!(f, "Vfs({}:{dir})", vfs.name()),
        }
    }
}

impl PartialEq for TierBacking {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (TierBacking::Memory, TierBacking::Memory) => true,
            (TierBacking::Vfs { vfs: a, dir: da }, TierBacking::Vfs { vfs: b, dir: db }) => {
                Arc::ptr_eq(a, b) && da == db
            }
            _ => false,
        }
    }
}

/// Description of one level of a [`TieredByteCache`].
#[derive(Debug, Clone, PartialEq)]
pub struct ByteTierSpec {
    /// Level name used in reports (`"dram"`, `"ssd"`, ...).
    pub name: &'static str,
    /// Replacement policy governing residency at this level.
    pub policy: PolicyKind,
    /// Capacity in bytes.
    pub capacity_bytes: u64,
    /// Device backing the level: `None` for DRAM (hits cost memory
    /// bandwidth), `Some(profile)` for a real device whose modelled busy
    /// time is accounted per hit (random small-item reads).
    pub profile: Option<DeviceProfile>,
    /// Where the level's payloads live (see [`TierBacking`]).
    pub backing: TierBacking,
}

impl ByteTierSpec {
    /// A DRAM level of `capacity_bytes` under `policy`.
    pub fn dram(policy: PolicyKind, capacity_bytes: u64) -> Self {
        ByteTierSpec {
            name: "dram",
            policy,
            capacity_bytes,
            profile: None,
            backing: TierBacking::Memory,
        }
    }

    /// A local SATA-SSD level of `capacity_bytes` under `policy` (§4.2 /
    /// Table 2: 530 MB/s random reads).
    pub fn sata_ssd(policy: PolicyKind, capacity_bytes: u64) -> Self {
        ByteTierSpec {
            name: "ssd",
            policy,
            capacity_bytes,
            profile: Some(DeviceProfile::sata_ssd()),
            backing: TierBacking::Memory,
        }
    }

    /// Persist this level through `dir` of `vfs`: spilled victims land in
    /// files and a rebuilt cache over the same VFS warms the level from the
    /// on-disk manifest.
    pub fn persistent(mut self, vfs: Arc<dyn Vfs>, dir: impl Into<String>) -> Self {
        self.backing = TierBacking::Vfs {
            vfs,
            dir: dir.into(),
        };
        self
    }

    pub(crate) fn tier_spec(&self) -> TierSpec {
        TierSpec {
            name: self.name,
            policy: self.policy,
            capacity_bytes: self.capacity_bytes,
            cost: match &self.profile {
                None => storage::dram_tier_cost(),
                Some(p) => p.tier_cost(AccessPattern::Random),
            },
        }
    }
}

/// Intern a hierarchy label: leak it at most once per distinct string (the
/// label space is the tiny set of tier-layout names, so the table stays a
/// handful of entries for the process lifetime).
pub(crate) fn intern_label(label: String) -> &'static str {
    static LABELS: std::sync::Mutex<Vec<&'static str>> = std::sync::Mutex::new(Vec::new());
    // Interning is idempotent, so a panic between lock and push leaves the
    // table merely shorter, never wrong: recover from poisoning instead of
    // propagating one tenant's panic to every later label lookup.
    let mut labels = LABELS
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    if let Some(existing) = labels.iter().find(|l| **l == label) {
        return existing;
    }
    let leaked: &'static str = Box::leak(label.into_boxed_str());
    labels.push(leaked);
    leaked
}

struct TieredInner {
    chain: TierChain,
    /// One payload per resident item, shared by every level that holds it.
    bytes: HashMap<ItemId, Arc<Vec<u8>>>,
    // Fetch counters at the wrapper, exactly like PolicyByteCache: one hit
    // or one miss per fetch, counted at lookup time.
    hits: u64,
    misses: u64,
    /// Modelled per-level device busy seconds across all hits.
    level_seconds: Vec<f64>,
    /// Per-level durable mirror (`Some` only for `TierBacking::Vfs` levels).
    spills: Vec<Option<SpillStore>>,
}

impl TieredInner {
    /// Mirror a chain access's demotion landings and drops into the durable
    /// per-level stores.  A no-op when every level is memory-backed.
    fn reconcile_spills(&mut self, access: &ChainAccess) {
        if self.spills.iter().all(Option::is_none) {
            return;
        }
        let TieredInner { bytes, spills, .. } = self;
        for &(key, level) in &access.demoted {
            if let Some(spill) = &mut spills[level] {
                let payload = bytes
                    .get(&key)
                    .expect("demoted key must have a resident payload");
                spill
                    .write(key, payload)
                    .expect("spill write failed on demotion");
            }
            // Stale copies at other persistent levels are dropped lazily:
            // removing here would fight the promotion-keeps-lower-copy rule.
        }
        for &key in &access.dropped {
            for spill in spills.iter_mut().flatten() {
                spill.remove(key).expect("spill remove failed on drop");
            }
        }
    }
}

/// A byte-holding cache-tier *hierarchy*: a `dcache::TierChain` decides
/// residency, demotion and per-level statistics while this wrapper stores
/// the actual payloads (dropped the moment a key falls off the chain).
///
/// A single-level, single-shard `TieredByteCache` is bit-identical to
/// [`MinIoByteCache`] / [`PolicyByteCache`] under the sequential fetch order
/// every serial [`Session`](crate::Session) executor guarantees — which is
/// why sessions build their tiers through it by default.
///
/// **Sharding.**  A cache built with `num_shards > 1` splits every level
/// into `num_shards` independent chains (capacity divided like
/// `dcache::ShardedChain`: `cap / S` per shard, the first `cap % S` shards
/// one byte larger) and routes each key to its shard by
/// [`dcache::shard_of_key`] — the same routing the executor's fetch pool
/// partitions plan items by.  Because owners are aligned, every shard sees
/// its keys in plan order no matter how many fetch threads run, so a
/// sharded cache's hits/misses/evictions are a pure function of the plan
/// and the shard count.  One shard is the exact legacy cache (same chain,
/// same spill directory layout); persistent levels of an `S > 1` cache
/// spill into `{dir}/shard-{k}` subdirectories, so the shard count must be
/// kept stable across restarts for warm-up to find its files.
pub struct TieredByteCache {
    shards: Vec<Mutex<TieredInner>>,
    /// The *aggregate* level descriptions (full capacities, original spill
    /// directories) the cache was built from.
    specs: Vec<ByteTierSpec>,
    name: &'static str,
}

impl TieredByteCache {
    /// Build a hierarchy from `specs`, ordered fastest (level 0) first.
    ///
    /// # Panics
    /// Panics when `specs` is empty or a persistent level's VFS fails.
    pub fn new(specs: Vec<ByteTierSpec>) -> Self {
        Self::new_sharded(specs, 1)
    }

    /// Like [`TieredByteCache::new`] with the hierarchy split into
    /// `num_shards` independent key-routed shards (see the type docs).
    ///
    /// # Panics
    /// Panics when `specs` is empty, `num_shards` is zero, or a persistent
    /// level's VFS fails.
    pub fn new_sharded(specs: Vec<ByteTierSpec>, num_shards: usize) -> Self {
        Self::try_new_sharded(specs, num_shards).expect("tier construction failed")
    }

    /// Like [`TieredByteCache::new`], surfacing persistent-level VFS
    /// failures as [`CoordlError::InvalidConfig`] instead of panicking.
    ///
    /// Levels with [`TierBacking::Vfs`] open their [`SpillStore`] here and
    /// replay the on-disk manifest: every recorded key is re-offered to the
    /// chain at that level (admission floor pins it below faster tiers) with
    /// its payload read back from disk, then all statistics are reset — a
    /// restarted cache starts warm but with clean counters.
    pub fn try_new(specs: Vec<ByteTierSpec>) -> Result<Self, CoordlError> {
        Self::try_new_sharded(specs, 1)
    }

    /// The fallible form of [`TieredByteCache::new_sharded`].
    pub fn try_new_sharded(
        specs: Vec<ByteTierSpec>,
        num_shards: usize,
    ) -> Result<Self, CoordlError> {
        assert!(!specs.is_empty(), "need at least one tier");
        assert!(num_shards > 0, "need at least one shard");
        let mut shards = Vec::with_capacity(num_shards);
        for shard in 0..num_shards {
            // Per-shard level specs: capacity split exactly like
            // dcache::ShardedChain, spill directories per shard (but the
            // legacy layout untouched for the 1-shard cache).
            let shard_specs: Vec<ByteTierSpec> = specs
                .iter()
                .map(|spec| {
                    let mut s = spec.clone();
                    let base = s.capacity_bytes / num_shards as u64;
                    let extra = u64::from((shard as u64) < s.capacity_bytes % num_shards as u64);
                    s.capacity_bytes = base + extra;
                    if num_shards > 1 {
                        if let TierBacking::Vfs { vfs, dir } = &s.backing {
                            s.backing = TierBacking::Vfs {
                                vfs: Arc::clone(vfs),
                                dir: format!("{dir}/shard-{shard}"),
                            };
                        }
                    }
                    s
                })
                .collect();
            shards.push(Mutex::new(Self::build_shard(&shard_specs)?));
        }
        // Single-level hierarchies report the plain policy name so existing
        // reports are unchanged; deeper chains get a composite label,
        // interned so sweeps constructing many identical hierarchies share
        // one allocation.
        let name = if specs.len() == 1 {
            specs[0].policy.name()
        } else {
            let label = specs
                .iter()
                .map(|s| format!("{}:{}", s.name, s.policy.name()))
                .collect::<Vec<_>>()
                .join("+");
            intern_label(label)
        };
        Ok(TieredByteCache {
            shards,
            specs,
            name,
        })
    }

    /// Build one shard's chain + payload map + spill stores from its
    /// (already capacity-split) level specs, warm-replaying persistent
    /// levels.
    fn build_shard(specs: &[ByteTierSpec]) -> Result<TieredInner, CoordlError> {
        let mut chain = TierChain::new(specs.iter().map(ByteTierSpec::tier_spec).collect());
        let mut bytes = HashMap::new();
        let mut spills = Vec::with_capacity(specs.len());
        for (level, spec) in specs.iter().enumerate() {
            match &spec.backing {
                TierBacking::Memory => spills.push(None),
                TierBacking::Vfs { vfs, dir } => {
                    let spill = SpillStore::open(Arc::clone(vfs), dir).map_err(|e| {
                        CoordlError::InvalidConfig(format!(
                            "persistent tier {:?} failed to open {dir}: {e}",
                            spec.name
                        ))
                    })?;
                    // Warm-up: repopulate this level from the manifest, in
                    // key order (deterministic).  The floor keeps replayed
                    // keys out of the faster levels above.
                    for (key, len) in spill.entries().collect::<Vec<_>>() {
                        let access = chain.access_with_floor(key, len, level);
                        if access.admitted {
                            let payload = spill.read(key).map_err(|e| {
                                CoordlError::InvalidConfig(format!(
                                    "persistent tier {:?} failed replaying item {key}: {e}",
                                    spec.name
                                ))
                            })?;
                            bytes.insert(key, Arc::new(payload));
                        }
                    }
                    spills.push(Some(spill));
                }
            }
        }
        // Warm contents, cold statistics.
        chain.reset_stats();
        let levels = specs.len();
        Ok(TieredInner {
            chain,
            bytes,
            hits: 0,
            misses: 0,
            level_seconds: vec![0.0; levels],
            spills,
        })
    }

    /// A single DRAM level under `policy` — the default session tier.
    pub fn single(policy: PolicyKind, capacity_bytes: u64) -> Self {
        Self::single_sharded(policy, capacity_bytes, 1)
    }

    /// A single DRAM level under `policy`, split into `num_shards` shards
    /// (what sessions with a fetch pool build).
    pub fn single_sharded(policy: PolicyKind, capacity_bytes: u64, num_shards: usize) -> Self {
        Self::new_sharded(vec![ByteTierSpec::dram(policy, capacity_bytes)], num_shards)
    }

    /// The aggregate level descriptions this hierarchy was built from.
    pub fn specs(&self) -> &[ByteTierSpec] {
        &self.specs
    }

    /// How many key-routed shards the cache is split into.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// The shard owning `item` under [`dcache::shard_of_key`] routing.
    fn shard_for(&self, item: ItemId) -> &Mutex<TieredInner> {
        &self.shards[dcache::shard_of_key(item, self.shards.len())]
    }
}

impl CacheTier for TieredByteCache {
    fn lookup(&self, item: ItemId) -> Option<Arc<Vec<u8>>> {
        self.lookup_traced(item).map(|(bytes, _)| bytes)
    }

    fn lookup_traced(&self, item: ItemId) -> Option<(Arc<Vec<u8>>, usize)> {
        let mut inner = self.shard_for(item).lock();
        let Some(bytes) = inner.bytes.get(&item).map(Arc::clone) else {
            inner.misses += 1;
            return None;
        };
        inner.hits += 1;
        // Touch recency, promote towards DRAM, demote what that displaces.
        let access = inner.chain.access(item, bytes.len() as u64);
        let level = match access.source {
            dcache::ChainSource::Tier(k) => k,
            dcache::ChainSource::Store => unreachable!("payload implies residency"),
        };
        // Only profiled levels account modelled device time; DRAM hits (the
        // hot path) skip the cost math entirely.
        if self.specs[level].profile.is_some() {
            let secs = inner
                .chain
                .tier_cost(level)
                .access_seconds(bytes.len() as u64);
            inner.level_seconds[level] += secs;
        }
        inner.reconcile_spills(&access);
        for victim in access.dropped {
            inner.bytes.remove(&victim);
        }
        Some((bytes, level))
    }

    fn admit(&self, item: ItemId, bytes: Arc<Vec<u8>>) -> Arc<Vec<u8>> {
        let mut inner = self.shard_for(item).lock();
        if inner.bytes.contains_key(&item) {
            // A concurrent worker admitted it first; keep the resident copy.
            return Arc::clone(&inner.bytes[&item]);
        }
        let access = inner.chain.access(item, bytes.len() as u64);
        if access.admitted {
            inner.bytes.insert(item, Arc::clone(&bytes));
            // A direct admission into a persistent level (e.g. DRAM full,
            // SSD accepts) must hit the durable mirror too.
            if let Some(level) = inner.chain.locate(item) {
                if let Some(spill) = &mut inner.spills[level] {
                    spill
                        .write(item, &bytes)
                        .expect("spill write failed on admission");
                }
            }
        }
        inner.reconcile_spills(&access);
        for victim in access.dropped {
            inner.bytes.remove(&victim);
        }
        bytes
    }

    fn contains(&self, item: ItemId) -> bool {
        self.shard_for(item).lock().chain.contains(item)
    }

    fn used_bytes(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.lock().chain.used_bytes())
            .sum()
    }

    fn capacity_bytes(&self) -> u64 {
        // Per-shard capacities sum back to the aggregate spec capacities.
        self.shards
            .iter()
            .map(|s| s.lock().chain.capacity_bytes())
            .sum()
    }

    fn resident_items(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().chain.resident_items())
            .sum()
    }

    fn hits(&self) -> u64 {
        self.shards.iter().map(|s| s.lock().hits).sum()
    }

    fn misses(&self) -> u64 {
        self.shards.iter().map(|s| s.lock().misses).sum()
    }

    fn policy_name(&self) -> &'static str {
        self.name
    }

    fn tier_snapshots(&self) -> Vec<TierSnapshot> {
        // Capacities come from the aggregate specs (per-shard splits sum
        // back to them); everything else is summed across shards in fixed
        // shard order, so snapshots stay deterministic.
        let mut snaps: Vec<TierSnapshot> = self
            .specs
            .iter()
            .map(|spec| TierSnapshot {
                name: spec.name,
                policy: spec.policy.name(),
                capacity_bytes: spec.capacity_bytes,
                used_bytes: 0,
                resident_items: 0,
                hits: 0,
                misses: 0,
                evictions: 0,
                demoted_in: 0,
                demoted_out: 0,
                device_seconds: 0.0,
            })
            .collect();
        for shard in &self.shards {
            let inner = shard.lock();
            for (k, agg) in snaps.iter_mut().enumerate() {
                let stats = inner.chain.tier_stats(k);
                let demotions = inner.chain.tier_demotions(k);
                agg.used_bytes += inner.chain.tier_used_bytes(k);
                agg.resident_items += inner.chain.tier_len(k);
                agg.hits += stats.hits;
                agg.misses += stats.misses;
                agg.evictions += stats.evictions;
                agg.demoted_in += demotions.demoted_in;
                agg.demoted_out += demotions.demoted_out;
                // Unprofiled (DRAM) levels never accumulate seconds.
                agg.device_seconds += inner.level_seconds[k];
            }
        }
        snaps
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn payload(item: ItemId, len: usize) -> Arc<Vec<u8>> {
        Arc::new(vec![item as u8; len])
    }

    #[test]
    fn lru_tier_evicts_payloads_with_their_entries() {
        let tier = PolicyByteCache::new(PolicyKind::Lru, 2);
        for item in 0..4u64 {
            assert!(tier.lookup(item).is_none());
            tier.admit(item, payload(item, 1));
        }
        // Capacity 2: items 0 and 1 were evicted, payloads dropped with them.
        assert!(!tier.contains(0) && !tier.contains(1));
        assert!(tier.contains(2) && tier.contains(3));
        assert_eq!(tier.resident_items(), 2);
        assert_eq!(tier.used_bytes(), 2);
        assert!(tier.lookup(0).is_none());
        assert_eq!(tier.lookup(3).unwrap().as_slice(), &[3]);
    }

    #[test]
    fn lru_tier_promotes_on_lookup() {
        let tier = PolicyByteCache::new(PolicyKind::Lru, 2);
        tier.admit(1, payload(1, 1));
        tier.admit(2, payload(2, 1));
        let _ = tier.lookup(1); // touch 1: 2 becomes the victim
        tier.admit(3, payload(3, 1));
        assert!(tier.contains(1) && !tier.contains(2) && tier.contains(3));
    }

    #[test]
    fn minio_policy_tier_matches_minio_byte_cache_semantics() {
        let tier = PolicyByteCache::new(PolicyKind::MinIo, 2);
        let native = MinIoByteCache::new(2);
        for item in 0..5u64 {
            if tier.lookup(item).is_none() {
                tier.admit(item, payload(item, 1));
            }
            if CacheTier::lookup(&native, item).is_none() {
                CacheTier::admit(&native, item, payload(item, 1));
            }
        }
        assert_eq!(tier.resident_items(), native.resident_items());
        assert_eq!(tier.used_bytes(), CacheTier::used_bytes(&native));
        for item in 0..5u64 {
            assert_eq!(tier.contains(item), CacheTier::contains(&native, item));
        }
    }

    #[test]
    fn racing_admits_still_count_one_miss_per_fetch() {
        // Two workers can both lookup-miss the same item before either
        // admits it; the loser's admit is a no-op, but both fetches must be
        // accounted (one miss each), matching the bytes they actually read
        // from the backend.
        let tier = PolicyByteCache::new(PolicyKind::Lru, 1 << 20);
        assert!(tier.lookup(7).is_none());
        assert!(tier.lookup(7).is_none()); // second worker, same race window
        tier.admit(7, payload(7, 4));
        tier.admit(7, payload(7, 4)); // loser's admit: keeps resident copy
        assert_eq!(tier.misses(), 2, "both fetches were misses");
        assert_eq!(tier.hits(), 0);
        assert_eq!(tier.resident_items(), 1);
        assert_eq!(tier.lookup(7).unwrap().as_slice(), &[7; 4]);
        assert_eq!(tier.hits(), 1);
    }

    /// Drive a full fetch (lookup, then admit on a miss) like a LoaderStack.
    fn fetch_through(tier: &dyn CacheTier, item: ItemId, len: usize) -> usize {
        match tier.lookup_traced(item) {
            Some((_, level)) => level,
            None => {
                tier.admit(item, payload(item, len));
                usize::MAX
            }
        }
    }

    #[test]
    fn single_level_tiered_cache_matches_policy_byte_cache_exactly() {
        // The contract that lets sessions route every tier through the
        // chain: same hits, misses, residency, used bytes and payloads as
        // the dedicated single-policy implementation, for every policy.
        for kind in [
            PolicyKind::MinIo,
            PolicyKind::Lru,
            PolicyKind::Fifo,
            PolicyKind::Clock,
        ] {
            let tiered = TieredByteCache::single(kind, 6);
            let flat = PolicyByteCache::new(kind, 6);
            let trace: Vec<u64> = vec![1, 2, 3, 4, 1, 2, 5, 6, 7, 1, 3, 5, 7, 2];
            for &item in &trace {
                fetch_through(&tiered, item, 2);
                fetch_through(&flat, item, 2);
            }
            assert_eq!(tiered.hits(), flat.hits(), "{kind:?}");
            assert_eq!(tiered.misses(), flat.misses(), "{kind:?}");
            assert_eq!(
                tiered.used_bytes(),
                CacheTier::used_bytes(&flat),
                "{kind:?}"
            );
            assert_eq!(tiered.resident_items(), flat.resident_items(), "{kind:?}");
            for item in 0..8u64 {
                assert_eq!(
                    tiered.contains(item),
                    flat.contains(item),
                    "{kind:?} {item}"
                );
                assert_eq!(
                    tiered.lookup(item).is_some(),
                    flat.lookup(item).is_some(),
                    "{kind:?} {item}"
                );
            }
        }
    }

    #[test]
    fn minio_dram_spills_payloads_into_the_ssd_level() {
        let tier = TieredByteCache::new(vec![
            ByteTierSpec::dram(PolicyKind::MinIo, 3),
            ByteTierSpec::sata_ssd(PolicyKind::MinIo, 4),
        ]);
        for item in 0..10u64 {
            assert_eq!(fetch_through(&tier, item, 1), usize::MAX, "cold chain");
        }
        let snaps = tier.tier_snapshots();
        assert_eq!(snaps[0].resident_items, 3, "DRAM filled first");
        assert_eq!(snaps[1].resident_items, 4, "SSD extends the reach");
        assert_eq!(tier.resident_items(), 7);
        // Second epoch: levels serve what they hold, payload bytes intact.
        for item in 0..10u64 {
            let level = fetch_through(&tier, item, 1);
            match item {
                0..=2 => assert_eq!(level, 0, "item {item}"),
                3..=6 => assert_eq!(level, 1, "item {item}"),
                _ => assert_eq!(level, usize::MAX, "item {item}"),
            }
        }
        let snaps = tier.tier_snapshots();
        assert_eq!(snaps[0].hits, 3);
        assert_eq!(snaps[1].hits, 4);
        assert!(snaps[1].device_seconds > 0.0, "SSD hits cost device time");
        assert_eq!(snaps[0].device_seconds, 0.0, "DRAM is unprofiled");
        assert_eq!(tier.lookup(5).unwrap().as_slice(), &[5], "payload intact");
    }

    #[test]
    fn lru_dram_demotes_payloads_to_the_ssd_victim_tier() {
        let tier = TieredByteCache::new(vec![
            ByteTierSpec::dram(PolicyKind::Lru, 2),
            ByteTierSpec::sata_ssd(PolicyKind::Lru, 2),
        ]);
        for item in 0..4u64 {
            fetch_through(&tier, item, 1);
        }
        // DRAM holds {2,3}; victims 0,1 were demoted with their payloads.
        assert_eq!(tier.lookup_traced(0).unwrap().1, 1, "served from ssd");
        assert_eq!(tier.lookup_traced(0).unwrap().1, 0, "promoted to dram");
        let snaps = tier.tier_snapshots();
        assert_eq!(
            snaps[1].demoted_in,
            2 + 1,
            "0, 1, then 0's promotion victim"
        );
        // Promoting 0 displaced 2 into the SSD, whose LRU victim was the
        // stale key 1 — its payload fell off the chain and is gone.
        assert!(!tier.contains(1));
        assert_eq!(tier.resident_items(), 3);
        assert_eq!(tier.lookup(1), None);
        assert_eq!(tier.lookup(2).unwrap().as_slice(), &[2]);
    }

    #[test]
    fn sharded_cache_counters_are_shard_order_independent() {
        // The determinism contract behind the fetch pool: a shard only sees
        // its own keys, so interleaving *between* shards is irrelevant —
        // feeding the whole trace in plan order and feeding each shard's
        // subsequence separately produce identical counters and residency.
        let shards = 4;
        let trace: Vec<u64> = (0..40u64).chain(0..40).collect();
        let build = || TieredByteCache::single_sharded(PolicyKind::Lru, 20 * 2, shards);
        let in_plan_order = build();
        for &item in &trace {
            fetch_through(&in_plan_order, item, 2);
        }
        let per_shard = build();
        for shard in 0..shards {
            for &item in &trace {
                if dcache::shard_of_key(item, shards) == shard {
                    fetch_through(&per_shard, item, 2);
                }
            }
        }
        assert_eq!(in_plan_order.hits(), per_shard.hits());
        assert_eq!(in_plan_order.misses(), per_shard.misses());
        assert_eq!(
            CacheTier::used_bytes(&in_plan_order),
            CacheTier::used_bytes(&per_shard)
        );
        assert_eq!(in_plan_order.resident_items(), per_shard.resident_items());
        for item in 0..40u64 {
            assert_eq!(in_plan_order.contains(item), per_shard.contains(item));
        }
    }

    #[test]
    fn shard_capacities_sum_to_the_aggregate_spec() {
        // 10 bytes across 4 shards: 3+3+2+2, never silently rounded away.
        let tier = TieredByteCache::single_sharded(PolicyKind::MinIo, 10, 4);
        assert_eq!(tier.num_shards(), 4);
        assert_eq!(CacheTier::capacity_bytes(&tier), 10);
        let snaps = tier.tier_snapshots();
        assert_eq!(snaps.len(), 1);
        assert_eq!(snaps[0].capacity_bytes, 10, "aggregate, not per-shard");
    }

    #[test]
    fn sharded_persistent_level_spills_into_per_shard_dirs_and_rewarm() {
        use vfs::MemVfs;
        let vfs: Arc<dyn Vfs> = Arc::new(MemVfs::new());
        let specs = || {
            vec![
                ByteTierSpec::dram(PolicyKind::Lru, 4),
                ByteTierSpec::sata_ssd(PolicyKind::MinIo, 64).persistent(Arc::clone(&vfs), "spill"),
            ]
        };
        let shards = 2;
        {
            let tier = TieredByteCache::new_sharded(specs(), shards);
            for item in 0..12u64 {
                fetch_through(&tier, item, 2);
            }
            assert!(tier.resident_items() > 4, "victims demoted into the SSD");
        }
        // A rebuilt cache over the same VFS and the same shard count warms
        // each shard from its own spill-{k} directory.
        let reborn = TieredByteCache::new_sharded(specs(), shards);
        assert!(reborn.resident_items() > 0, "warm restart");
        assert_eq!(reborn.hits(), 0, "warm contents, cold statistics");
        for item in 0..12u64 {
            if reborn.contains(item) {
                let (bytes, _) = reborn.lookup_traced(item).expect("resident payload");
                assert_eq!(bytes.as_slice(), &[item as u8; 2], "payload intact");
            }
        }
    }

    #[test]
    fn hit_and_miss_counters_count_fetches() {
        let tier = PolicyByteCache::new(PolicyKind::Fifo, 1 << 20);
        for epoch in 0..3 {
            for item in 0..10u64 {
                match tier.lookup(item) {
                    Some(_) => assert!(epoch > 0),
                    None => {
                        tier.admit(item, payload(item, 8));
                    }
                }
            }
        }
        assert_eq!(tier.misses(), 10);
        assert_eq!(tier.hits(), 20);
    }
}
