//! Pluggable byte-cache tiers.
//!
//! A [`CacheTier`] sits between a [`Session`](crate::Session)'s prep workers
//! and its [`FetchBackend`](crate::FetchBackend).  Two implementations ship
//! with the crate:
//!
//! * [`MinIoByteCache`] — CoorDL's own never-evict policy (§4.1), the
//!   default tier;
//! * [`PolicyByteCache`] — any `coordl-cache` replacement policy (LRU, FIFO,
//!   CLOCK, MinIO) holding real item bytes, so the runtime can reproduce the
//!   page-cache thrashing the paper measures with the *same* policy code the
//!   simulator's [`storage::StorageNode`] uses.

use crate::cache::MinIoByteCache;
use dataset::ItemId;
use dcache::{build_cache, AccessOutcome, Cache, PolicyKind};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;

/// A thread-safe byte cache tier keyed by item id.
///
/// `lookup` and `admit` mirror the two halves of a fetch: every lookup miss
/// is expected to be followed by an `admit` of the bytes read from the next
/// tier down, which is when the policy decides whether to retain them (and
/// what to evict).  Hit/miss counters therefore count *fetches*, exactly as
/// the simulator's cache statistics do.
pub trait CacheTier: Send + Sync {
    /// Look `item` up, returning its bytes on a hit.
    fn lookup(&self, item: ItemId) -> Option<Arc<Vec<u8>>>;

    /// Offer `bytes` for `item` after a miss.  The tier admits (and possibly
    /// evicts) according to its policy; the caller always keeps a usable
    /// reference.
    fn admit(&self, item: ItemId, bytes: Arc<Vec<u8>>) -> Arc<Vec<u8>>;

    /// Whether `item` is currently resident.
    fn contains(&self, item: ItemId) -> bool;

    /// Bytes currently resident.
    fn used_bytes(&self) -> u64;

    /// Capacity in bytes.
    fn capacity_bytes(&self) -> u64;

    /// Number of resident items.
    fn resident_items(&self) -> usize;

    /// Lookup hits since construction.
    fn hits(&self) -> u64;

    /// Lookup misses since construction.
    fn misses(&self) -> u64;

    /// Name of the replacement policy.
    fn policy_name(&self) -> &'static str;
}

impl CacheTier for MinIoByteCache {
    fn lookup(&self, item: ItemId) -> Option<Arc<Vec<u8>>> {
        self.get(item)
    }

    fn admit(&self, item: ItemId, bytes: Arc<Vec<u8>>) -> Arc<Vec<u8>> {
        self.insert(item, bytes)
    }

    fn contains(&self, item: ItemId) -> bool {
        MinIoByteCache::contains(self, item)
    }

    fn used_bytes(&self) -> u64 {
        MinIoByteCache::used_bytes(self)
    }

    fn capacity_bytes(&self) -> u64 {
        MinIoByteCache::capacity_bytes(self)
    }

    fn resident_items(&self) -> usize {
        self.len()
    }

    fn hits(&self) -> u64 {
        MinIoByteCache::hits(self)
    }

    fn misses(&self) -> u64 {
        MinIoByteCache::misses(self)
    }

    fn policy_name(&self) -> &'static str {
        PolicyKind::MinIo.name()
    }
}

struct PolicyInner {
    policy: Box<dyn Cache<u64> + Send>,
    bytes: HashMap<ItemId, Arc<Vec<u8>>>,
    // Fetch counters live in the wrapper, not the policy: with concurrent
    // workers, a lookup miss raced by another worker's admit would otherwise
    // be lost (the policy sees neither a miss nor a hit for it).  Counting
    // at lookup time matches MinIoByteCache exactly: one hit or one miss per
    // fetch, always.
    hits: u64,
    misses: u64,
}

/// A byte-holding cache tier driven by any `coordl-cache` replacement
/// policy.
///
/// The policy decides residency and eviction; this wrapper stores the actual
/// payloads and drops them as soon as the policy reports their eviction (via
/// [`Cache::take_evicted`]), so resident bytes always equal what the policy
/// accounts.
pub struct PolicyByteCache {
    inner: Mutex<PolicyInner>,
    name: &'static str,
}

impl PolicyByteCache {
    /// Create a byte cache driven by `kind` with the given byte capacity.
    pub fn new(kind: PolicyKind, capacity_bytes: u64) -> Self {
        let mut policy = build_cache(kind, capacity_bytes);
        // Victim logging is opt-in (plain simulations skip it); this wrapper
        // needs it to drop payloads alongside their evicted entries.
        policy.set_eviction_tracking(true);
        PolicyByteCache {
            inner: Mutex::new(PolicyInner {
                policy,
                bytes: HashMap::new(),
                hits: 0,
                misses: 0,
            }),
            name: kind.name(),
        }
    }
}

impl CacheTier for PolicyByteCache {
    fn lookup(&self, item: ItemId) -> Option<Arc<Vec<u8>>> {
        let mut inner = self.inner.lock();
        let Some(bytes) = inner.bytes.get(&item).map(Arc::clone) else {
            inner.misses += 1;
            return None;
        };
        inner.hits += 1;
        // Touch recency in the policy (LRU promotion, CLOCK bit, ...).
        let outcome = inner.policy.access(item, bytes.len() as u64);
        debug_assert_eq!(outcome, AccessOutcome::Hit);
        Some(bytes)
    }

    fn admit(&self, item: ItemId, bytes: Arc<Vec<u8>>) -> Arc<Vec<u8>> {
        let mut inner = self.inner.lock();
        if inner.bytes.contains_key(&item) {
            // A concurrent worker admitted it first; keep the resident copy.
            return Arc::clone(&inner.bytes[&item]);
        }
        let outcome = inner.policy.access(item, bytes.len() as u64);
        for victim in inner.policy.take_evicted() {
            inner.bytes.remove(&victim);
        }
        if outcome == AccessOutcome::Inserted {
            inner.bytes.insert(item, Arc::clone(&bytes));
        }
        bytes
    }

    fn contains(&self, item: ItemId) -> bool {
        self.inner.lock().policy.contains(&item)
    }

    fn used_bytes(&self) -> u64 {
        self.inner.lock().policy.used_bytes()
    }

    fn capacity_bytes(&self) -> u64 {
        self.inner.lock().policy.capacity_bytes()
    }

    fn resident_items(&self) -> usize {
        self.inner.lock().policy.len()
    }

    fn hits(&self) -> u64 {
        self.inner.lock().hits
    }

    fn misses(&self) -> u64 {
        self.inner.lock().misses
    }

    fn policy_name(&self) -> &'static str {
        self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn payload(item: ItemId, len: usize) -> Arc<Vec<u8>> {
        Arc::new(vec![item as u8; len])
    }

    #[test]
    fn lru_tier_evicts_payloads_with_their_entries() {
        let tier = PolicyByteCache::new(PolicyKind::Lru, 2);
        for item in 0..4u64 {
            assert!(tier.lookup(item).is_none());
            tier.admit(item, payload(item, 1));
        }
        // Capacity 2: items 0 and 1 were evicted, payloads dropped with them.
        assert!(!tier.contains(0) && !tier.contains(1));
        assert!(tier.contains(2) && tier.contains(3));
        assert_eq!(tier.resident_items(), 2);
        assert_eq!(tier.used_bytes(), 2);
        assert!(tier.lookup(0).is_none());
        assert_eq!(tier.lookup(3).unwrap().as_slice(), &[3]);
    }

    #[test]
    fn lru_tier_promotes_on_lookup() {
        let tier = PolicyByteCache::new(PolicyKind::Lru, 2);
        tier.admit(1, payload(1, 1));
        tier.admit(2, payload(2, 1));
        let _ = tier.lookup(1); // touch 1: 2 becomes the victim
        tier.admit(3, payload(3, 1));
        assert!(tier.contains(1) && !tier.contains(2) && tier.contains(3));
    }

    #[test]
    fn minio_policy_tier_matches_minio_byte_cache_semantics() {
        let tier = PolicyByteCache::new(PolicyKind::MinIo, 2);
        let native = MinIoByteCache::new(2);
        for item in 0..5u64 {
            if tier.lookup(item).is_none() {
                tier.admit(item, payload(item, 1));
            }
            if CacheTier::lookup(&native, item).is_none() {
                CacheTier::admit(&native, item, payload(item, 1));
            }
        }
        assert_eq!(tier.resident_items(), native.resident_items());
        assert_eq!(tier.used_bytes(), CacheTier::used_bytes(&native));
        for item in 0..5u64 {
            assert_eq!(tier.contains(item), CacheTier::contains(&native, item));
        }
    }

    #[test]
    fn racing_admits_still_count_one_miss_per_fetch() {
        // Two workers can both lookup-miss the same item before either
        // admits it; the loser's admit is a no-op, but both fetches must be
        // accounted (one miss each), matching the bytes they actually read
        // from the backend.
        let tier = PolicyByteCache::new(PolicyKind::Lru, 1 << 20);
        assert!(tier.lookup(7).is_none());
        assert!(tier.lookup(7).is_none()); // second worker, same race window
        tier.admit(7, payload(7, 4));
        tier.admit(7, payload(7, 4)); // loser's admit: keeps resident copy
        assert_eq!(tier.misses(), 2, "both fetches were misses");
        assert_eq!(tier.hits(), 0);
        assert_eq!(tier.resident_items(), 1);
        assert_eq!(tier.lookup(7).unwrap().as_slice(), &[7; 4]);
        assert_eq!(tier.hits(), 1);
    }

    #[test]
    fn hit_and_miss_counters_count_fetches() {
        let tier = PolicyByteCache::new(PolicyKind::Fifo, 1 << 20);
        for epoch in 0..3 {
            for item in 0..10u64 {
                match tier.lookup(item) {
                    Some(_) => assert!(epoch > 0),
                    None => {
                        tier.admit(item, payload(item, 8));
                    }
                }
            }
        }
        assert_eq!(tier.misses(), 10);
        assert_eq!(tier.hits(), 20);
    }
}
