//! The multi-tenant CoorDL server: many concurrent [`Session`]s over one
//! shared cache hierarchy.
//!
//! The paper's coordination story (§4.3, §5) assumes a fixed set of jobs;
//! production serving means jobs arriving and departing continuously against
//! one DRAM→SSD hierarchy.  A [`Server`] owns a single concurrent
//! [`ShardedChain`] and admits workloads dynamically:
//!
//! * [`Server::submit`] builds a [`Session`] whose cache tier is a
//!   [`TenantView`] — a per-tenant window onto the shared hierarchy with a
//!   disjoint key namespace and private hit/miss accounting;
//! * each tenant holds a **DRAM byte quota**: once its resident DRAM bytes
//!   would exceed the quota, further admissions spill to the lower tiers
//!   (the admission *floor* rises) instead of taking shared DRAM;
//! * when active quotas oversubscribe the DRAM tier, every tenant's
//!   *effective* quota is scaled to its **fair share**
//!   (`quota_i · capacity / Σ quota`), recomputed on every arrival and
//!   departure;
//! * dropping (or [`TenantHandle::depart`]-ing) a handle removes the
//!   tenant's keys from every tier, so its bytes are immediately reusable.
//!
//! The server is restricted to **MinIO tiers**: never-evict and never-demote
//! means no tenant's admission can displace another's bytes, per-tenant
//! accounting is exact (no eviction callbacks needed), and — because a
//! tenant whose DRAM quota is exhausted produces *exactly* the same chain
//! transactions as a MinIO tier that is full — a one-tenant server is
//! bit-identical to a standalone session (pinned by
//! `tests/server_equivalence.rs`).
//!
//! Concurrency: every per-key operation locks the key's payload shard, then
//! the tenant's counters, then the chain shard (a strict order, so tenants
//! never deadlock), and all locks recover from poisoning — one tenant's
//! panicking worker cannot take the server down.

use crate::error::CoordlError;
use crate::report::{LoaderReport, TenantReport};
use crate::session::{Mode, Session, SessionConfig};
use crate::tier::{intern_label, ByteTierSpec, CacheTier, TierBacking, TierSnapshot};
use dataset::{DataSource, ItemId};
use dcache::{ChainSource, PolicyKind, ShardedChain, TierCost};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use storage::{AccessPattern, DeviceProfile};
use vfs::SpillStore;

/// Each tenant's keys live in a private `KEY_STRIDE`-sized window of the
/// shared `u64` key space, so tenants can never collide on a chain key and a
/// departed tenant's window is never reused (ids are monotonic).
const KEY_STRIDE: u64 = 1 << 40;

/// Configuration of a [`Server`]'s shared hierarchy.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Tier layout shared by every tenant, fastest (DRAM) first.  Every
    /// level must use [`PolicyKind::MinIo`] (see the [module docs](self)).
    pub tiers: Vec<ByteTierSpec>,
    /// Number of independently locked shards the hierarchy is split into
    /// (1 = a single lock, bit-identical to the single-owner chain).
    pub shards: usize,
}

impl ServerConfig {
    /// A single shared MinIO DRAM tier of `capacity_bytes` split into
    /// `shards` locks.
    pub fn minio(capacity_bytes: u64, shards: usize) -> Self {
        ServerConfig {
            tiers: vec![ByteTierSpec::dram(PolicyKind::MinIo, capacity_bytes)],
            shards,
        }
    }
}

/// A workload submitted to [`Server::submit`].
pub struct TenantSpec {
    /// Tenant name, used in reports.
    pub name: String,
    /// The tenant's dataset.
    pub dataset: Arc<dyn DataSource>,
    /// DRAM-tier byte quota: admissions beyond it spill to lower tiers.
    pub quota_bytes: u64,
    /// Per-session knobs (batch size, workers, seed, ...).  The session's
    /// `cache_capacity_bytes` is ignored — capacity belongs to the server.
    pub session: SessionConfig,
    /// Optional device profile timing the tenant's backend reads.
    pub profile: Option<DeviceProfile>,
}

/// Per-tenant cache accounting, updated under the tenant's own mutex.
///
/// Per-tenant operations are serial (each session fetches on one thread), so
/// this lock is uncontended in steady state; it exists so [`Server`]-side
/// readers (fair-share reports, invariant checks) see consistent numbers.
#[derive(Debug, Default)]
struct TenantCounters {
    hits: u64,
    misses: u64,
    /// Bytes this tenant holds in the DRAM (topmost) tier.
    dram_bytes: u64,
    /// Bytes this tenant holds across all tiers (a promoted key's copies
    /// count once per level, matching `TierChain::used_bytes`).
    total_bytes: u64,
    resident_items: usize,
    level_hits: Vec<u64>,
    level_misses: Vec<u64>,
    level_seconds: Vec<f64>,
}

impl TenantCounters {
    fn new(levels: usize) -> Self {
        TenantCounters {
            level_hits: vec![0; levels],
            level_misses: vec![0; levels],
            level_seconds: vec![0.0; levels],
            ..TenantCounters::default()
        }
    }
}

/// State shared between a tenant's [`TenantView`] and its [`TenantHandle`].
struct TenantShared {
    id: u64,
    name: String,
    key_base: u64,
    quota_bytes: u64,
    /// Quota after fair-share scaling; written under the registry lock,
    /// read on the fetch path.
    effective_quota: AtomicU64,
    counters: Mutex<TenantCounters>,
    departed: AtomicBool,
}

/// The shared hierarchy: the sharded chain plus the payload bytes,
/// co-sharded so a key's payload and its residency share one lock scope.
struct ServerCore {
    chain: ShardedChain,
    payloads: Vec<Mutex<HashMap<u64, Arc<Vec<u8>>>>>,
    specs: Vec<ByteTierSpec>,
    /// Modelled per-hit cost of each profiled level (`None` for DRAM).
    costs: Vec<Option<TierCost>>,
    /// Durable shadow of each [`TierBacking::Vfs`] level's resident set
    /// (`None` for memory-backed levels).  Locked strictly after the
    /// payload shard, tenant counters and chain shard, so the fetch path's
    /// lock order is never inverted.
    spills: Vec<Option<Mutex<SpillStore>>>,
    /// Hierarchy label, following `TieredByteCache`'s naming exactly so a
    /// one-tenant server reports the same `cache_policy`.
    label: &'static str,
}

struct ServerInner {
    core: Arc<ServerCore>,
    registry: Mutex<Vec<Arc<TenantShared>>>,
    next_id: AtomicU64,
}

/// Recompute every active tenant's effective quota.  Called under the
/// registry lock on each arrival and departure.
fn recompute_shares(core: &ServerCore, tenants: &[Arc<TenantShared>]) {
    let dram_capacity = core.chain.tier_spec(0).capacity_bytes;
    let total: u128 = tenants.iter().map(|t| t.quota_bytes as u128).sum();
    for t in tenants {
        let effective = if total <= dram_capacity as u128 {
            t.quota_bytes
        } else {
            // Oversubscribed: proportional fair share of the DRAM tier.
            ((t.quota_bytes as u128 * dram_capacity as u128) / total) as u64
        };
        t.effective_quota.store(effective, Ordering::Release);
    }
}

/// One tenant's window onto the shared hierarchy: a [`CacheTier`] whose keys
/// are offset into the tenant's private namespace and whose hit/miss/byte
/// counters are private, while residency decisions and capacity are shared.
pub struct TenantView {
    core: Arc<ServerCore>,
    tenant: Arc<TenantShared>,
}

impl TenantView {
    fn key(&self, item: ItemId) -> u64 {
        self.tenant.key_base + item
    }

    /// The admission floor for a `size`-byte item: 0 (DRAM allowed) while
    /// the tenant is within its effective quota, 1 (spill below) otherwise.
    ///
    /// For a lone tenant whose quota is the DRAM capacity this is the same
    /// arithmetic as MinIO's internal `used + size <= capacity` check, and a
    /// floor-1 bypass records the same level-0 statistics as a MinIO
    /// admission refusal — the root of the one-tenant bitwise equivalence.
    fn admission_floor(&self, counters: &TenantCounters, size: u64) -> usize {
        let quota = self.tenant.effective_quota.load(Ordering::Acquire);
        if counters.dram_bytes + size <= quota {
            0
        } else {
            1
        }
    }

    /// Account an admission (first admission or a promotion copy).
    fn record_admission(&self, counters: &mut TenantCounters, key: u64, size: u64) {
        if self.core.chain.locate(key) == Some(0) {
            counters.dram_bytes += size;
        }
        counters.total_bytes += size;
    }

    /// Mirror an admission that landed in a persistent level into that
    /// level's spill store.  A no-op for memory-backed landings (the common
    /// DRAM case), so purely in-memory servers never touch a spill lock.
    fn record_spill(&self, key: u64, bytes: &[u8]) {
        let Some(level) = self.core.chain.locate(key) else {
            return;
        };
        if let Some(spill) = &self.core.spills[level] {
            spill
                .lock()
                .write(key, bytes)
                .expect("spill write failed on admission");
        }
    }
}

impl CacheTier for TenantView {
    fn lookup(&self, item: ItemId) -> Option<Arc<Vec<u8>>> {
        self.lookup_traced(item).map(|(bytes, _)| bytes)
    }

    fn lookup_traced(&self, item: ItemId) -> Option<(Arc<Vec<u8>>, usize)> {
        let key = self.key(item);
        let payload = self.core.payloads[self.core.chain.shard_of(key)].lock();
        let mut counters = self.tenant.counters.lock();
        let Some(bytes) = payload.get(&key).map(Arc::clone) else {
            counters.misses += 1;
            return None;
        };
        counters.hits += 1;
        let size = bytes.len() as u64;
        let floor = self.admission_floor(&counters, size);
        let access = self.core.chain.access_with_floor(key, size, floor);
        let level = match access.source {
            ChainSource::Tier(k) => k,
            ChainSource::Store => unreachable!("payload implies residency"),
        };
        debug_assert!(access.dropped.is_empty(), "MinIO tiers never drop keys");
        if access.admitted {
            // A hit below DRAM was promoted: one more resident copy.
            self.record_admission(&mut counters, key, size);
            self.record_spill(key, &bytes);
        }
        counters.level_hits[level] += 1;
        for miss in &mut counters.level_misses[..level] {
            *miss += 1;
        }
        if let Some(cost) = &self.core.costs[level] {
            counters.level_seconds[level] += cost.access_seconds(size);
        }
        Some((bytes, level))
    }

    fn admit(&self, item: ItemId, bytes: Arc<Vec<u8>>) -> Arc<Vec<u8>> {
        let key = self.key(item);
        let mut payload = self.core.payloads[self.core.chain.shard_of(key)].lock();
        if let Some(existing) = payload.get(&key) {
            // A concurrent admit won the race; keep the resident copy.
            return Arc::clone(existing);
        }
        let mut counters = self.tenant.counters.lock();
        let size = bytes.len() as u64;
        let floor = self.admission_floor(&counters, size);
        let access = self.core.chain.access_with_floor(key, size, floor);
        debug_assert_eq!(access.source, ChainSource::Store, "payload was absent");
        debug_assert!(access.dropped.is_empty(), "MinIO tiers never drop keys");
        // The chain consulted (and missed) every level.
        for miss in &mut counters.level_misses {
            *miss += 1;
        }
        if access.admitted {
            self.record_admission(&mut counters, key, size);
            counters.resident_items += 1;
            payload.insert(key, Arc::clone(&bytes));
            self.record_spill(key, &bytes);
        }
        bytes
    }

    fn contains(&self, item: ItemId) -> bool {
        self.core.chain.contains(self.key(item))
    }

    fn used_bytes(&self) -> u64 {
        self.tenant.counters.lock().total_bytes
    }

    fn capacity_bytes(&self) -> u64 {
        // Capacity is shared: every tenant sees the full hierarchy.
        self.core.chain.capacity_bytes()
    }

    fn resident_items(&self) -> usize {
        self.tenant.counters.lock().resident_items
    }

    fn hits(&self) -> u64 {
        self.tenant.counters.lock().hits
    }

    fn misses(&self) -> u64 {
        self.tenant.counters.lock().misses
    }

    fn policy_name(&self) -> &'static str {
        self.core.label
    }

    fn tier_snapshots(&self) -> Vec<TierSnapshot> {
        let counters = self.tenant.counters.lock();
        (0..self.core.specs.len())
            .map(|k| {
                let spec = &self.core.specs[k];
                TierSnapshot {
                    name: spec.name,
                    policy: spec.policy.name(),
                    // Capacity and occupancy describe the *shared* level;
                    // hits, misses and device time are this tenant's own.
                    capacity_bytes: self.core.chain.tier_spec(k).capacity_bytes,
                    used_bytes: self.core.chain.tier_used_bytes(k),
                    resident_items: self.core.chain.tier_len(k),
                    hits: counters.level_hits[k],
                    misses: counters.level_misses[k],
                    evictions: 0,
                    demoted_in: 0,
                    demoted_out: 0,
                    device_seconds: counters.level_seconds[k],
                }
            })
            .collect()
    }
}

/// A long-lived multi-tenant runtime: one shared [`ShardedChain`] hierarchy,
/// dynamically admitted [`Session`]s.  See the [module docs](self).
pub struct Server {
    inner: Arc<ServerInner>,
}

impl Server {
    /// Build a server over `config`'s shared hierarchy.
    ///
    /// Fails with [`CoordlError::InvalidConfig`] when the tier list is
    /// empty, a level uses a policy other than MinIO, or `shards` is zero.
    pub fn new(config: ServerConfig) -> Result<Self, CoordlError> {
        if config.tiers.is_empty() {
            return Err(CoordlError::InvalidConfig(
                "server needs at least one cache tier".into(),
            ));
        }
        if config.shards == 0 {
            return Err(CoordlError::InvalidConfig(
                "server needs at least one shard".into(),
            ));
        }
        if let Some(bad) = config.tiers.iter().find(|t| t.policy != PolicyKind::MinIo) {
            return Err(CoordlError::InvalidConfig(format!(
                "multi-tenant tiers must use MinIO (never-evict) so tenants \
                 cannot displace each other; tier '{}' uses {}",
                bad.name,
                bad.policy.name()
            )));
        }
        let chain_specs = config.tiers.iter().map(ByteTierSpec::tier_spec).collect();
        let chain = ShardedChain::new(chain_specs, config.shards);
        let payloads: Vec<Mutex<HashMap<u64, Arc<Vec<u8>>>>> = (0..config.shards)
            .map(|_| Mutex::new(HashMap::new()))
            .collect();
        // Open every persistent level's spill store and warm the shared
        // hierarchy from its manifest: each recorded key is re-offered at
        // its own level (the floor keeps it out of faster tiers) and its
        // payload read back into the co-sharded payload map.  Keys carry
        // their original tenant-window offsets, and tenant ids restart from
        // zero, so a resubmitted workload lines up with its warmed window.
        // Warmed bytes are not charged to any tenant's quota until that
        // tenant touches them (a DRAM promotion is accounted as usual).
        let mut spills = Vec::with_capacity(config.tiers.len());
        for (level, tier) in config.tiers.iter().enumerate() {
            match &tier.backing {
                TierBacking::Memory => spills.push(None),
                TierBacking::Vfs { vfs, dir } => {
                    let mut spill = SpillStore::open(Arc::clone(vfs), dir).map_err(|e| {
                        CoordlError::InvalidConfig(format!(
                            "persistent tier {:?} failed to open {dir}: {e}",
                            tier.name
                        ))
                    })?;
                    for (key, len) in spill.entries().collect::<Vec<_>>() {
                        let access = chain.access_with_floor(key, len, level);
                        if access.admitted {
                            let payload = spill.read(key).map_err(|e| {
                                CoordlError::InvalidConfig(format!(
                                    "persistent tier {:?} failed replaying item {key}: {e}",
                                    tier.name
                                ))
                            })?;
                            payloads[chain.shard_of(key)]
                                .lock()
                                .insert(key, Arc::new(payload));
                        } else {
                            // The level shrank across the restart: the entry
                            // no longer fits, so retire its on-disk copy.
                            let _ = spill.remove(key);
                        }
                    }
                    spills.push(Some(Mutex::new(spill)));
                }
            }
        }
        // Warm contents, cold statistics.
        chain.reset_stats();
        let costs = config
            .tiers
            .iter()
            .map(|t| {
                t.profile
                    .as_ref()
                    .map(|p| p.tier_cost(AccessPattern::Random))
            })
            .collect();
        // Same labeling rules as TieredByteCache, so a one-tenant server's
        // report carries the same `cache_policy` string.
        let label = if config.tiers.len() == 1 {
            config.tiers[0].policy.name()
        } else {
            intern_label(
                config
                    .tiers
                    .iter()
                    .map(|t| format!("{}:{}", t.name, t.policy.name()))
                    .collect::<Vec<_>>()
                    .join("+"),
            )
        };
        Ok(Server {
            inner: Arc::new(ServerInner {
                core: Arc::new(ServerCore {
                    chain,
                    payloads,
                    specs: config.tiers,
                    costs,
                    spills,
                    label,
                }),
                registry: Mutex::new(Vec::new()),
                next_id: AtomicU64::new(0),
            }),
        })
    }

    /// Admit a tenant: build its [`Session`] over a [`TenantView`] of the
    /// shared hierarchy, register it, and rebalance fair shares.
    pub fn submit(&self, spec: TenantSpec) -> Result<TenantHandle, CoordlError> {
        if spec.name.is_empty() {
            return Err(CoordlError::InvalidConfig(
                "tenant name must not be empty".into(),
            ));
        }
        if spec.dataset.len() > KEY_STRIDE {
            return Err(CoordlError::InvalidConfig(format!(
                "tenant dataset has {} items; the per-tenant key window holds {KEY_STRIDE}",
                spec.dataset.len()
            )));
        }
        let id = self.inner.next_id.fetch_add(1, Ordering::Relaxed);
        let key_base = id
            .checked_mul(KEY_STRIDE)
            .ok_or_else(|| CoordlError::InvalidConfig("tenant id space exhausted".into()))?;
        let tenant = Arc::new(TenantShared {
            id,
            name: spec.name,
            key_base,
            quota_bytes: spec.quota_bytes,
            effective_quota: AtomicU64::new(spec.quota_bytes),
            counters: Mutex::new(TenantCounters::new(self.inner.core.specs.len())),
            departed: AtomicBool::new(false),
        });
        let view = TenantView {
            core: Arc::clone(&self.inner.core),
            tenant: Arc::clone(&tenant),
        };
        // Build the session *before* registering, so a config error leaves
        // the server untouched.
        let mut builder = Session::builder(spec.dataset, spec.session)
            .mode(Mode::Single)
            .cache_tier(Arc::new(view));
        if let Some(profile) = spec.profile {
            builder = builder.device_profile(profile);
        }
        let session = builder.build()?;
        {
            let mut registry = self.inner.registry.lock();
            registry.push(Arc::clone(&tenant));
            recompute_shares(&self.inner.core, &registry);
        }
        Ok(TenantHandle {
            session,
            tenant,
            inner: Arc::clone(&self.inner),
        })
    }

    /// Number of currently active tenants.
    pub fn active_tenants(&self) -> usize {
        self.inner.registry.lock().len()
    }

    /// Aggregate hit ratio of the shared hierarchy over every fetch any
    /// tenant ever issued (departures do not reset it) — the number
    /// `dstool validate`'s churn scenario compares against the simulator.
    pub fn aggregate_hit_ratio(&self) -> f64 {
        let hits = self.inner.core.chain.hits();
        let total = hits + self.inner.core.chain.store_misses();
        if total == 0 {
            0.0
        } else {
            hits as f64 / total as f64
        }
    }

    /// Bytes resident across all tiers and tenants.
    pub fn used_bytes(&self) -> u64 {
        self.inner.core.chain.used_bytes()
    }

    /// Bytes resident in the DRAM tier across all tenants.
    pub fn dram_used_bytes(&self) -> u64 {
        self.inner.core.chain.tier_used_bytes(0)
    }

    /// Total capacity of the shared hierarchy.
    pub fn capacity_bytes(&self) -> u64 {
        self.inner.core.chain.capacity_bytes()
    }

    /// Capacity of the DRAM tier.
    pub fn dram_capacity_bytes(&self) -> u64 {
        self.inner.core.chain.tier_spec(0).capacity_bytes
    }

    /// Distinct items resident across all tiers and tenants.
    pub fn resident_items(&self) -> usize {
        self.inner.core.chain.resident_items()
    }

    /// Number of lock shards of the shared hierarchy.
    pub fn num_shards(&self) -> usize {
        self.inner.core.chain.num_shards()
    }
}

/// An admitted tenant: owns the tenant's [`Session`] and, on drop (or
/// [`TenantHandle::depart`]), deregisters the tenant and reclaims every
/// byte it held in the shared hierarchy.
pub struct TenantHandle {
    session: Session,
    tenant: Arc<TenantShared>,
    inner: Arc<ServerInner>,
}

impl TenantHandle {
    /// The tenant's session.  `session().epoch(e)` borrows the handle, so a
    /// tenant cannot depart while one of its epochs is still running.
    pub fn session(&self) -> &Session {
        &self.session
    }

    /// Tenant name.
    pub fn name(&self) -> &str {
        &self.tenant.name
    }

    /// The DRAM quota requested at submission.
    pub fn quota_bytes(&self) -> u64 {
        self.tenant.quota_bytes
    }

    /// The quota currently granted after fair-share scaling.
    pub fn effective_quota_bytes(&self) -> u64 {
        self.tenant.effective_quota.load(Ordering::Acquire)
    }

    /// Bytes this tenant holds in the DRAM tier.
    pub fn dram_resident_bytes(&self) -> u64 {
        self.tenant.counters.lock().dram_bytes
    }

    /// Bytes this tenant holds across all tiers.
    pub fn resident_bytes(&self) -> u64 {
        self.tenant.counters.lock().total_bytes
    }

    /// The session's [`LoaderReport`] with the tenant block filled in.
    pub fn report(&self) -> LoaderReport {
        let mut report = self.session.report();
        report.tenant = Some(TenantReport {
            name: self.tenant.name.clone(),
            quota_bytes: self.tenant.quota_bytes,
            effective_quota_bytes: self.effective_quota_bytes(),
            dram_resident_bytes: self.dram_resident_bytes(),
            resident_bytes: self.resident_bytes(),
        });
        report
    }

    /// Leave the server: deregister, rebalance the remaining tenants'
    /// shares, and release every cached byte.  Equivalent to dropping the
    /// handle, spelled out for call sites that depart mid-function.
    pub fn depart(self) {}
}

impl Drop for TenantHandle {
    fn drop(&mut self) {
        // Deregister first so rebalancing stops counting this tenant.
        {
            let mut registry = self.inner.registry.lock();
            registry.retain(|t| t.id != self.tenant.id);
            recompute_shares(&self.inner.core, &registry);
        }
        // Reclaim shard by shard: the payload lock covers the chain edit,
        // so no fetch can observe a payload without chain residency.
        let window = self.tenant.key_base..self.tenant.key_base.saturating_add(KEY_STRIDE);
        for shard in &self.inner.core.payloads {
            let mut payload = shard.lock();
            let keys: Vec<u64> = payload
                .keys()
                .copied()
                .filter(|k| window.contains(k))
                .collect();
            for key in keys {
                payload.remove(&key);
                self.inner.core.chain.remove(key);
                // A clean departure retires the tenant's persisted copies
                // too; only a crash (no drop) leaves the manifest behind
                // for the next server to warm from.
                for spill in self.inner.core.spills.iter().flatten() {
                    let mut spill = spill.lock();
                    if spill.contains(key) {
                        let _ = spill.remove(key);
                    }
                }
            }
        }
        let mut counters = self.tenant.counters.lock();
        counters.dram_bytes = 0;
        counters.total_bytes = 0;
        counters.resident_items = 0;
        drop(counters);
        self.tenant.departed.store(true, Ordering::Release);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dataset::{DatasetSpec, SyntheticItemStore};

    fn store(name: &'static str, items: u64, avg: u64) -> Arc<dyn DataSource> {
        Arc::new(SyntheticItemStore::new(
            DatasetSpec::new(name, items, avg, 0.0, 4.0),
            11,
        ))
    }

    fn spec(name: &str, items: u64, quota: u64) -> TenantSpec {
        TenantSpec {
            name: name.to_string(),
            dataset: store("srv", items, 64),
            quota_bytes: quota,
            session: SessionConfig {
                batch_size: 8,
                cache_capacity_bytes: 0, // ignored: capacity is the server's
                ..SessionConfig::default()
            },
            profile: None,
        }
    }

    fn run_epochs(handle: &TenantHandle, epochs: u64) {
        for e in 0..epochs {
            let run = handle.session().epoch(e);
            assert!(run.stream(0).all(|mb| mb.is_ok()));
        }
    }

    #[test]
    fn non_minio_tiers_are_rejected() {
        let Err(err) = Server::new(ServerConfig {
            tiers: vec![ByteTierSpec::dram(PolicyKind::Lru, 1 << 20)],
            shards: 2,
        }) else {
            panic!("LRU tier must be rejected");
        };
        assert!(matches!(err, CoordlError::InvalidConfig(_)));
        assert!(err.to_string().contains("MinIO"));
        assert!(Server::new(ServerConfig::minio(1 << 20, 0)).is_err());
        assert!(Server::new(ServerConfig {
            tiers: vec![],
            shards: 1
        })
        .is_err());
    }

    #[test]
    fn quotas_cap_each_tenants_dram_bytes() {
        let server = Server::new(ServerConfig::minio(1 << 20, 2)).unwrap();
        let tenant = server.submit(spec("small", 64, 1000)).unwrap();
        run_epochs(&tenant, 2);
        assert!(tenant.dram_resident_bytes() <= 1000);
        // Items are 64 bytes: the quota actually binds well below the tier.
        assert!(tenant.dram_resident_bytes() > 0);
        assert!(server.dram_used_bytes() <= server.dram_capacity_bytes());
    }

    #[test]
    fn oversubscribed_quotas_scale_to_fair_shares_and_recover_on_departure() {
        let server = Server::new(ServerConfig::minio(1000, 1)).unwrap();
        let a = server.submit(spec("a", 16, 900)).unwrap();
        assert_eq!(a.effective_quota_bytes(), 900, "alone: full quota");
        let b = server.submit(spec("b", 16, 600)).unwrap();
        // 1500 requested over 1000: proportional shares.
        assert_eq!(a.effective_quota_bytes(), 900 * 1000 / 1500);
        assert_eq!(b.effective_quota_bytes(), 600 * 1000 / 1500);
        assert_eq!(server.active_tenants(), 2);
        b.depart();
        assert_eq!(server.active_tenants(), 1);
        assert_eq!(
            a.effective_quota_bytes(),
            900,
            "shares rebalance on departure"
        );
    }

    #[test]
    fn departure_reclaims_bytes_and_leaves_other_tenants_intact() {
        let server = Server::new(ServerConfig::minio(1 << 20, 4)).unwrap();
        let a = server.submit(spec("a", 32, 1 << 20)).unwrap();
        let b = server.submit(spec("b", 32, 1 << 20)).unwrap();
        run_epochs(&a, 1);
        run_epochs(&b, 1);
        let a_bytes = a.resident_bytes();
        let b_bytes = b.resident_bytes();
        assert!(a_bytes > 0 && b_bytes > 0);
        assert_eq!(server.used_bytes(), a_bytes + b_bytes);
        a.depart();
        assert_eq!(server.used_bytes(), b_bytes, "a's bytes reclaimed");
        assert_eq!(server.resident_items(), 32, "b's items intact");
        // b still hits everything it cached.
        let before = b.session().stats().bytes_from_storage();
        run_epochs(&b, 1);
        assert_eq!(
            b.session().stats().bytes_from_storage(),
            before,
            "b's second epoch is all hits"
        );
    }

    #[test]
    fn tenants_never_observe_each_others_items() {
        let server = Server::new(ServerConfig::minio(1 << 20, 2)).unwrap();
        let a = server.submit(spec("a", 16, 1 << 20)).unwrap();
        let b = server.submit(spec("b", 16, 1 << 20)).unwrap();
        run_epochs(&a, 1);
        // a cached its whole dataset; b has touched nothing, so b's view
        // must report every one of its own items absent.
        let b_tier = b.session().cache_tier().unwrap();
        for item in 0..16 {
            assert!(!b_tier.contains(item), "item {item} leaked to b");
        }
        assert_eq!(b.resident_bytes(), 0);
        assert!(a.resident_bytes() > 0);
    }

    #[test]
    fn zero_quota_spills_everything_out_of_dram() {
        // Single-tier server + zero quota: nothing is ever admitted, every
        // epoch re-reads storage (floor 1 on a 1-level chain bypasses all).
        let server = Server::new(ServerConfig::minio(1 << 20, 1)).unwrap();
        let t = server.submit(spec("cold", 16, 0)).unwrap();
        run_epochs(&t, 2);
        assert_eq!(t.resident_bytes(), 0);
        assert_eq!(server.used_bytes(), 0);
        let stats = t.session().stats();
        assert_eq!(stats.bytes_from_cache(), 0);
        assert!(stats.bytes_from_storage() > 0);
    }

    #[test]
    fn persistent_ssd_tier_survives_a_crashed_server() {
        use vfs::{MemVfs, Vfs};
        let fs: Arc<dyn Vfs> = Arc::new(MemVfs::new());
        let tiers = |fs: &Arc<dyn Vfs>| {
            vec![
                ByteTierSpec::dram(PolicyKind::MinIo, 1 << 20),
                ByteTierSpec::sata_ssd(PolicyKind::MinIo, 1 << 20)
                    .persistent(Arc::clone(fs), "srv-ssd"),
            ]
        };
        let server = Server::new(ServerConfig {
            tiers: tiers(&fs),
            shards: 2,
        })
        .unwrap();
        // Zero DRAM quota: every admission lands in the persistent SSD level.
        let tenant = server.submit(spec("cold", 16, 0)).unwrap();
        run_epochs(&tenant, 1);
        assert!(tenant.resident_bytes() > 0);
        assert_eq!(server.dram_used_bytes(), 0);
        // Crash: the handle is leaked (no departure cleanup runs) and the
        // server is dropped with the SSD manifest still on the VFS.
        std::mem::forget(tenant);
        drop(server);
        let server = Server::new(ServerConfig {
            tiers: tiers(&fs),
            shards: 2,
        })
        .unwrap();
        assert_eq!(server.resident_items(), 16, "SSD tier warmed from disk");
        assert_eq!(server.dram_used_bytes(), 0);
        // Tenant ids restart from zero, so the resubmitted workload lands in
        // its old key window and every fetch hits the warmed tier.
        let tenant = server.submit(spec("cold", 16, 0)).unwrap();
        run_epochs(&tenant, 1);
        assert_eq!(tenant.session().stats().bytes_from_storage(), 0);
        assert!(tenant.session().stats().bytes_from_cache() > 0);
        // A clean departure retires the persisted copies.
        tenant.depart();
        let server2 = Server::new(ServerConfig {
            tiers: tiers(&fs),
            shards: 2,
        })
        .unwrap();
        assert_eq!(server2.resident_items(), 0, "departure cleared the spill");
    }

    #[test]
    fn report_carries_the_tenant_block() {
        let server = Server::new(ServerConfig::minio(1 << 20, 1)).unwrap();
        let t = server.submit(spec("observed", 16, 4096)).unwrap();
        run_epochs(&t, 1);
        let report = t.report();
        assert!(report.to_json().contains("\"tenant\""));
        let tenant = report.tenant.expect("server sessions report tenancy");
        assert_eq!(tenant.name, "observed");
        assert_eq!(tenant.quota_bytes, 4096);
        assert_eq!(tenant.effective_quota_bytes, 4096);
        assert_eq!(tenant.resident_bytes, t.resident_bytes());
        // A standalone session still reports no tenancy.
        assert!(t.session().report().tenant.is_none());
    }
}
