//! The single-job data loader: a drop-in, multi-threaded fetch → prep →
//! collate pipeline over any [`DataSource`].
//!
//! The loader mirrors how PyTorch's DataLoader and DALI behave (several
//! worker threads prefetching and pre-processing minibatches ahead of the
//! consumer, with bounded buffering), but fetches raw items through CoorDL's
//! MinIO cache instead of relying on the OS page cache.

use crate::cache::MinIoByteCache;
use crate::error::CoordlError;
use crate::minibatch::Minibatch;
use crate::stats::LoaderStats;
use crossbeam::channel::{bounded, Receiver, Sender};
use dataset::{minibatches, DataSource, EpochSampler, ItemId};
use prep::ExecutablePipeline;
use std::collections::BTreeMap;
use std::sync::Arc;
use std::thread::JoinHandle;

/// Configuration of a [`DataLoader`].
#[derive(Debug, Clone)]
pub struct DataLoaderConfig {
    /// Samples per minibatch.
    pub batch_size: usize,
    /// Number of worker threads fetching and pre-processing.
    pub num_workers: usize,
    /// Number of prepared minibatches buffered ahead of the consumer.
    pub prefetch_depth: usize,
    /// Seed for the per-epoch shuffle.
    pub seed: u64,
    /// Capacity of the MinIO cache in bytes (0 disables caching).
    pub cache_capacity_bytes: u64,
}

impl Default for DataLoaderConfig {
    fn default() -> Self {
        DataLoaderConfig {
            batch_size: 32,
            num_workers: 2,
            prefetch_depth: 4,
            seed: 0x5EED,
            cache_capacity_bytes: 256 * 1024 * 1024,
        }
    }
}

impl DataLoaderConfig {
    fn validate(&self, dataset_len: u64) -> Result<(), CoordlError> {
        if self.batch_size == 0 {
            return Err(CoordlError::InvalidConfig("batch_size must be > 0".into()));
        }
        if self.num_workers == 0 {
            return Err(CoordlError::InvalidConfig("num_workers must be > 0".into()));
        }
        if dataset_len == 0 {
            return Err(CoordlError::InvalidConfig("dataset is empty".into()));
        }
        Ok(())
    }
}

/// A multi-threaded data loader over a [`DataSource`].
pub struct DataLoader {
    dataset: Arc<dyn DataSource>,
    pipeline: Arc<ExecutablePipeline>,
    cache: Arc<MinIoByteCache>,
    stats: Arc<LoaderStats>,
    config: DataLoaderConfig,
}

impl DataLoader {
    /// Create a loader over `dataset` with the given pre-processing pipeline.
    pub fn new(
        dataset: Arc<dyn DataSource>,
        pipeline: ExecutablePipeline,
        config: DataLoaderConfig,
    ) -> Result<Self, CoordlError> {
        config.validate(dataset.len())?;
        Ok(DataLoader {
            cache: Arc::new(MinIoByteCache::new(config.cache_capacity_bytes)),
            stats: Arc::new(LoaderStats::default()),
            dataset,
            pipeline: Arc::new(pipeline),
            config,
        })
    }

    /// The loader's MinIO cache.
    pub fn cache(&self) -> &MinIoByteCache {
        &self.cache
    }

    /// Cumulative loader statistics.
    pub fn stats(&self) -> &LoaderStats {
        &self.stats
    }

    /// The loader configuration.
    pub fn config(&self) -> &DataLoaderConfig {
        &self.config
    }

    /// Number of minibatches per epoch.
    pub fn batches_per_epoch(&self) -> usize {
        (self.dataset.len() as usize).div_ceil(self.config.batch_size)
    }

    /// Start one epoch, returning an iterator over its prepared minibatches
    /// in training order.
    pub fn epoch(&self, epoch: u64) -> EpochIterator {
        let sampler = EpochSampler::new(self.dataset.len(), self.config.seed);
        let order = sampler.permutation(epoch);
        let batches: Vec<(usize, Vec<ItemId>)> = minibatches(&order, self.config.batch_size)
            .into_iter()
            .enumerate()
            .collect();
        let total = batches.len();

        let (work_tx, work_rx) = bounded::<(usize, Vec<ItemId>)>(total.max(1));
        for b in batches {
            work_tx.send(b).expect("queue sized to hold all batches");
        }
        drop(work_tx);

        let capacity = self.config.prefetch_depth.max(self.config.num_workers * 2);
        let (out_tx, out_rx) = bounded::<Minibatch>(capacity);

        let mut workers = Vec::with_capacity(self.config.num_workers);
        for _ in 0..self.config.num_workers {
            workers.push(spawn_worker(
                epoch,
                Arc::clone(&self.dataset),
                Arc::clone(&self.pipeline),
                Arc::clone(&self.cache),
                Arc::clone(&self.stats),
                work_rx.clone(),
                out_tx.clone(),
            ));
        }
        drop(out_tx);

        EpochIterator {
            rx: out_rx,
            reorder: BTreeMap::new(),
            next: 0,
            total,
            stats: Arc::clone(&self.stats),
            workers,
        }
    }
}

fn spawn_worker(
    epoch: u64,
    dataset: Arc<dyn DataSource>,
    pipeline: Arc<ExecutablePipeline>,
    cache: Arc<MinIoByteCache>,
    stats: Arc<LoaderStats>,
    work_rx: Receiver<(usize, Vec<ItemId>)>,
    out_tx: Sender<Minibatch>,
) -> JoinHandle<()> {
    std::thread::spawn(move || {
        while let Ok((index, items)) = work_rx.recv() {
            let samples = items
                .iter()
                .map(|&item| {
                    let raw = cache.fetch(item, dataset.as_ref(), &stats);
                    stats.record_prepared(1);
                    pipeline.prepare(epoch, item, &raw)
                })
                .collect();
            let mb = Minibatch {
                epoch,
                index,
                samples,
            };
            // The consumer may have been dropped early; that is not an error.
            if out_tx.send(mb).is_err() {
                return;
            }
        }
    })
}

/// Iterator over one epoch's minibatches, delivered in training order.
pub struct EpochIterator {
    rx: Receiver<Minibatch>,
    reorder: BTreeMap<usize, Minibatch>,
    next: usize,
    total: usize,
    stats: Arc<LoaderStats>,
    workers: Vec<JoinHandle<()>>,
}

impl EpochIterator {
    /// Number of minibatches this epoch will deliver.
    pub fn total_batches(&self) -> usize {
        self.total
    }
}

impl Iterator for EpochIterator {
    type Item = Minibatch;

    fn next(&mut self) -> Option<Minibatch> {
        if self.next >= self.total {
            return None;
        }
        loop {
            if let Some(mb) = self.reorder.remove(&self.next) {
                self.next += 1;
                self.stats.record_delivered(mb.len() as u64);
                return Some(mb);
            }
            match self.rx.recv() {
                Ok(mb) => {
                    self.reorder.insert(mb.index, mb);
                }
                Err(_) => return None, // workers gone; epoch incomplete
            }
        }
    }
}

impl Drop for EpochIterator {
    fn drop(&mut self) {
        // Disconnect the output channel so any worker blocked on `send`
        // observes the disconnect and exits, then join them all.
        self.reorder.clear();
        let (_tx, dummy_rx) = bounded::<Minibatch>(1);
        let real_rx = std::mem::replace(&mut self.rx, dummy_rx);
        drop(real_rx);
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dataset::{DatasetSpec, SyntheticItemStore};
    use prep::PrepPipeline;
    use std::collections::HashSet;

    fn make_loader(n_items: u64, cache_bytes: u64, batch: usize) -> DataLoader {
        let spec = DatasetSpec::new("t", n_items, 256, 0.3, 6.0);
        let store = Arc::new(SyntheticItemStore::new(spec, 11));
        let pipeline = ExecutablePipeline::new(PrepPipeline::image_classification(), 6, 99);
        DataLoader::new(
            store,
            pipeline,
            DataLoaderConfig {
                batch_size: batch,
                num_workers: 3,
                prefetch_depth: 4,
                seed: 1,
                cache_capacity_bytes: cache_bytes,
            },
        )
        .expect("valid config")
    }

    #[test]
    fn epoch_visits_every_item_exactly_once() {
        let loader = make_loader(100, 1 << 20, 16);
        let mut seen = Vec::new();
        for mb in loader.epoch(0) {
            seen.extend(mb.item_ids());
        }
        assert_eq!(seen.len(), 100);
        let set: HashSet<_> = seen.iter().collect();
        assert_eq!(set.len(), 100, "each item exactly once per epoch");
    }

    #[test]
    fn minibatches_arrive_in_training_order() {
        let loader = make_loader(64, 1 << 20, 8);
        let indices: Vec<usize> = loader.epoch(0).map(|mb| mb.index).collect();
        assert_eq!(indices, (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn epochs_are_shuffled_differently_but_reproducibly() {
        let loader = make_loader(50, 1 << 20, 10);
        let order0: Vec<_> = loader.epoch(0).flat_map(|mb| mb.item_ids()).collect();
        let order1: Vec<_> = loader.epoch(1).flat_map(|mb| mb.item_ids()).collect();
        let order0_again: Vec<_> = loader.epoch(0).flat_map(|mb| mb.item_ids()).collect();
        assert_ne!(order0, order1);
        assert_eq!(order0, order0_again);
    }

    #[test]
    fn second_epoch_is_served_from_cache_when_it_fits() {
        let loader = make_loader(40, 1 << 20, 8);
        for _ in loader.epoch(0) {}
        let after_first = loader.stats().bytes_from_storage();
        assert!(after_first > 0);
        for _ in loader.epoch(1) {}
        assert_eq!(
            loader.stats().bytes_from_storage(),
            after_first,
            "no further storage reads once the dataset is cached"
        );
        assert!(loader.stats().bytes_from_cache() > 0);
    }

    #[test]
    fn cache_smaller_than_dataset_still_delivers_all_samples() {
        let loader = make_loader(60, 2_000, 8); // ~8 items fit
        let delivered: usize = loader.epoch(0).map(|mb| mb.len()).sum();
        assert_eq!(delivered, 60);
        assert!(loader.cache().used_bytes() <= 2_000);
        let delivered2: usize = loader.epoch(1).map(|mb| mb.len()).sum();
        assert_eq!(delivered2, 60);
    }

    #[test]
    fn augmentations_differ_across_epochs_for_same_item() {
        let loader = make_loader(10, 1 << 20, 10);
        let e0: Vec<_> = loader.epoch(0).collect();
        let e1: Vec<_> = loader.epoch(1).collect();
        let find = |mbs: &[Minibatch], item: ItemId| {
            mbs.iter()
                .flat_map(|m| m.samples.iter())
                .find(|s| s.item == item)
                .cloned()
                .expect("item present")
        };
        let a = find(&e0, 3);
        let b = find(&e1, 3);
        assert_ne!(a.augmentation_seed, b.augmentation_seed);
    }

    #[test]
    fn partial_final_batch() {
        let loader = make_loader(25, 1 << 20, 8);
        let sizes: Vec<usize> = loader.epoch(0).map(|mb| mb.len()).collect();
        assert_eq!(sizes.len(), 4);
        assert_eq!(sizes.iter().sum::<usize>(), 25);
        assert_eq!(*sizes.last().unwrap(), 1);
    }

    #[test]
    fn dropping_iterator_early_does_not_hang_or_panic() {
        let loader = make_loader(200, 1 << 20, 4);
        let mut it = loader.epoch(0);
        let _first = it.next();
        drop(it); // workers must unblock and join
    }

    #[test]
    fn invalid_configs_are_rejected() {
        let spec = DatasetSpec::new("t", 10, 64, 0.0, 6.0);
        let store = Arc::new(SyntheticItemStore::new(spec, 1));
        let pipeline = ExecutablePipeline::new(PrepPipeline::image_classification(), 6, 0);
        let bad = DataLoader::new(
            Arc::clone(&store) as Arc<dyn DataSource>,
            pipeline,
            DataLoaderConfig {
                batch_size: 0,
                ..DataLoaderConfig::default()
            },
        );
        assert!(matches!(bad, Err(CoordlError::InvalidConfig(_))));
    }

    #[test]
    fn stats_count_delivered_samples() {
        let loader = make_loader(30, 1 << 20, 10);
        for _ in loader.epoch(0) {}
        assert_eq!(loader.stats().samples_delivered(), 30);
        assert_eq!(loader.stats().samples_prepared(), 30);
    }
}
