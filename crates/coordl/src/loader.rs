//! The legacy single-job data loader, now a deprecated shim over
//! [`Session`] in [`Mode::Single`](crate::Mode).
//!
//! `DataLoader::new(dataset, pipeline, config)` builds exactly the session
//! `Session::builder(dataset, config.into()).pipeline(pipeline)` would, with
//! the MinIO byte cache as its tier, so the two produce bit-identical batch
//! streams and statistics (pinned by `tests/session_equivalence.rs`).

use crate::cache::MinIoByteCache;
use crate::error::CoordlError;
use crate::executor::OrderedStream;
use crate::minibatch::Minibatch;
use crate::session::{Session, SessionConfig};
use crate::stats::LoaderStats;
use crate::tier::CacheTier;
use dataset::DataSource;
use prep::ExecutablePipeline;
use std::sync::Arc;

/// Configuration of a [`DataLoader`].
#[derive(Debug, Clone)]
pub struct DataLoaderConfig {
    /// Samples per minibatch.
    pub batch_size: usize,
    /// Number of worker threads fetching and pre-processing.
    pub num_workers: usize,
    /// Number of prepared minibatches buffered ahead of the consumer.
    pub prefetch_depth: usize,
    /// Seed for the per-epoch shuffle.
    pub seed: u64,
    /// Capacity of the MinIO cache in bytes (0 disables caching).
    pub cache_capacity_bytes: u64,
}

impl Default for DataLoaderConfig {
    fn default() -> Self {
        DataLoaderConfig {
            batch_size: 32,
            num_workers: 2,
            prefetch_depth: 4,
            seed: 0x5EED,
            cache_capacity_bytes: 256 * 1024 * 1024,
        }
    }
}

impl From<DataLoaderConfig> for SessionConfig {
    fn from(c: DataLoaderConfig) -> SessionConfig {
        SessionConfig {
            batch_size: c.batch_size,
            num_workers: c.num_workers,
            prefetch_depth: c.prefetch_depth,
            seed: c.seed,
            cache_capacity_bytes: c.cache_capacity_bytes,
            ..SessionConfig::default()
        }
    }
}

/// A multi-threaded data loader over a [`DataSource`].
#[deprecated(since = "0.1.0", note = "use coordl::Session with Mode::Single")]
pub struct DataLoader {
    session: Session,
    cache: Arc<MinIoByteCache>,
    config: DataLoaderConfig,
}

#[allow(deprecated)]
impl DataLoader {
    /// Create a loader over `dataset` with the given pre-processing pipeline.
    pub fn new(
        dataset: Arc<dyn DataSource>,
        pipeline: ExecutablePipeline,
        config: DataLoaderConfig,
    ) -> Result<Self, CoordlError> {
        let cache = Arc::new(MinIoByteCache::new(config.cache_capacity_bytes));
        let session = Session::builder(dataset, config.clone().into())
            .pipeline(pipeline)
            .cache_tier(Arc::clone(&cache) as Arc<dyn CacheTier>)
            .build()?;
        Ok(DataLoader {
            session,
            cache,
            config,
        })
    }

    /// The loader's MinIO cache.
    pub fn cache(&self) -> &MinIoByteCache {
        &self.cache
    }

    /// Cumulative loader statistics.
    pub fn stats(&self) -> &LoaderStats {
        self.session.stats()
    }

    /// The loader configuration.
    pub fn config(&self) -> &DataLoaderConfig {
        &self.config
    }

    /// Number of minibatches per epoch.
    pub fn batches_per_epoch(&self) -> usize {
        self.session.batches_per_epoch()
    }

    /// Start one epoch, returning an iterator over its prepared minibatches
    /// in training order.
    pub fn epoch(&self, epoch: u64) -> EpochIterator {
        EpochIterator {
            inner: self.session.raw_single_epoch(epoch),
        }
    }
}

/// Iterator over one epoch's minibatches, delivered in training order.
#[deprecated(since = "0.1.0", note = "use coordl::BatchStream via Session::epoch")]
pub struct EpochIterator {
    inner: OrderedStream,
}

#[allow(deprecated)]
impl EpochIterator {
    /// Number of minibatches this epoch will deliver.
    pub fn total_batches(&self) -> usize {
        self.inner.total_batches()
    }
}

#[allow(deprecated)]
impl Iterator for EpochIterator {
    type Item = Minibatch;

    fn next(&mut self) -> Option<Minibatch> {
        self.inner.next()
    }
}

#[cfg(test)]
#[allow(deprecated)]
mod tests {
    use super::*;
    use dataset::{DatasetSpec, ItemId, SyntheticItemStore};
    use prep::PrepPipeline;
    use std::collections::HashSet;

    fn make_loader(n_items: u64, cache_bytes: u64, batch: usize) -> DataLoader {
        let spec = DatasetSpec::new("t", n_items, 256, 0.3, 6.0);
        let store = Arc::new(SyntheticItemStore::new(spec, 11));
        let pipeline = ExecutablePipeline::new(PrepPipeline::image_classification(), 6, 99);
        DataLoader::new(
            store,
            pipeline,
            DataLoaderConfig {
                batch_size: batch,
                num_workers: 3,
                prefetch_depth: 4,
                seed: 1,
                cache_capacity_bytes: cache_bytes,
            },
        )
        .expect("valid config")
    }

    #[test]
    fn epoch_visits_every_item_exactly_once() {
        let loader = make_loader(100, 1 << 20, 16);
        let mut seen = Vec::new();
        for mb in loader.epoch(0) {
            seen.extend(mb.item_ids());
        }
        assert_eq!(seen.len(), 100);
        let set: HashSet<_> = seen.iter().collect();
        assert_eq!(set.len(), 100, "each item exactly once per epoch");
    }

    #[test]
    fn minibatches_arrive_in_training_order() {
        let loader = make_loader(64, 1 << 20, 8);
        let indices: Vec<usize> = loader.epoch(0).map(|mb| mb.index).collect();
        assert_eq!(indices, (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn epochs_are_shuffled_differently_but_reproducibly() {
        let loader = make_loader(50, 1 << 20, 10);
        let order0: Vec<_> = loader.epoch(0).flat_map(|mb| mb.item_ids()).collect();
        let order1: Vec<_> = loader.epoch(1).flat_map(|mb| mb.item_ids()).collect();
        let order0_again: Vec<_> = loader.epoch(0).flat_map(|mb| mb.item_ids()).collect();
        assert_ne!(order0, order1);
        assert_eq!(order0, order0_again);
    }

    #[test]
    fn second_epoch_is_served_from_cache_when_it_fits() {
        let loader = make_loader(40, 1 << 20, 8);
        for _ in loader.epoch(0) {}
        let after_first = loader.stats().bytes_from_storage();
        assert!(after_first > 0);
        for _ in loader.epoch(1) {}
        assert_eq!(
            loader.stats().bytes_from_storage(),
            after_first,
            "no further storage reads once the dataset is cached"
        );
        assert!(loader.stats().bytes_from_cache() > 0);
    }

    #[test]
    fn cache_smaller_than_dataset_still_delivers_all_samples() {
        let loader = make_loader(60, 2_000, 8); // ~8 items fit
        let delivered: usize = loader.epoch(0).map(|mb| mb.len()).sum();
        assert_eq!(delivered, 60);
        assert!(loader.cache().used_bytes() <= 2_000);
        let delivered2: usize = loader.epoch(1).map(|mb| mb.len()).sum();
        assert_eq!(delivered2, 60);
    }

    #[test]
    fn augmentations_differ_across_epochs_for_same_item() {
        let loader = make_loader(10, 1 << 20, 10);
        let e0: Vec<_> = loader.epoch(0).collect();
        let e1: Vec<_> = loader.epoch(1).collect();
        let find = |mbs: &[Minibatch], item: ItemId| {
            mbs.iter()
                .flat_map(|m| m.samples.iter())
                .find(|s| s.item == item)
                .cloned()
                .expect("item present")
        };
        let a = find(&e0, 3);
        let b = find(&e1, 3);
        assert_ne!(a.augmentation_seed, b.augmentation_seed);
    }

    #[test]
    fn partial_final_batch() {
        let loader = make_loader(25, 1 << 20, 8);
        let sizes: Vec<usize> = loader.epoch(0).map(|mb| mb.len()).collect();
        assert_eq!(sizes.len(), 4);
        assert_eq!(sizes.iter().sum::<usize>(), 25);
        assert_eq!(*sizes.last().unwrap(), 1);
    }

    #[test]
    fn dropping_iterator_early_does_not_hang_or_panic() {
        let loader = make_loader(200, 1 << 20, 4);
        let mut it = loader.epoch(0);
        let _first = it.next();
        drop(it); // workers must unblock and join
    }

    #[test]
    fn invalid_configs_are_rejected() {
        let spec = DatasetSpec::new("t", 10, 64, 0.0, 6.0);
        let store = Arc::new(SyntheticItemStore::new(spec, 1));
        let pipeline = ExecutablePipeline::new(PrepPipeline::image_classification(), 6, 0);
        let bad = DataLoader::new(
            Arc::clone(&store) as Arc<dyn DataSource>,
            pipeline,
            DataLoaderConfig {
                batch_size: 0,
                ..DataLoaderConfig::default()
            },
        );
        assert!(matches!(bad, Err(CoordlError::InvalidConfig(_))));
    }

    #[test]
    fn stats_count_delivered_samples() {
        let loader = make_loader(30, 1 << 20, 10);
        for _ in loader.epoch(0) {}
        assert_eq!(loader.stats().samples_delivered(), 30);
        assert_eq!(loader.stats().samples_prepared(), 30);
    }
}
