//! Prepared minibatches.

use dataset::ItemId;
use prep::PreparedSample;

/// A fully prepared minibatch, ready for consumption by the training loop.
#[derive(Debug, Clone, PartialEq)]
pub struct Minibatch {
    /// Epoch this minibatch belongs to.
    pub epoch: u64,
    /// Index of the minibatch within the epoch (0-based, in training order).
    pub index: usize,
    /// The prepared samples, in the order dictated by the epoch permutation.
    pub samples: Vec<PreparedSample>,
}

impl Minibatch {
    /// Number of samples in the minibatch.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True when the minibatch holds no samples.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// The item ids of the samples, in order.
    pub fn item_ids(&self) -> Vec<ItemId> {
        self.samples.iter().map(|s| s.item).collect()
    }

    /// Total prepared payload size in bytes (used for staging-area memory
    /// accounting).
    pub fn payload_bytes(&self) -> u64 {
        self.samples.iter().map(|s| s.data.len() as u64).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(item: u64, len: usize) -> PreparedSample {
        PreparedSample {
            item,
            epoch: 0,
            augmentation_seed: 0,
            data: vec![0u8; len],
        }
    }

    #[test]
    fn accessors() {
        let mb = Minibatch {
            epoch: 1,
            index: 3,
            samples: vec![sample(10, 4), sample(11, 6)],
        };
        assert_eq!(mb.len(), 2);
        assert!(!mb.is_empty());
        assert_eq!(mb.item_ids(), vec![10, 11]);
        assert_eq!(mb.payload_bytes(), 10);
    }

    #[test]
    fn empty_minibatch() {
        let mb = Minibatch {
            epoch: 0,
            index: 0,
            samples: vec![],
        };
        assert!(mb.is_empty());
        assert_eq!(mb.payload_bytes(), 0);
    }
}
