//! Loader statistics (atomic, shared across worker threads).

use std::sync::atomic::{AtomicU64, Ordering};

/// Counters describing where a loader's bytes came from and how much work it
/// performed.  All counters are monotone and thread-safe.
#[derive(Debug, Default)]
pub struct LoaderStats {
    bytes_from_storage: AtomicU64,
    bytes_from_cache: AtomicU64,
    bytes_from_remote: AtomicU64,
    samples_prepared: AtomicU64,
    samples_delivered: AtomicU64,
}

impl LoaderStats {
    /// Record `bytes` read from the storage tier.
    pub fn record_storage_read(&self, bytes: u64) {
        self.bytes_from_storage.fetch_add(bytes, Ordering::Relaxed);
    }

    /// Record `bytes` served from the local cache.
    pub fn record_cache_read(&self, bytes: u64) {
        self.bytes_from_cache.fetch_add(bytes, Ordering::Relaxed);
    }

    /// Record `bytes` served from a remote server's cache.
    pub fn record_remote_read(&self, bytes: u64) {
        self.bytes_from_remote.fetch_add(bytes, Ordering::Relaxed);
    }

    /// Record that `n` samples were pre-processed.
    pub fn record_prepared(&self, n: u64) {
        self.samples_prepared.fetch_add(n, Ordering::Relaxed);
    }

    /// Record that `n` samples were delivered to a consumer.
    pub fn record_delivered(&self, n: u64) {
        self.samples_delivered.fetch_add(n, Ordering::Relaxed);
    }

    /// Bytes read from storage so far.
    pub fn bytes_from_storage(&self) -> u64 {
        self.bytes_from_storage.load(Ordering::Relaxed)
    }

    /// Bytes served from the cache so far.
    pub fn bytes_from_cache(&self) -> u64 {
        self.bytes_from_cache.load(Ordering::Relaxed)
    }

    /// Bytes served from remote caches so far.
    pub fn bytes_from_remote(&self) -> u64 {
        self.bytes_from_remote.load(Ordering::Relaxed)
    }

    /// Samples pre-processed so far.
    pub fn samples_prepared(&self) -> u64 {
        self.samples_prepared.load(Ordering::Relaxed)
    }

    /// Samples delivered to consumers so far.
    pub fn samples_delivered(&self) -> u64 {
        self.samples_delivered.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn counters_accumulate() {
        let s = LoaderStats::default();
        s.record_storage_read(10);
        s.record_storage_read(5);
        s.record_cache_read(7);
        s.record_remote_read(3);
        s.record_prepared(2);
        s.record_delivered(4);
        assert_eq!(s.bytes_from_storage(), 15);
        assert_eq!(s.bytes_from_cache(), 7);
        assert_eq!(s.bytes_from_remote(), 3);
        assert_eq!(s.samples_prepared(), 2);
        assert_eq!(s.samples_delivered(), 4);
    }

    #[test]
    fn concurrent_updates_do_not_lose_counts() {
        let s = Arc::new(LoaderStats::default());
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let s = Arc::clone(&s);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        s.record_prepared(1);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(s.samples_prepared(), 4000);
    }
}
