//! Loader statistics (atomic, shared across worker threads).

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Counters describing where a loader's bytes came from and how much work it
/// performed.  All counters are monotone and thread-safe.
///
/// The byte and sample counters are *deterministic*: the prefetching
/// executor performs every cache transaction sequentially in plan order, so
/// they are a pure function of the workload regardless of worker count or
/// prefetch depth.  The stage-timing counters (`*_seconds`) are wall-clock
/// measurements summed across all threads of a stage and naturally vary run
/// to run — they describe where time went (fetch vs prep vs consumer wait),
/// not what was computed.
#[derive(Debug, Default)]
pub struct LoaderStats {
    bytes_from_storage: AtomicU64,
    bytes_from_cache: AtomicU64,
    bytes_from_lower_tiers: AtomicU64,
    bytes_from_remote: AtomicU64,
    samples_prepared: AtomicU64,
    samples_delivered: AtomicU64,
    fetch_busy_nanos: AtomicU64,
    fetch_stall_nanos: AtomicU64,
    prep_busy_nanos: AtomicU64,
    prep_stall_nanos: AtomicU64,
    consumer_wait_nanos: AtomicU64,
    /// Per-fetch-thread `[busy, stall]` nanos, indexed by pool thread.  A
    /// serial session records everything under thread 0; a `fetch_threads(f)`
    /// pool records one row per thread, so reports can show how evenly the
    /// shard-ownership partition spreads fetch work.  Grown on demand — the
    /// recording path is per-batch, not per-item, so a mutex is fine.
    fetch_thread_nanos: std::sync::Mutex<Vec<[u64; 2]>>,
}

impl LoaderStats {
    /// Record `bytes` read from the storage tier.
    pub fn record_storage_read(&self, bytes: u64) {
        self.bytes_from_storage.fetch_add(bytes, Ordering::Relaxed);
    }

    /// Record `bytes` served from the local cache.
    pub fn record_cache_read(&self, bytes: u64) {
        self.bytes_from_cache.fetch_add(bytes, Ordering::Relaxed);
    }

    /// Record `bytes` served from a remote server's cache.
    pub fn record_remote_read(&self, bytes: u64) {
        self.bytes_from_remote.fetch_add(bytes, Ordering::Relaxed);
    }

    /// Record that `bytes` of a cache read were served by a tier below DRAM
    /// (call *in addition to* [`LoaderStats::record_cache_read`]: lower-tier
    /// bytes are a subset of cache bytes).
    pub fn record_lower_tier_read(&self, bytes: u64) {
        self.bytes_from_lower_tiers
            .fetch_add(bytes, Ordering::Relaxed);
    }

    /// Record that `n` samples were pre-processed.
    pub fn record_prepared(&self, n: u64) {
        self.samples_prepared.fetch_add(n, Ordering::Relaxed);
    }

    /// Record that `n` samples were delivered to a consumer.
    pub fn record_delivered(&self, n: u64) {
        self.samples_delivered.fetch_add(n, Ordering::Relaxed);
    }

    /// Bytes read from storage so far.
    pub fn bytes_from_storage(&self) -> u64 {
        self.bytes_from_storage.load(Ordering::Relaxed)
    }

    /// Bytes served from the cache so far.
    pub fn bytes_from_cache(&self) -> u64 {
        self.bytes_from_cache.load(Ordering::Relaxed)
    }

    /// Bytes served from remote caches so far.
    pub fn bytes_from_remote(&self) -> u64 {
        self.bytes_from_remote.load(Ordering::Relaxed)
    }

    /// Of [`LoaderStats::bytes_from_cache`], the bytes served by cache tiers
    /// below DRAM (zero for flat tiers).
    pub fn bytes_from_lower_tiers(&self) -> u64 {
        self.bytes_from_lower_tiers.load(Ordering::Relaxed)
    }

    /// Samples pre-processed so far.
    pub fn samples_prepared(&self) -> u64 {
        self.samples_prepared.load(Ordering::Relaxed)
    }

    /// Samples delivered to consumers so far.
    pub fn samples_delivered(&self) -> u64 {
        self.samples_delivered.load(Ordering::Relaxed)
    }

    /// Record time the fetch stage spent reading tiers and backends.
    pub fn record_fetch_busy(&self, d: Duration) {
        self.fetch_busy_nanos
            .fetch_add(d.as_nanos() as u64, Ordering::Relaxed);
    }

    /// Record time the fetch stage spent blocked on a full prefetch queue.
    pub fn record_fetch_stall(&self, d: Duration) {
        self.fetch_stall_nanos
            .fetch_add(d.as_nanos() as u64, Ordering::Relaxed);
    }

    /// Record time a prep worker spent pre-processing.
    pub fn record_prep_busy(&self, d: Duration) {
        self.prep_busy_nanos
            .fetch_add(d.as_nanos() as u64, Ordering::Relaxed);
    }

    /// Record time a prep worker spent blocked on its queues: waiting for
    /// fetched batches, or publishing into a backed-up consumer/staging
    /// window.
    pub fn record_prep_stall(&self, d: Duration) {
        self.prep_stall_nanos
            .fetch_add(d.as_nanos() as u64, Ordering::Relaxed);
    }

    /// Record fetch-stage busy time attributed to pool thread `thread`
    /// (also accumulates into the aggregate fetch-busy counter).
    pub fn record_fetch_busy_for(&self, thread: usize, d: Duration) {
        self.record_fetch_busy(d);
        self.fetch_thread_add(thread, 0, d);
    }

    /// Record fetch-stage stall time attributed to pool thread `thread`
    /// (also accumulates into the aggregate fetch-stall counter).
    pub fn record_fetch_stall_for(&self, thread: usize, d: Duration) {
        self.record_fetch_stall(d);
        self.fetch_thread_add(thread, 1, d);
    }

    fn fetch_thread_add(&self, thread: usize, slot: usize, d: Duration) {
        let mut rows = self
            .fetch_thread_nanos
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if rows.len() <= thread {
            rows.resize(thread + 1, [0, 0]);
        }
        rows[thread][slot] += d.as_nanos() as u64;
    }

    /// Per-fetch-thread busy seconds, indexed by pool thread (one entry for
    /// serial sessions; empty before the first fetch records).
    pub fn fetch_thread_busy_seconds(&self) -> Vec<f64> {
        self.fetch_thread_seconds(0)
    }

    /// Per-fetch-thread stall seconds (queue backpressure plus, for a pool
    /// thread, time parked on the prefetch window).
    pub fn fetch_thread_stall_seconds(&self) -> Vec<f64> {
        self.fetch_thread_seconds(1)
    }

    fn fetch_thread_seconds(&self, slot: usize) -> Vec<f64> {
        self.fetch_thread_nanos
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .iter()
            .map(|row| row[slot] as f64 / 1e9)
            .collect()
    }

    /// Record time a consumer spent waiting for the next minibatch.
    pub fn record_consumer_wait(&self, d: Duration) {
        self.consumer_wait_nanos
            .fetch_add(d.as_nanos() as u64, Ordering::Relaxed);
    }

    /// Seconds the fetch stage spent reading, summed across epochs.
    pub fn fetch_busy_seconds(&self) -> f64 {
        self.fetch_busy_nanos.load(Ordering::Relaxed) as f64 / 1e9
    }

    /// Seconds the fetch stage spent blocked on prep backpressure.
    pub fn fetch_stall_seconds(&self) -> f64 {
        self.fetch_stall_nanos.load(Ordering::Relaxed) as f64 / 1e9
    }

    /// Seconds prep workers spent pre-processing, summed across workers.
    pub fn prep_busy_seconds(&self) -> f64 {
        self.prep_busy_nanos.load(Ordering::Relaxed) as f64 / 1e9
    }

    /// Seconds prep workers spent blocked on their queues (starved for
    /// fetches or backed up downstream), summed across workers.
    pub fn prep_stall_seconds(&self) -> f64 {
        self.prep_stall_nanos.load(Ordering::Relaxed) as f64 / 1e9
    }

    /// Seconds consumers spent waiting for minibatches, summed across
    /// consumer threads.
    pub fn consumer_wait_seconds(&self) -> f64 {
        self.consumer_wait_nanos.load(Ordering::Relaxed) as f64 / 1e9
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn counters_accumulate() {
        let s = LoaderStats::default();
        s.record_storage_read(10);
        s.record_storage_read(5);
        s.record_cache_read(7);
        s.record_remote_read(3);
        s.record_prepared(2);
        s.record_delivered(4);
        assert_eq!(s.bytes_from_storage(), 15);
        assert_eq!(s.bytes_from_cache(), 7);
        assert_eq!(s.bytes_from_remote(), 3);
        assert_eq!(s.samples_prepared(), 2);
        assert_eq!(s.samples_delivered(), 4);
    }

    #[test]
    fn stage_timings_accumulate_in_seconds() {
        let s = LoaderStats::default();
        s.record_fetch_busy(Duration::from_millis(500));
        s.record_fetch_busy(Duration::from_millis(250));
        s.record_fetch_stall(Duration::from_millis(100));
        s.record_prep_busy(Duration::from_secs(2));
        s.record_prep_stall(Duration::from_millis(40));
        s.record_consumer_wait(Duration::from_millis(10));
        assert!((s.fetch_busy_seconds() - 0.75).abs() < 1e-9);
        assert!((s.fetch_stall_seconds() - 0.1).abs() < 1e-9);
        assert!((s.prep_busy_seconds() - 2.0).abs() < 1e-9);
        assert!((s.prep_stall_seconds() - 0.04).abs() < 1e-9);
        assert!((s.consumer_wait_seconds() - 0.01).abs() < 1e-9);
    }

    #[test]
    fn per_fetch_thread_timings_split_the_aggregate() {
        let s = LoaderStats::default();
        assert!(s.fetch_thread_busy_seconds().is_empty(), "nothing recorded");
        s.record_fetch_busy_for(0, Duration::from_millis(100));
        s.record_fetch_busy_for(2, Duration::from_millis(300));
        s.record_fetch_stall_for(1, Duration::from_millis(50));
        let busy = s.fetch_thread_busy_seconds();
        let stall = s.fetch_thread_stall_seconds();
        assert_eq!(busy.len(), 3, "grown to the highest recorded thread");
        assert!((busy[0] - 0.1).abs() < 1e-9);
        assert!((busy[1]).abs() < 1e-9, "thread 1 never fetched");
        assert!((busy[2] - 0.3).abs() < 1e-9);
        assert!((stall[1] - 0.05).abs() < 1e-9);
        // The aggregate counters see the same time: per-thread rows are a
        // decomposition, not a separate clock.
        assert!((s.fetch_busy_seconds() - 0.4).abs() < 1e-9);
        assert!((s.fetch_stall_seconds() - 0.05).abs() < 1e-9);
    }

    #[test]
    fn concurrent_updates_do_not_lose_counts() {
        let s = Arc::new(LoaderStats::default());
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let s = Arc::clone(&s);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        s.record_prepared(1);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(s.samples_prepared(), 4000);
    }
}
