//! The unified runtime report every [`Session`](crate::Session) produces.
//!
//! [`LoaderReport`] is the runtime counterpart of the simulator's
//! `pipeline::SimReport`: cache hits and misses, byte provenance, modelled
//! device time, staging occupancy and per-epoch trajectories, serialised
//! through the *same* `pipeline::json` emitter so the two documents are
//! structurally comparable — which is what lets `dstool validate` diff
//! predicted against empirical behaviour (Table 5 / Figure 16 methodology).

use pipeline::json::{write_f64, write_string, write_u64_array};

/// Counter deltas observed over one epoch of a session.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct EpochTrajectory {
    /// Epoch index.
    pub epoch: u64,
    /// Bytes read from the fetch backend (storage).
    pub bytes_from_storage: u64,
    /// Bytes served from local cache tiers.
    pub bytes_from_cache: u64,
    /// Of `bytes_from_cache`, the bytes served by tiers below DRAM (the
    /// local-SSD level of a tiered session; zero for flat tiers).
    pub bytes_from_lower_tiers: u64,
    /// Bytes served from remote peers (partitioned mode only).
    pub bytes_from_remote: u64,
    /// Samples pre-processed.
    pub samples_prepared: u64,
    /// Samples delivered to consumers.
    pub samples_delivered: u64,
    /// Cache-tier hits (local + remote).
    pub cache_hits: u64,
    /// Cache-tier misses (reads that fell through to the backend).
    pub cache_misses: u64,
    /// Of `cache_hits`, the hits served by tiers below DRAM.
    pub lower_tier_hits: u64,
    /// Modelled device busy time for this epoch's backend reads, in seconds
    /// (0 with an unprofiled backend).
    pub device_seconds: f64,
    /// Staging-area high-water mark in bytes (coordinated mode only).
    pub staging_peak_bytes: u64,
    /// Minibatches published to the staging area (coordinated mode only).
    pub staging_published: u64,
    /// Minibatches fully consumed and evicted (coordinated mode only).
    pub staging_evicted: u64,
    /// Wall seconds the fetch thread spent reading tiers and backends.
    pub fetch_busy_seconds: f64,
    /// Wall seconds the fetch thread spent blocked on prep backpressure.
    pub fetch_stall_seconds: f64,
    /// Wall seconds prep workers spent pre-processing (summed across the
    /// pool, so this can exceed the epoch's wall time).
    pub prep_busy_seconds: f64,
    /// Wall seconds prep workers spent blocked on their queues — starved
    /// for fetched batches, or publishing into a backed-up consumer /
    /// staging window (summed across the pool).
    pub prep_stall_seconds: f64,
    /// Wall seconds consumers spent waiting for the next minibatch (summed
    /// across consumer threads) — the runtime analogue of the simulator's
    /// data-stall time.
    pub consumer_wait_seconds: f64,
}

impl EpochTrajectory {
    /// Cache hit ratio over fetches this epoch (0 when there were none).
    pub fn hit_ratio(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }

    /// Hit ratio of the DRAM (topmost) cache level over fetches this epoch.
    pub fn dram_hit_ratio(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            (self.cache_hits - self.lower_tier_hits) as f64 / total as f64
        }
    }

    /// Hit ratio of the cache levels below DRAM over fetches this epoch
    /// (zero for flat tiers).
    pub fn lower_tier_hit_ratio(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            self.lower_tier_hits as f64 / total as f64
        }
    }
}

/// Per-tenant accounting attached to a [`LoaderReport`] when the session ran
/// under a multi-tenant [`Server`](crate::Server).
///
/// `None` for standalone sessions, so every existing report (and its JSON
/// document) is unchanged; a server-held session additionally records how
/// much of the shared hierarchy this tenant occupies and what DRAM quota it
/// was granted after fair-share scaling.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantReport {
    /// Tenant name as given at submission.
    pub name: String,
    /// Requested DRAM-tier quota in bytes.
    pub quota_bytes: u64,
    /// Quota actually granted after fair-share scaling (== `quota_bytes`
    /// unless the active tenants oversubscribe the DRAM tier).
    pub effective_quota_bytes: u64,
    /// Bytes this tenant currently holds in the DRAM tier.
    pub dram_resident_bytes: u64,
    /// Bytes this tenant currently holds across all shared tiers.
    pub resident_bytes: u64,
}

/// The unified result of running a [`Session`](crate::Session): totals plus
/// the per-epoch trajectories recorded as epochs were run.
#[derive(Debug, Clone, PartialEq)]
pub struct LoaderReport {
    /// Session mode name (`single` / `coordinated` / `partitioned`).
    pub mode: &'static str,
    /// Number of jobs (coordinated) or nodes (partitioned); 1 for single.
    pub jobs: usize,
    /// Cache replacement policy of the tier(s).
    pub cache_policy: &'static str,
    /// Fetch-backend name (`direct` or a device-profile name).
    pub backend: &'static str,
    /// Total cache capacity across tiers, in bytes.
    pub cache_capacity_bytes: u64,
    /// Bytes currently resident across tiers.
    pub cache_used_bytes: u64,
    /// Items currently resident across tiers.
    pub cache_resident_items: usize,
    /// Cumulative bytes read from the backend.
    pub bytes_from_storage: u64,
    /// Cumulative bytes served from cache tiers.
    pub bytes_from_cache: u64,
    /// Of `bytes_from_cache`, the cumulative bytes served by tiers below
    /// DRAM.
    pub bytes_from_lower_tiers: u64,
    /// Cumulative bytes served from remote peers.
    pub bytes_from_remote: u64,
    /// Cumulative samples pre-processed.
    pub samples_prepared: u64,
    /// Cumulative samples delivered.
    pub samples_delivered: u64,
    /// Cumulative cache hits.
    pub cache_hits: u64,
    /// Cumulative cache misses.
    pub cache_misses: u64,
    /// Of `cache_hits`, the cumulative hits served by tiers below DRAM.
    pub lower_tier_hits: u64,
    /// Cumulative modelled device busy seconds.
    pub device_seconds: f64,
    /// Cumulative *measured* wall-clock seconds the backend spent in real
    /// I/O (0 for purely modelled backends; nonzero with
    /// [`FsBackend`](crate::FsBackend), which reports both so modelled and
    /// measured time can be compared side by side).
    pub measured_device_seconds: f64,
    /// Cumulative wall seconds the fetch stage spent reading.
    pub fetch_busy_seconds: f64,
    /// Cumulative wall seconds the fetch stage spent blocked on prep
    /// backpressure.
    pub fetch_stall_seconds: f64,
    /// Cumulative wall seconds prep workers spent pre-processing.
    pub prep_busy_seconds: f64,
    /// Cumulative wall seconds prep workers spent blocked on their queues.
    pub prep_stall_seconds: f64,
    /// Cumulative wall seconds consumers spent waiting for minibatches.
    pub consumer_wait_seconds: f64,
    /// Per-fetch-thread breakdown of `fetch_busy_seconds`, indexed by pool
    /// slot.  One entry (slot 0) for the default serial fetch stage; one per
    /// thread for a `fetch_threads(f)` session, so skew across the sharded
    /// pool is visible in the report.
    pub fetch_thread_busy_seconds: Vec<f64>,
    /// Per-fetch-thread breakdown of `fetch_stall_seconds`, indexed by pool
    /// slot (same layout as `fetch_thread_busy_seconds`).
    pub fetch_thread_stall_seconds: Vec<f64>,
    /// Per-epoch counter deltas, in the order epochs were run.
    pub epochs: Vec<EpochTrajectory>,
    /// Multi-tenant accounting; `None` unless the session ran under a
    /// [`Server`](crate::Server).
    pub tenant: Option<TenantReport>,
}

impl LoaderReport {
    /// Overall cache hit ratio (0 when nothing was fetched).
    pub fn hit_ratio(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }

    /// The steady-state epochs: everything after the cold-cache warm-up
    /// epoch (all epochs when only one was run).
    pub fn steady_epochs(&self) -> &[EpochTrajectory] {
        if self.epochs.len() > 1 {
            &self.epochs[1..]
        } else {
            &self.epochs
        }
    }

    /// Average steady-state hit ratio (the paper averages epochs after the
    /// first, §3.1).
    pub fn steady_hit_ratio(&self) -> f64 {
        let tail = self.steady_epochs();
        if tail.is_empty() {
            return 0.0;
        }
        tail.iter().map(EpochTrajectory::hit_ratio).sum::<f64>() / tail.len() as f64
    }

    /// Average steady-state hit ratio of the DRAM (topmost) cache level.
    pub fn steady_dram_hit_ratio(&self) -> f64 {
        let tail = self.steady_epochs();
        if tail.is_empty() {
            return 0.0;
        }
        tail.iter()
            .map(EpochTrajectory::dram_hit_ratio)
            .sum::<f64>()
            / tail.len() as f64
    }

    /// Average steady-state hit ratio of the cache levels below DRAM (zero
    /// for flat tiers).
    pub fn steady_lower_tier_hit_ratio(&self) -> f64 {
        let tail = self.steady_epochs();
        if tail.is_empty() {
            return 0.0;
        }
        tail.iter()
            .map(EpochTrajectory::lower_tier_hit_ratio)
            .sum::<f64>()
            / tail.len() as f64
    }

    /// Average steady-state bytes read from storage per epoch.
    pub fn steady_storage_bytes(&self) -> f64 {
        let tail = self.steady_epochs();
        if tail.is_empty() {
            return 0.0;
        }
        tail.iter()
            .map(|e| e.bytes_from_storage as f64)
            .sum::<f64>()
            / tail.len() as f64
    }

    /// Average steady-state modelled device seconds per epoch.
    pub fn steady_device_seconds(&self) -> f64 {
        let tail = self.steady_epochs();
        if tail.is_empty() {
            return 0.0;
        }
        tail.iter().map(|e| e.device_seconds).sum::<f64>() / tail.len() as f64
    }

    /// Average steady-state consumer-wait seconds per epoch (the runtime's
    /// measured data-stall analogue, compared informationally against the
    /// simulator's stall predictions by `dstool validate`).
    pub fn steady_consumer_wait_seconds(&self) -> f64 {
        let tail = self.steady_epochs();
        if tail.is_empty() {
            return 0.0;
        }
        tail.iter().map(|e| e.consumer_wait_seconds).sum::<f64>() / tail.len() as f64
    }

    /// Serialise the report as a JSON object through the shared
    /// `pipeline::json` emitter, mirroring `SimReport::to_json`'s layout
    /// (`disk_bytes_per_epoch`, `remote_bytes_per_epoch`, per-epoch records)
    /// so simulator and runtime documents diff cleanly.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(2048);
        out.push_str("{\"kind\":\"loader-report\",\"mode\":");
        write_string(&mut out, self.mode);
        out.push_str(",\"unit_kind\":\"job\",\"jobs\":");
        out.push_str(&self.jobs.to_string());
        out.push_str(",\"cache_policy\":");
        write_string(&mut out, self.cache_policy);
        out.push_str(",\"backend\":");
        write_string(&mut out, self.backend);
        out.push_str(",\"cache_capacity_bytes\":");
        out.push_str(&self.cache_capacity_bytes.to_string());
        out.push_str(",\"cache_used_bytes\":");
        out.push_str(&self.cache_used_bytes.to_string());
        out.push_str(",\"cache_resident_items\":");
        out.push_str(&self.cache_resident_items.to_string());
        out.push_str(",\"epochs\":");
        out.push_str(&self.epochs.len().to_string());
        out.push_str(",\"disk_bytes_per_epoch\":");
        let disk: Vec<u64> = self.epochs.iter().map(|e| e.bytes_from_storage).collect();
        write_u64_array(&mut out, &disk);
        out.push_str(",\"remote_bytes_per_epoch\":");
        let remote: Vec<u64> = self.epochs.iter().map(|e| e.bytes_from_remote).collect();
        write_u64_array(&mut out, &remote);
        out.push_str(",\"hit_ratio\":");
        write_f64(&mut out, self.hit_ratio());
        out.push_str(",\"cache_hits\":");
        out.push_str(&self.cache_hits.to_string());
        out.push_str(",\"cache_misses\":");
        out.push_str(&self.cache_misses.to_string());
        out.push_str(",\"bytes_from_lower_tiers\":");
        out.push_str(&self.bytes_from_lower_tiers.to_string());
        out.push_str(",\"lower_tier_hits\":");
        out.push_str(&self.lower_tier_hits.to_string());
        out.push_str(",\"samples_prepared\":");
        out.push_str(&self.samples_prepared.to_string());
        out.push_str(",\"samples_delivered\":");
        out.push_str(&self.samples_delivered.to_string());
        out.push_str(",\"device_seconds\":");
        write_f64(&mut out, self.device_seconds);
        out.push_str(",\"measured_device_seconds\":");
        write_f64(&mut out, self.measured_device_seconds);
        out.push_str(",\"fetch_busy_seconds\":");
        write_f64(&mut out, self.fetch_busy_seconds);
        out.push_str(",\"fetch_stall_seconds\":");
        write_f64(&mut out, self.fetch_stall_seconds);
        out.push_str(",\"prep_busy_seconds\":");
        write_f64(&mut out, self.prep_busy_seconds);
        out.push_str(",\"prep_stall_seconds\":");
        write_f64(&mut out, self.prep_stall_seconds);
        out.push_str(",\"consumer_wait_seconds\":");
        write_f64(&mut out, self.consumer_wait_seconds);
        out.push_str(",\"fetch_thread_busy_seconds\":");
        write_f64_array(&mut out, &self.fetch_thread_busy_seconds);
        out.push_str(",\"fetch_thread_stall_seconds\":");
        write_f64_array(&mut out, &self.fetch_thread_stall_seconds);
        if let Some(tenant) = &self.tenant {
            out.push_str(",\"tenant\":{\"name\":");
            write_string(&mut out, &tenant.name);
            out.push_str(",\"quota_bytes\":");
            out.push_str(&tenant.quota_bytes.to_string());
            out.push_str(",\"effective_quota_bytes\":");
            out.push_str(&tenant.effective_quota_bytes.to_string());
            out.push_str(",\"dram_resident_bytes\":");
            out.push_str(&tenant.dram_resident_bytes.to_string());
            out.push_str(",\"resident_bytes\":");
            out.push_str(&tenant.resident_bytes.to_string());
            out.push('}');
        }
        out.push_str(",\"trajectories\":[");
        for (i, e) in self.epochs.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            epoch_trajectory_json(&mut out, e);
        }
        out.push_str("]}");
        out
    }
}

fn write_f64_array(out: &mut String, values: &[f64]) {
    out.push('[');
    for (i, v) in values.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        write_f64(out, *v);
    }
    out.push(']');
}

fn epoch_trajectory_json(out: &mut String, e: &EpochTrajectory) {
    out.push_str("{\"epoch\":");
    out.push_str(&e.epoch.to_string());
    out.push_str(",\"bytes_from_cache\":");
    out.push_str(&e.bytes_from_cache.to_string());
    out.push_str(",\"bytes_from_disk\":");
    out.push_str(&e.bytes_from_storage.to_string());
    out.push_str(",\"bytes_from_remote\":");
    out.push_str(&e.bytes_from_remote.to_string());
    out.push_str(",\"cache_hits\":");
    out.push_str(&e.cache_hits.to_string());
    out.push_str(",\"cache_misses\":");
    out.push_str(&e.cache_misses.to_string());
    out.push_str(",\"bytes_from_lower_tiers\":");
    out.push_str(&e.bytes_from_lower_tiers.to_string());
    out.push_str(",\"lower_tier_hits\":");
    out.push_str(&e.lower_tier_hits.to_string());
    out.push_str(",\"hit_ratio\":");
    write_f64(out, e.hit_ratio());
    out.push_str(",\"samples\":");
    out.push_str(&e.samples_delivered.to_string());
    out.push_str(",\"device_seconds\":");
    write_f64(out, e.device_seconds);
    out.push_str(",\"staging_peak_bytes\":");
    out.push_str(&e.staging_peak_bytes.to_string());
    out.push_str(",\"staging_published\":");
    out.push_str(&e.staging_published.to_string());
    out.push_str(",\"staging_evicted\":");
    out.push_str(&e.staging_evicted.to_string());
    out.push_str(",\"fetch_busy_seconds\":");
    write_f64(out, e.fetch_busy_seconds);
    out.push_str(",\"fetch_stall_seconds\":");
    write_f64(out, e.fetch_stall_seconds);
    out.push_str(",\"prep_busy_seconds\":");
    write_f64(out, e.prep_busy_seconds);
    out.push_str(",\"prep_stall_seconds\":");
    write_f64(out, e.prep_stall_seconds);
    out.push_str(",\"consumer_wait_seconds\":");
    write_f64(out, e.consumer_wait_seconds);
    out.push('}');
}

#[cfg(test)]
mod tests {
    use super::*;
    use pipeline::json::{parse, Value};

    fn sample_report() -> LoaderReport {
        LoaderReport {
            mode: "coordinated",
            jobs: 4,
            cache_policy: "MinIO",
            backend: "sata-ssd",
            cache_capacity_bytes: 1000,
            cache_used_bytes: 800,
            cache_resident_items: 8,
            bytes_from_storage: 1000,
            bytes_from_cache: 2000,
            bytes_from_lower_tiers: 0,
            bytes_from_remote: 0,
            samples_prepared: 30,
            samples_delivered: 120,
            cache_hits: 20,
            cache_misses: 10,
            lower_tier_hits: 0,
            device_seconds: 0.5,
            measured_device_seconds: 0.01,
            fetch_busy_seconds: 0.2,
            fetch_stall_seconds: 0.05,
            prep_busy_seconds: 1.5,
            prep_stall_seconds: 0.1,
            consumer_wait_seconds: 0.3,
            fetch_thread_busy_seconds: vec![0.12, 0.08],
            fetch_thread_stall_seconds: vec![0.03, 0.02],
            epochs: vec![
                EpochTrajectory {
                    epoch: 0,
                    bytes_from_storage: 1000,
                    cache_misses: 10,
                    samples_delivered: 60,
                    device_seconds: 0.5,
                    consumer_wait_seconds: 0.25,
                    ..EpochTrajectory::default()
                },
                EpochTrajectory {
                    epoch: 1,
                    bytes_from_cache: 2000,
                    cache_hits: 20,
                    samples_delivered: 60,
                    consumer_wait_seconds: 0.05,
                    ..EpochTrajectory::default()
                },
            ],
            tenant: None,
        }
    }

    #[test]
    fn steady_state_ignores_the_warmup_epoch() {
        let r = sample_report();
        assert!((r.hit_ratio() - 20.0 / 30.0).abs() < 1e-12);
        assert!((r.steady_hit_ratio() - 1.0).abs() < 1e-12);
        assert_eq!(r.steady_storage_bytes(), 0.0);
        assert_eq!(r.steady_device_seconds(), 0.0);
        assert!((r.steady_consumer_wait_seconds() - 0.05).abs() < 1e-12);
    }

    #[test]
    fn json_round_trips_through_the_shared_parser() {
        let r = sample_report();
        let doc = parse(&r.to_json()).expect("LoaderReport::to_json must emit valid JSON");
        assert_eq!(doc.get("mode").and_then(Value::as_str), Some("coordinated"));
        assert_eq!(doc.get("jobs").and_then(Value::as_f64), Some(4.0));
        // Structural comparability with SimReport: the same epoch-array keys.
        let disk = doc
            .get("disk_bytes_per_epoch")
            .and_then(Value::as_array)
            .unwrap();
        assert_eq!(disk.len(), 2);
        assert_eq!(disk[0].as_f64(), Some(1000.0));
        let traj = doc.get("trajectories").and_then(Value::as_array).unwrap();
        assert_eq!(
            traj[1].get("cache_hits").and_then(Value::as_f64),
            Some(20.0)
        );
        // The per-stage timing columns are present at both levels.
        assert_eq!(
            doc.get("prep_busy_seconds").and_then(Value::as_f64),
            Some(1.5)
        );
        assert_eq!(
            traj[0].get("consumer_wait_seconds").and_then(Value::as_f64),
            Some(0.25)
        );
        // Per-fetch-thread arrays split the aggregate fetch timings.
        let busy = doc
            .get("fetch_thread_busy_seconds")
            .and_then(Value::as_array)
            .unwrap();
        assert_eq!(busy.len(), 2);
        assert_eq!(busy[0].as_f64(), Some(0.12));
        let stall = doc
            .get("fetch_thread_stall_seconds")
            .and_then(Value::as_array)
            .unwrap();
        assert_eq!(stall[1].as_f64(), Some(0.02));
        // Standalone sessions emit no tenant block at all.
        assert!(doc.get("tenant").is_none());
    }

    #[test]
    fn tenant_block_is_emitted_only_when_present() {
        let mut r = sample_report();
        r.tenant = Some(TenantReport {
            name: "job-a".to_string(),
            quota_bytes: 600,
            effective_quota_bytes: 500,
            dram_resident_bytes: 480,
            resident_bytes: 800,
        });
        let doc = parse(&r.to_json()).expect("tenant report must emit valid JSON");
        let tenant = doc.get("tenant").expect("tenant block present");
        assert_eq!(tenant.get("name").and_then(Value::as_str), Some("job-a"));
        assert_eq!(
            tenant.get("quota_bytes").and_then(Value::as_f64),
            Some(600.0)
        );
        assert_eq!(
            tenant.get("effective_quota_bytes").and_then(Value::as_f64),
            Some(500.0)
        );
        assert_eq!(
            tenant.get("dram_resident_bytes").and_then(Value::as_f64),
            Some(480.0)
        );
        assert_eq!(
            tenant.get("resident_bytes").and_then(Value::as_f64),
            Some(800.0)
        );
    }
}
