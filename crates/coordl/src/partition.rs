//! Partitioned caching across the servers of a distributed job (§4.2).
//!
//! Each server contributes a cache tier to a job-wide partitioned cache.  A
//! directory records which server holds each raw item; on a local miss the
//! item is fetched from the remote server's cache (in the real system over
//! TCP — here by reading the peer's in-memory tier, with the byte volume
//! accounted so the simulator and the benches can attach network timing).
//! Only items cached nowhere fall through to the fetch backend, so once the
//! aggregate cache capacity covers the dataset, storage is never touched
//! again.
//!
//! A [`Session`](crate::Session) in [`Mode::Partitioned`](crate::Mode) builds
//! one of these with its configured tier per node and fetch backend
//! ([`PartitionedCacheCluster::with_stack`]); [`RemotePeerTier`] views the
//! peer caches as one intermediate [`CacheTier`] between a node's local
//! chain and the durable store.
//!
//! # Fault tolerance
//!
//! The cluster is failure-aware: a [`FaultPlan`] installed via
//! [`set_fault_plan`](PartitionedCacheCluster::set_fault_plan) (or direct
//! calls to [`kill_node`](PartitionedCacheCluster::kill_node) /
//! [`leave_node`](PartitionedCacheCluster::leave_node) /
//! [`join_node`](PartitionedCacheCluster::join_node)) changes cache
//! *membership*, never consumers: a dead node's tier stops serving and
//! admitting, but fetches issued on its behalf still succeed through peers
//! and the backend, so a consumer stream never loses or duplicates a
//! sample.  On a kill, the directory entries the dead node owned are
//! re-homed by rendezvous order to surviving nodes that already hold the
//! bytes (their tier chains span any persistent spill levels, so a survivor
//! "warms" from its local SSD tier before the item falls back to the
//! durable store); a graceful leave additionally migrates the leaver's
//! bytes into surviving tiers first.  A peer tier that fails mid-lookup
//! surfaces as a typed [`CoordlError::PeerFailed`]; the fetch path marks
//! the peer dead and retries with backoff through the surviving cluster.

use crate::error::CoordlError;
use crate::fault::{FaultClock, FaultPlan, FaultStep};
use crate::stats::LoaderStats;
use crate::{CacheTier, FetchBackend};
use dataset::ItemId;
use dcache::FaultKind;
use parking_lot::{Mutex, RwLock};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// A successful peer lookup: the served bytes and the owning peer's index,
/// or `None` when no live peer holds the item.
pub type RemoteHit = Option<(Arc<Vec<u8>>, usize)>;

/// Where a partitioned-cache fetch was served from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FetchOrigin {
    /// The local server's cache tier.
    LocalCache,
    /// A remote server's cache tier (over the network in the real system).
    RemoteCache(usize),
    /// The fetch backend (the item was cached nowhere).
    Storage,
}

/// Per-server counters for the partitioned cache.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PartitionStats {
    /// Fetches served from the local cache.
    pub local_hits: u64,
    /// Fetches served from a peer's cache.
    pub remote_hits: u64,
    /// Fetches that fell through to storage.
    pub storage_reads: u64,
    /// Bytes moved over the network into this server.
    pub remote_bytes_in: u64,
    /// Bytes this server served to its peers.
    pub remote_bytes_out: u64,
    /// Bytes read from storage by this server.
    pub storage_bytes: u64,
}

impl PartitionStats {
    /// Merge `other` into `self` (used for cluster-wide aggregates).
    pub fn merge(&mut self, other: &PartitionStats) {
        self.local_hits += other.local_hits;
        self.remote_hits += other.remote_hits;
        self.storage_reads += other.storage_reads;
        self.remote_bytes_in += other.remote_bytes_in;
        self.remote_bytes_out += other.remote_bytes_out;
        self.storage_bytes += other.storage_bytes;
    }
}

struct ServerState {
    tier: Arc<dyn CacheTier>,
    stats: PartitionStats,
    alive: bool,
}

/// Cursor over an installed [`FaultPlan`]: events before `next` have been
/// applied.
#[derive(Default)]
struct FaultProgress {
    steps: Vec<FaultStep>,
    next: usize,
}

/// How often a fetch retries after a peer failure before surfacing the
/// typed error.  Each retry first marks the failed peer dead, so the second
/// attempt already routes around it; the cap only matters if *every*
/// attempt hits a distinct failing peer.
const MAX_FETCH_ATTEMPTS: u32 = 3;

/// Extract a printable panic payload (the same convention the executor uses
/// for worker panics).
fn panic_detail(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// A job-wide partitioned cache over a set of per-server cache tiers.
pub struct PartitionedCacheCluster {
    backend: Arc<dyn FetchBackend>,
    servers: RwLock<Vec<ServerState>>,
    directory: RwLock<HashMap<ItemId, usize>>,
    loader_stats: Arc<LoaderStats>,
    clock: FaultClock,
    faults: Mutex<FaultProgress>,
    /// Set once fault machinery is in play (a plan installed or a membership
    /// call made); the healthy fast path checks one relaxed atomic and
    /// otherwise behaves bit-identically to a fault-free cluster.
    chaos: AtomicBool,
}

impl PartitionedCacheCluster {
    /// Create a cluster from explicit per-server tiers over one fetch
    /// backend, recording into shared loader statistics.
    pub fn with_stack(
        backend: Arc<dyn FetchBackend>,
        tiers: Vec<Arc<dyn CacheTier>>,
        loader_stats: Arc<LoaderStats>,
    ) -> Self {
        assert!(!tiers.is_empty(), "need at least one server");
        let servers = tiers
            .into_iter()
            .map(|tier| ServerState {
                tier,
                stats: PartitionStats::default(),
                alive: true,
            })
            .collect();
        PartitionedCacheCluster {
            backend,
            servers: RwLock::new(servers),
            directory: RwLock::new(HashMap::new()),
            loader_stats,
            clock: FaultClock::new(),
            faults: Mutex::new(FaultProgress::default()),
            chaos: AtomicBool::new(false),
        }
    }

    /// Number of servers.
    pub fn num_servers(&self) -> usize {
        self.servers.read().len()
    }

    /// Aggregate loader statistics across the cluster.
    pub fn loader_stats(&self) -> &LoaderStats {
        &self.loader_stats
    }

    /// Per-server statistics snapshot.
    pub fn stats(&self, server: usize) -> PartitionStats {
        self.servers.read()[server].stats
    }

    /// Cluster-wide aggregate of the per-server statistics.
    pub fn aggregate_stats(&self) -> PartitionStats {
        let servers = self.servers.read();
        let mut out = PartitionStats::default();
        for s in servers.iter() {
            out.merge(&s.stats);
        }
        out
    }

    /// The cache tier of `server`.
    pub fn tier(&self, server: usize) -> Arc<dyn CacheTier> {
        Arc::clone(&self.servers.read()[server].tier)
    }

    /// Number of distinct items currently registered in the directory.
    pub fn directory_len(&self) -> usize {
        self.directory.read().len()
    }

    /// Sorted `(item, owner)` snapshot of the directory, for invariant
    /// checks (every owner must be alive and actually hold the item).
    pub fn directory_snapshot(&self) -> Vec<(ItemId, usize)> {
        let mut entries: Vec<(ItemId, usize)> = self
            .directory
            .read()
            .iter()
            .map(|(&item, &server)| (item, server))
            .collect();
        entries.sort_unstable();
        entries
    }

    /// The shared fetch-step clock faults are scheduled against.
    pub fn fault_clock(&self) -> &FaultClock {
        &self.clock
    }

    /// Install (or replace) the cluster's fault plan.  Events fire as the
    /// fetch path ticks the [`FaultClock`] past their `at_step`.
    pub fn set_fault_plan(&self, plan: FaultPlan) {
        let mut faults = self.faults.lock();
        faults.steps = plan.steps().to_vec();
        faults.next = 0;
        drop(faults);
        self.chaos.store(true, Ordering::Relaxed);
    }

    /// Whether `server`'s cache membership is currently alive.
    pub fn is_alive(&self, server: usize) -> bool {
        self.servers.read().get(server).is_some_and(|s| s.alive)
    }

    /// Indices of the currently alive servers, ascending.
    pub fn alive_servers(&self) -> Vec<usize> {
        self.servers
            .read()
            .iter()
            .enumerate()
            .filter(|(_, s)| s.alive)
            .map(|(i, _)| i)
            .collect()
    }

    /// Abruptly kill `server`'s cache membership (no-op when already dead).
    ///
    /// Its tier stops serving, admitting and registering; directory entries
    /// it owned are re-homed by rendezvous preference to surviving nodes
    /// that already hold the bytes (in DRAM or a lower persistent tier) and
    /// dropped otherwise — the next fetch of a dropped item falls back to
    /// the durable store and re-registers wherever it lands.  Consumers
    /// fetching *as* the dead node keep succeeding through peers and the
    /// backend.
    pub fn kill_node(&self, server: usize) {
        self.chaos.store(true, Ordering::Relaxed);
        let Some(alive_tiers) = self.mark_dead(server) else {
            return;
        };
        self.rehome_entries_of(server, &alive_tiers, None);
    }

    /// Gracefully decommission `server` (no-op when already dead): like
    /// [`kill_node`](Self::kill_node), but the leaver first migrates the
    /// bytes of every directory entry it owns into the first surviving
    /// rendezvous preference that will retain them, so ample-capacity
    /// clusters lose no shard coverage.
    pub fn leave_node(&self, server: usize) {
        self.chaos.store(true, Ordering::Relaxed);
        let leaver = {
            let servers = self.servers.read();
            match servers.get(server) {
                Some(s) if s.alive => Arc::clone(&s.tier),
                _ => return,
            }
        };
        let Some(alive_tiers) = self.mark_dead(server) else {
            return;
        };
        self.rehome_entries_of(server, &alive_tiers, Some(&leaver));
    }

    /// Mark a previously dead `server` alive again (no-op when alive or out
    /// of range).  Its tier rejoins with whatever it still holds — a warm
    /// restart; see [`rejoin_with_tier`](Self::rejoin_with_tier) for a
    /// restart that rebuilds the tier (e.g. replaying a persistent spill
    /// store).  Rejoined contents are re-advertised in the directory lazily,
    /// as local hits touch them.
    pub fn join_node(&self, server: usize) {
        self.chaos.store(true, Ordering::Relaxed);
        let mut servers = self.servers.write();
        if let Some(state) = servers.get_mut(server) {
            state.alive = true;
        }
    }

    /// Rejoin `server` with a replacement tier — the restarted-process case,
    /// where a fresh cache chain was warmed from the node's persistent
    /// [`SpillStore`](vfs::SpillStore) tier rather than inherited in
    /// memory.
    pub fn rejoin_with_tier(&self, server: usize, tier: Arc<dyn CacheTier>) {
        self.chaos.store(true, Ordering::Relaxed);
        let mut servers = self.servers.write();
        if let Some(state) = servers.get_mut(server) {
            state.tier = tier;
            state.alive = true;
        }
    }

    /// Flip `server` dead, returning a tier handle per *surviving* slot
    /// (`None` for dead ones) — or `None` if the server was already dead or
    /// out of range.
    fn mark_dead(&self, server: usize) -> Option<Vec<Option<Arc<dyn CacheTier>>>> {
        let mut servers = self.servers.write();
        match servers.get(server) {
            Some(s) if s.alive => {}
            _ => return None,
        }
        servers[server].alive = false;
        Some(
            servers
                .iter()
                .map(|s| s.alive.then(|| Arc::clone(&s.tier)))
                .collect(),
        )
    }

    /// Re-home every directory entry owned by the (now dead) `server`:
    /// surviving candidates are tried in rendezvous order, first one already
    /// holding the item wins; with `migrate_from` (a graceful leave) the
    /// leaver's bytes are offered to each candidate until one retains them.
    /// Items no survivor ends up holding are dropped from the directory —
    /// their next fetch is a storage read, never a lost sample.  Orphans are
    /// processed in ascending item order so rebalancing is deterministic.
    fn rehome_entries_of(
        &self,
        server: usize,
        alive_tiers: &[Option<Arc<dyn CacheTier>>],
        migrate_from: Option<&Arc<dyn CacheTier>>,
    ) {
        let num_servers = alive_tiers.len();
        let mut directory = self.directory.write();
        let mut orphans: Vec<ItemId> = directory
            .iter()
            .filter(|&(_, &owner)| owner == server)
            .map(|(&item, _)| item)
            .collect();
        orphans.sort_unstable();
        for item in orphans {
            let mut new_owner = None;
            for candidate in dcache::rendezvous_order(item, num_servers) {
                let Some(tier) = &alive_tiers[candidate] else {
                    continue;
                };
                // A survivor may already hold the item in any level of its
                // chain — including a persistent SSD spill tier, which is
                // exactly the "warm from local SSD before hitting the
                // durable store" path.
                if tier.contains(item) {
                    new_owner = Some(candidate);
                    break;
                }
                if let Some(from) = migrate_from {
                    if let Some(bytes) = from.lookup(item) {
                        drop(tier.admit(item, bytes));
                        if tier.contains(item) {
                            new_owner = Some(candidate);
                            break;
                        }
                    }
                }
            }
            match new_owner {
                Some(owner) => {
                    directory.insert(item, owner);
                }
                None => {
                    directory.remove(&item);
                }
            }
        }
    }

    /// Tick the fault clock and apply every event that has come due.  The
    /// healthy path (no plan, no membership calls) is one relaxed load.
    fn apply_due_faults(&self) {
        if !self.chaos.load(Ordering::Relaxed) {
            return;
        }
        let step = self.clock.tick();
        loop {
            let due = {
                let mut faults = self.faults.lock();
                match faults.steps.get(faults.next).copied() {
                    Some(s) if s.at_step < step => {
                        faults.next += 1;
                        Some(s)
                    }
                    _ => None,
                }
            };
            let Some(event) = due else { break };
            match event.kind {
                FaultKind::Kill => self.kill_node(event.node),
                FaultKind::Leave => self.leave_node(event.node),
                FaultKind::Join => self.join_node(event.node),
            }
        }
    }

    /// Fetch `item` on behalf of `server`, following the CoorDL lookup order:
    /// local cache tier → remote peer tier (via the directory) → backend.
    /// A failed backend read is a typed [`CoordlError::BackendIo`]; an
    /// out-of-range `server` a typed [`CoordlError::InvalidConfig`].  A peer
    /// tier failing mid-lookup ([`CoordlError::PeerFailed`]) marks that peer
    /// dead and retries with backoff, so the sample is still served (from
    /// the surviving cluster or storage) unless every retry hits a freshly
    /// failing peer.
    pub fn fetch(
        &self,
        server: usize,
        item: ItemId,
    ) -> Result<(Arc<Vec<u8>>, FetchOrigin), CoordlError> {
        self.apply_due_faults();
        let mut last_err = None;
        for attempt in 0..MAX_FETCH_ATTEMPTS {
            if attempt > 0 {
                std::thread::sleep(std::time::Duration::from_micros(100 << attempt));
            }
            match self.fetch_once(server, item) {
                Ok(served) => return Ok(served),
                Err(CoordlError::PeerFailed { peer, detail }) => {
                    self.kill_node(peer);
                    last_err = Some(CoordlError::PeerFailed { peer, detail });
                }
                Err(other) => return Err(other),
            }
        }
        Err(last_err.expect("retry loop exits early unless a peer failed"))
    }

    /// One fetch attempt (no fault application, no retry).
    fn fetch_once(
        &self,
        server: usize,
        item: ItemId,
    ) -> Result<(Arc<Vec<u8>>, FetchOrigin), CoordlError> {
        // 1. Local cache chain — unless this node's cache membership is
        // dead (its consumer keeps fetching; the bytes just can't come from
        // the lost cache).
        let local = {
            let servers = self.servers.read();
            let num_servers = servers.len();
            let Some(state) = servers.get(server) else {
                return Err(CoordlError::InvalidConfig(format!(
                    "server {server} out of range ({num_servers} servers)"
                )));
            };
            if state.alive {
                state.tier.lookup_traced(item)
            } else {
                None
            }
        };
        if let Some((bytes, level)) = local {
            {
                let mut servers = self.servers.write();
                servers[server].stats.local_hits += 1;
            }
            self.loader_stats.record_cache_read(bytes.len() as u64);
            if level > 0 {
                self.loader_stats.record_lower_tier_read(bytes.len() as u64);
            }
            // Under chaos a rejoined node holds items the rebalance dropped
            // from the directory; re-advertise them as they are touched so
            // peers regain remote hits (the post-rebalance recovery path).
            if self.chaos.load(Ordering::Relaxed) && !self.directory.read().contains_key(&item) {
                self.directory.write().entry(item).or_insert(server);
            }
            return Ok((bytes, FetchOrigin::LocalCache));
        }
        // 2. The remote peer tier: the directory resolves the owner, the
        // peer's cache chain serves the bytes (over the network in the real
        // system — §4.2: 10-40 Gbps beats the local SATA SSD).
        if let Some((bytes, peer)) = self.remote_lookup(server, item)? {
            {
                let mut servers = self.servers.write();
                servers[server].stats.remote_hits += 1;
                servers[server].stats.remote_bytes_in += bytes.len() as u64;
                servers[peer].stats.remote_bytes_out += bytes.len() as u64;
            }
            self.loader_stats.record_remote_read(bytes.len() as u64);
            return Ok((bytes, FetchOrigin::RemoteCache(peer)));
        }
        // 3. Backend: read locally, admit into the local tier and register
        // (a dead node's cache neither admits nor registers).
        let bytes = Arc::new(self.backend.read(item)?);
        let size = bytes.len() as u64;
        let mut admitted = false;
        {
            let servers = self.servers.read();
            if servers[server].alive {
                let retained = servers[server].tier.admit(item, Arc::clone(&bytes));
                admitted = servers[server].tier.contains(item);
                drop(retained);
            }
        }
        if admitted {
            self.directory.write().insert(item, server);
        }
        {
            let mut servers = self.servers.write();
            servers[server].stats.storage_reads += 1;
            servers[server].stats.storage_bytes += size;
        }
        self.loader_stats.record_storage_read(size);
        Ok((bytes, FetchOrigin::Storage))
    }

    /// Total bytes read from storage across the cluster.
    pub fn total_storage_bytes(&self) -> u64 {
        let servers = self.servers.read();
        servers.iter().map(|s| s.stats.storage_bytes).sum()
    }

    /// Resolve `item` through the directory and read it from the owning
    /// peer's cache chain (`Ok(None)` when uncached, unowned, owned by
    /// `server` itself — a racing local eviction — or owned by a dead
    /// peer).  A peer tier that panics mid-lookup is a typed
    /// [`CoordlError::PeerFailed`], never a propagated panic.  This is the
    /// lookup half of the remote tier; [`RemotePeerTier`] wraps it as a
    /// [`CacheTier`], and [`fetch`](Self::fetch) layers retry-and-kill on
    /// top.
    fn remote_lookup(&self, server: usize, item: ItemId) -> Result<RemoteHit, CoordlError> {
        let Some(peer) = self.directory.read().get(&item).copied() else {
            return Ok(None);
        };
        if peer == server {
            return Ok(None);
        }
        let tier = {
            let servers = self.servers.read();
            match servers.get(peer) {
                Some(state) if state.alive => Arc::clone(&state.tier),
                _ => return Ok(None),
            }
        };
        match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| tier.lookup(item))) {
            Ok(Some(bytes)) => Ok(Some((bytes, peer))),
            Ok(None) => Ok(None),
            Err(payload) => Err(CoordlError::PeerFailed {
                peer,
                detail: panic_detail(payload),
            }),
        }
    }

    /// Public probe of the remote-lookup half without the fetch path's
    /// kill-and-retry: resolves `item` through the directory and reads it
    /// from the owning peer, surfacing a failing peer as the typed
    /// [`CoordlError::PeerFailed`] the retry machinery consumes.
    pub fn remote_fetch(&self, server: usize, item: ItemId) -> Result<RemoteHit, CoordlError> {
        self.remote_lookup(server, item)
    }

    /// View the cluster's peer caches as one intermediate cache tier from
    /// `server`'s perspective: everything the *other* nodes hold, sitting
    /// between `server`'s local chain and the shared backend.
    pub fn remote_tier(self: &Arc<Self>, server: usize) -> RemotePeerTier {
        assert!(server < self.num_servers(), "server {server} out of range");
        RemotePeerTier {
            cluster: Arc::clone(self),
            server,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }
}

/// The partitioned peer index expressed as a [`CacheTier`]: a read-through
/// view of every *other* server's cache chain, resolved through the item
/// directory.  Lookups serve peer-resident bytes; `admit` is a no-op (peers
/// populate their own tiers when they fetch), so the tier is purely an
/// intermediate level between a node's local chain and the durable store.
/// Dead peers are invisible: their bytes neither serve lookups nor count
/// toward the view's capacity.
pub struct RemotePeerTier {
    cluster: Arc<PartitionedCacheCluster>,
    server: usize,
    // The view carries its own fetch counters: the cluster's per-server
    // stats count cluster.fetch traffic, not accesses made through this
    // adapter.
    hits: AtomicU64,
    misses: AtomicU64,
}

impl CacheTier for RemotePeerTier {
    fn lookup(&self, item: ItemId) -> Option<Arc<Vec<u8>>> {
        match self.cluster.remote_lookup(self.server, item) {
            Ok(Some((bytes, _))) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(bytes)
            }
            // A failing peer is a miss from the tier-view's perspective —
            // the degraded-mode error is the cluster fetch path's to
            // handle, and a `CacheTier` lookup must not panic.
            Ok(None) | Err(_) => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    fn admit(&self, _item: ItemId, bytes: Arc<Vec<u8>>) -> Arc<Vec<u8>> {
        bytes
    }

    fn contains(&self, item: ItemId) -> bool {
        // The directory alone is not enough: an evicting peer policy can
        // drop a registered item, and `contains` must imply a successful
        // lookup.  Dead peers never "contain" anything.
        match self.cluster.directory.read().get(&item) {
            Some(&peer) if peer != self.server => {
                let servers = self.cluster.servers.read();
                servers
                    .get(peer)
                    .is_some_and(|s| s.alive && s.tier.contains(item))
            }
            _ => false,
        }
    }

    fn used_bytes(&self) -> u64 {
        self.peers().map(|t| t.used_bytes()).sum()
    }

    fn capacity_bytes(&self) -> u64 {
        self.peers().map(|t| t.capacity_bytes()).sum()
    }

    fn resident_items(&self) -> usize {
        self.peers().map(|t| t.resident_items()).sum()
    }

    fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    fn policy_name(&self) -> &'static str {
        "remote-peers"
    }
}

impl RemotePeerTier {
    /// The *alive* peer tiers this view spans.
    fn peers(&self) -> impl Iterator<Item = Arc<dyn CacheTier>> {
        let servers = self.cluster.servers.read();
        let me = self.server;
        servers
            .iter()
            .enumerate()
            .filter(|&(s, state)| s != me && state.alive)
            .map(|(_, state)| Arc::clone(&state.tier))
            .collect::<Vec<_>>()
            .into_iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::MinIoByteCache;
    use crate::DirectBackend;
    use dataset::{DataSource, DatasetSpec, EpochSampler, SyntheticItemStore};

    fn dataset(n: u64, size: u64) -> Arc<SyntheticItemStore> {
        Arc::new(SyntheticItemStore::new(
            DatasetSpec::new("t", n, size, 0.0, 6.0),
            9,
        ))
    }

    /// The historical MinIO-per-server stack, built through the explicit
    /// constructor the sessions use.
    fn minio_cluster(
        dataset: Arc<dyn DataSource>,
        num_servers: usize,
        per_server_cache_bytes: u64,
    ) -> PartitionedCacheCluster {
        let tiers = (0..num_servers)
            .map(|_| Arc::new(MinIoByteCache::new(per_server_cache_bytes)) as Arc<dyn CacheTier>)
            .collect();
        PartitionedCacheCluster::with_stack(
            Arc::new(DirectBackend::new(dataset)),
            tiers,
            Arc::new(LoaderStats::default()),
        )
    }

    /// Run one "epoch": each server fetches its (epoch-varying) shard.
    fn run_epoch(cluster: &PartitionedCacheCluster, n: u64, epoch: u64, servers: usize) {
        let sampler = EpochSampler::new(n, 42);
        for s in 0..servers {
            for item in sampler.distributed_shard(epoch, s, servers) {
                let (bytes, _) = cluster.fetch(s, item).unwrap();
                assert!(!bytes.is_empty());
            }
        }
    }

    #[test]
    fn first_epoch_reads_dataset_from_storage_exactly_once() {
        let n = 100;
        let ds = dataset(n, 100);
        let cluster = minio_cluster(ds, 2, 100 * 100);
        run_epoch(&cluster, n, 0, 2);
        assert_eq!(cluster.total_storage_bytes(), n * 100);
        assert_eq!(cluster.directory_len(), n as usize);
    }

    #[test]
    fn later_epochs_never_touch_storage_when_aggregate_memory_suffices() {
        let n = 100;
        let ds = dataset(n, 100);
        // Each server caches 65 % of the dataset; together they cover it.
        let cluster = minio_cluster(ds, 2, 65 * 100);
        run_epoch(&cluster, n, 0, 2);
        let after_warmup = cluster.total_storage_bytes();
        for epoch in 1..4 {
            run_epoch(&cluster, n, epoch, 2);
        }
        assert_eq!(
            cluster.total_storage_bytes(),
            after_warmup,
            "no storage I/O beyond the first epoch"
        );
        // The epoch-varying shards force remote fetches.
        let remote: u64 = (0..2).map(|s| cluster.stats(s).remote_hits).sum();
        assert!(remote > 0);
        let agg = cluster.aggregate_stats();
        assert_eq!(agg.remote_hits, remote);
        assert_eq!(agg.remote_bytes_in, agg.remote_bytes_out);
    }

    #[test]
    fn remote_fetches_return_identical_bytes_to_storage_reads() {
        let n = 50;
        let ds = dataset(n, 64);
        let cluster = minio_cluster(Arc::clone(&ds) as Arc<dyn DataSource>, 2, 64 * 50);
        run_epoch(&cluster, n, 0, 2);
        for item in 0..n {
            let (a, _) = cluster.fetch(0, item).unwrap();
            let (b, _) = cluster.fetch(1, item).unwrap();
            assert_eq!(a.as_slice(), ds.read(item).as_slice());
            assert_eq!(a, b);
        }
    }

    #[test]
    fn cache_too_small_for_shard_falls_back_to_storage() {
        let n = 100;
        let ds = dataset(n, 100);
        // Each server can cache only 20 items; aggregate 40 < 100.
        let cluster = minio_cluster(ds, 2, 20 * 100);
        for epoch in 0..3 {
            run_epoch(&cluster, n, epoch, 2);
        }
        // Storage is still needed every epoch for the uncached remainder.
        assert!(cluster.total_storage_bytes() > n * 100);
        // But at least the cached fraction is served from DRAM.
        let hits: u64 = (0..2)
            .map(|s| cluster.stats(s).local_hits + cluster.stats(s).remote_hits)
            .sum();
        assert!(hits > 0);
    }

    #[test]
    fn bytes_in_and_out_are_symmetric_across_the_cluster() {
        let n = 80;
        let ds = dataset(n, 128);
        let cluster = minio_cluster(ds, 4, 128 * 80);
        for epoch in 0..3 {
            run_epoch(&cluster, n, epoch, 4);
        }
        let total_in: u64 = (0..4).map(|s| cluster.stats(s).remote_bytes_in).sum();
        let total_out: u64 = (0..4).map(|s| cluster.stats(s).remote_bytes_out).sum();
        assert_eq!(total_in, total_out);
        assert_eq!(cluster.loader_stats().bytes_from_remote(), total_in);
    }

    #[test]
    fn concurrent_fetches_from_all_servers_are_safe() {
        let n = 200;
        let ds = dataset(n, 64);
        let cluster = Arc::new(minio_cluster(ds, 4, 64 * 200));
        // Warm up.
        run_epoch(&cluster, n, 0, 4);
        let mut handles = Vec::new();
        for s in 0..4 {
            let cluster = Arc::clone(&cluster);
            handles.push(std::thread::spawn(move || {
                let sampler = EpochSampler::new(n, 42);
                for item in sampler.distributed_shard(1, s, 4) {
                    let (bytes, origin) = cluster.fetch(s, item).unwrap();
                    assert!(!bytes.is_empty());
                    assert_ne!(origin, FetchOrigin::Storage, "fully cached after warm-up");
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn lru_tiers_slot_into_the_same_cluster_stack() {
        // The pluggable-tier point: a page-cache-like cluster (LRU per node)
        // uses the identical lookup order and directory machinery.
        let n = 60;
        let ds = dataset(n, 100);
        let tiers = (0..2)
            .map(|_| {
                Arc::new(crate::PolicyByteCache::new(
                    dcache::PolicyKind::Lru,
                    100 * 100,
                )) as Arc<dyn CacheTier>
            })
            .collect();
        let cluster = PartitionedCacheCluster::with_stack(
            Arc::new(DirectBackend::new(ds)),
            tiers,
            Arc::new(LoaderStats::default()),
        );
        for epoch in 0..2 {
            run_epoch(&cluster, n, epoch, 2);
        }
        assert_eq!(cluster.total_storage_bytes(), n * 100, "fits: read once");
        assert!(cluster.stats(0).local_hits + cluster.stats(0).remote_hits > 0);
        assert_eq!(cluster.tier(0).policy_name(), "LRU");
    }

    #[test]
    fn remote_peer_tier_expresses_the_peer_index_as_an_intermediate_tier() {
        let n = 40;
        let ds = dataset(n, 100);
        let cluster = Arc::new(minio_cluster(ds, 2, 100 * 100));
        run_epoch(&cluster, n, 0, 2);
        let remote = cluster.remote_tier(0);
        assert_eq!(remote.policy_name(), "remote-peers");
        // Everything node 1 cached is visible to node 0 through the tier;
        // node 0's own items are not (they are its *local* tier).
        let mut seen = 0;
        for item in 0..n {
            let local = cluster.tier(0).contains(item);
            let remote_hit = remote.lookup(item).is_some();
            assert_eq!(remote.contains(item), remote_hit, "item {item}");
            assert!(local ^ remote_hit, "exactly one tier owns item {item}");
            seen += remote_hit as usize;
        }
        assert!(seen > 0, "peer holds part of the dataset");
        // The view counts its own accesses, not the cluster's fetch stats.
        assert_eq!(remote.hits(), seen as u64);
        assert_eq!(CacheTier::misses(&remote), n - seen as u64);
        // With an evicting peer policy, `contains` must track the peer's
        // actual residency, not the (stale) directory registration.
        let lru_tiers = (0..2)
            .map(|_| {
                Arc::new(crate::PolicyByteCache::new(dcache::PolicyKind::Lru, 300))
                    as Arc<dyn CacheTier>
            })
            .collect();
        let lru_cluster = Arc::new(PartitionedCacheCluster::with_stack(
            Arc::new(DirectBackend::new(dataset(40, 100))),
            lru_tiers,
            Arc::new(LoaderStats::default()),
        ));
        for item in 0..20 {
            let _ = lru_cluster.fetch(1, item); // node 1 caches, then thrashes
        }
        let view = lru_cluster.remote_tier(0);
        for item in 0..20 {
            assert_eq!(
                view.contains(item),
                view.lookup(item).is_some(),
                "contains must imply lookup for evicted item {item}"
            );
        }
        // The remote tier never admits: it is read-through by design.
        let before = remote.resident_items();
        let _ = remote.admit(999_999, Arc::new(vec![1, 2, 3]));
        assert_eq!(remote.resident_items(), before);
        assert_eq!(
            CacheTier::capacity_bytes(&remote),
            100 * 100,
            "capacity is the peers' aggregate"
        );
    }

    #[test]
    fn out_of_range_server_is_a_typed_error() {
        let ds = dataset(10, 10);
        let cluster = minio_cluster(ds, 2, 1000);
        match cluster.fetch(5, 0) {
            Err(CoordlError::InvalidConfig(msg)) => {
                assert!(msg.contains("out of range"), "unexpected message: {msg}")
            }
            other => panic!("expected a typed out-of-range error, got {other:?}"),
        }
    }

    // -- fault tolerance ---------------------------------------------------

    /// A tier that works normally until poisoned, then panics on lookup —
    /// the stand-in for a peer whose cache process died mid-request.
    struct PoisonableTier {
        inner: MinIoByteCache,
        poisoned: AtomicBool,
    }

    impl PoisonableTier {
        fn new(capacity: u64) -> Self {
            PoisonableTier {
                inner: MinIoByteCache::new(capacity),
                poisoned: AtomicBool::new(false),
            }
        }

        fn poison(&self) {
            self.poisoned.store(true, Ordering::Relaxed);
        }
    }

    impl CacheTier for PoisonableTier {
        fn lookup(&self, item: ItemId) -> Option<Arc<Vec<u8>>> {
            assert!(!self.poisoned.load(Ordering::Relaxed), "peer tier poisoned");
            self.inner.lookup(item)
        }
        fn admit(&self, item: ItemId, bytes: Arc<Vec<u8>>) -> Arc<Vec<u8>> {
            self.inner.admit(item, bytes)
        }
        fn contains(&self, item: ItemId) -> bool {
            self.inner.contains(item)
        }
        fn used_bytes(&self) -> u64 {
            self.inner.used_bytes()
        }
        fn capacity_bytes(&self) -> u64 {
            self.inner.capacity_bytes()
        }
        fn resident_items(&self) -> usize {
            self.inner.resident_items()
        }
        fn hits(&self) -> u64 {
            self.inner.hits()
        }
        fn misses(&self) -> u64 {
            self.inner.misses()
        }
        fn policy_name(&self) -> &'static str {
            "poisonable"
        }
    }

    #[test]
    fn poisoned_peer_yields_typed_error_not_panic() {
        let n = 20;
        let ds = dataset(n, 64);
        let poisonable = Arc::new(PoisonableTier::new(64 * n));
        let tiers: Vec<Arc<dyn CacheTier>> = vec![
            Arc::new(MinIoByteCache::new(64 * n)),
            Arc::clone(&poisonable) as Arc<dyn CacheTier>,
        ];
        let cluster = PartitionedCacheCluster::with_stack(
            Arc::new(DirectBackend::new(ds)),
            tiers,
            Arc::new(LoaderStats::default()),
        );
        run_epoch(&cluster, n, 0, 2);
        // Pick an item the directory maps to the poisonable peer.
        let victim = cluster
            .directory_snapshot()
            .into_iter()
            .find(|&(_, owner)| owner == 1)
            .expect("peer 1 owns part of the dataset")
            .0;
        poisonable.poison();
        // The raw lookup half surfaces the typed degraded-mode error.
        match cluster.remote_fetch(0, victim) {
            Err(CoordlError::PeerFailed { peer: 1, detail }) => {
                assert!(detail.contains("poisoned"), "detail: {detail}")
            }
            other => panic!("expected PeerFailed, got {other:?}"),
        }
        // The full fetch path retries: the peer is marked dead and the
        // sample is still served (from storage), never lost.
        let (bytes, origin) = cluster.fetch(0, victim).unwrap();
        assert!(!bytes.is_empty());
        assert_eq!(origin, FetchOrigin::Storage);
        assert!(!cluster.is_alive(1), "failing peer was quarantined");
        assert!(cluster.is_alive(0));
        // The remote tier view degrades to misses instead of panicking.
        let view = Arc::new(cluster).remote_tier(0);
        assert!(view.lookup(victim).is_none());
    }

    #[test]
    fn kill_rehomes_entries_to_survivors_that_hold_the_bytes() {
        let n = 30;
        let ds = dataset(n, 64);
        let cluster = minio_cluster(Arc::clone(&ds) as Arc<dyn DataSource>, 2, 64 * n);
        run_epoch(&cluster, n, 0, 2);
        assert_eq!(cluster.directory_len(), n as usize);
        // Pre-warm the survivor with everything the victim owns — the
        // moral equivalent of node 0 having replayed those items into its
        // chain from a persistent spill tier.
        let victim_items: Vec<ItemId> = cluster
            .directory_snapshot()
            .into_iter()
            .filter(|&(_, owner)| owner == 1)
            .map(|(item, _)| item)
            .collect();
        assert!(!victim_items.is_empty());
        for &item in &victim_items {
            let (bytes, _) = cluster.fetch(1, item).unwrap();
            drop(cluster.tier(0).admit(item, bytes));
        }
        let storage_before = cluster.total_storage_bytes();
        cluster.kill_node(1);
        assert!(!cluster.is_alive(1));
        assert_eq!(cluster.alive_servers(), vec![0]);
        // Nothing was lost: every entry survived, re-homed to node 0.
        assert_eq!(cluster.directory_len(), n as usize);
        assert!(cluster
            .directory_snapshot()
            .iter()
            .all(|&(_, owner)| owner == 0));
        // Refetching the victim's former shard needs no storage I/O.
        for &item in &victim_items {
            let (_, origin) = cluster.fetch(0, item).unwrap();
            assert_eq!(origin, FetchOrigin::LocalCache, "item {item}");
        }
        assert_eq!(cluster.total_storage_bytes(), storage_before);
        // Double-kill is a no-op.
        cluster.kill_node(1);
        assert_eq!(cluster.directory_len(), n as usize);
    }

    #[test]
    fn kill_without_replicas_drops_entries_and_recovers_via_storage() {
        let n = 40;
        let ds = dataset(n, 64);
        let cluster = minio_cluster(ds, 2, 64 * n);
        run_epoch(&cluster, n, 0, 2);
        let owned_by_1 = cluster
            .directory_snapshot()
            .iter()
            .filter(|&&(_, owner)| owner == 1)
            .count();
        assert!(owned_by_1 > 0);
        cluster.kill_node(1);
        // No survivor holds the victim's items, so their entries are gone…
        assert_eq!(cluster.directory_len(), n as usize - owned_by_1);
        // …and a full sweep by the survivor re-reads exactly those from
        // storage (a dead node's own fetches are also served, but neither
        // admit nor register), after which the directory is whole again.
        for item in 0..n {
            cluster.fetch(0, item).unwrap();
        }
        assert_eq!(
            cluster.aggregate_stats().storage_reads,
            n + owned_by_1 as u64,
            "exactly the orphaned items were re-read"
        );
        assert_eq!(cluster.directory_len(), n as usize);
        // Steady state after the rebalance: no storage traffic at all.
        for item in 0..n {
            let (_, origin) = cluster.fetch(0, item).unwrap();
            assert_eq!(origin, FetchOrigin::LocalCache, "item {item}");
        }
        assert_eq!(
            cluster.aggregate_stats().storage_reads,
            n + owned_by_1 as u64,
            "hit ratio fully recovered post-rebalance"
        );
    }

    #[test]
    fn graceful_leave_migrates_bytes_so_no_shard_is_lost() {
        let n = 50;
        let ds = dataset(n, 64);
        // Ample capacity everywhere: the survivor can absorb the whole
        // leaver shard.
        let cluster = minio_cluster(ds, 2, 2 * 64 * n);
        run_epoch(&cluster, n, 0, 2);
        let storage_before = cluster.total_storage_bytes();
        cluster.leave_node(1);
        assert!(!cluster.is_alive(1));
        // No lost shard: every item is still directory-resident on node 0.
        assert_eq!(cluster.directory_len(), n as usize);
        assert!(cluster
            .directory_snapshot()
            .iter()
            .all(|&(_, owner)| owner == 0));
        run_epoch(&cluster, n, 1, 2);
        assert_eq!(
            cluster.total_storage_bytes(),
            storage_before,
            "migration made the leave storage-free"
        );
    }

    #[test]
    fn rejoin_serves_stale_warm_contents_and_readvertises_lazily() {
        let n = 30;
        let ds = dataset(n, 64);
        let cluster = minio_cluster(ds, 2, 64 * n);
        run_epoch(&cluster, n, 0, 2);
        cluster.kill_node(1);
        let dropped = n as usize - cluster.directory_len();
        assert!(dropped > 0);
        cluster.join_node(1);
        assert!(cluster.is_alive(1));
        // The rejoined node still holds its (immutable, thus valid) bytes:
        // fetching as node 1 is pure local hits, and each hit re-advertises
        // the item so the directory heals without storage traffic.
        let storage_before = cluster.total_storage_bytes();
        let sampler = EpochSampler::new(n, 42);
        for item in sampler.distributed_shard(0, 1, 2) {
            let (_, origin) = cluster.fetch(1, item).unwrap();
            assert_eq!(origin, FetchOrigin::LocalCache);
        }
        assert_eq!(cluster.total_storage_bytes(), storage_before);
        assert_eq!(cluster.directory_len(), n as usize, "directory healed");
    }

    #[test]
    fn fault_plan_fires_on_the_fetch_step_axis() {
        let n = 20u64;
        let ds = dataset(n, 64);
        let cluster = minio_cluster(ds, 2, 64 * n);
        // Kill node 1 after one full epoch's worth of fetches.
        cluster.set_fault_plan(FaultPlan::new(vec![FaultStep {
            at_step: n,
            node: 1,
            kind: FaultKind::Kill,
        }]));
        run_epoch(&cluster, n, 0, 2);
        assert!(
            cluster.is_alive(1),
            "epoch 0 is the guaranteed-healthy prefix"
        );
        assert_eq!(cluster.fault_clock().now(), n);
        run_epoch(&cluster, n, 1, 2);
        assert!(!cluster.is_alive(1), "the plan killed node 1 in epoch 1");
        // Exactly-once accounting holds across the fault: every fetch was
        // served by exactly one origin.
        let agg = cluster.aggregate_stats();
        assert_eq!(
            agg.local_hits + agg.remote_hits + agg.storage_reads,
            2 * n,
            "each of the {n} items was fetched once per epoch"
        );
    }
}
