//! Partitioned caching across the servers of a distributed job (§4.2).
//!
//! Each server contributes a cache tier to a job-wide partitioned cache.  A
//! directory records which server holds each raw item; on a local miss the
//! item is fetched from the remote server's cache (in the real system over
//! TCP — here by reading the peer's in-memory tier, with the byte volume
//! accounted so the simulator and the benches can attach network timing).
//! Only items cached nowhere fall through to the fetch backend, so once the
//! aggregate cache capacity covers the dataset, storage is never touched
//! again.
//!
//! A [`Session`](crate::Session) in [`Mode::Partitioned`](crate::Mode) builds
//! one of these with its configured tier per node and fetch backend
//! ([`PartitionedCacheCluster::with_stack`]); [`RemotePeerTier`] views the
//! peer caches as one intermediate [`CacheTier`] between a node's local
//! chain and the durable store.

use crate::error::CoordlError;
use crate::stats::LoaderStats;
use crate::{CacheTier, FetchBackend};
use dataset::ItemId;
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Where a partitioned-cache fetch was served from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FetchOrigin {
    /// The local server's cache tier.
    LocalCache,
    /// A remote server's cache tier (over the network in the real system).
    RemoteCache(usize),
    /// The fetch backend (the item was cached nowhere).
    Storage,
}

/// Per-server counters for the partitioned cache.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PartitionStats {
    /// Fetches served from the local cache.
    pub local_hits: u64,
    /// Fetches served from a peer's cache.
    pub remote_hits: u64,
    /// Fetches that fell through to storage.
    pub storage_reads: u64,
    /// Bytes moved over the network into this server.
    pub remote_bytes_in: u64,
    /// Bytes this server served to its peers.
    pub remote_bytes_out: u64,
    /// Bytes read from storage by this server.
    pub storage_bytes: u64,
}

impl PartitionStats {
    /// Merge `other` into `self` (used for cluster-wide aggregates).
    pub fn merge(&mut self, other: &PartitionStats) {
        self.local_hits += other.local_hits;
        self.remote_hits += other.remote_hits;
        self.storage_reads += other.storage_reads;
        self.remote_bytes_in += other.remote_bytes_in;
        self.remote_bytes_out += other.remote_bytes_out;
        self.storage_bytes += other.storage_bytes;
    }
}

struct ServerState {
    tier: Arc<dyn CacheTier>,
    stats: PartitionStats,
}

/// A job-wide partitioned cache over a set of per-server cache tiers.
pub struct PartitionedCacheCluster {
    backend: Arc<dyn FetchBackend>,
    servers: RwLock<Vec<ServerState>>,
    directory: RwLock<HashMap<ItemId, usize>>,
    loader_stats: Arc<LoaderStats>,
}

impl PartitionedCacheCluster {
    /// Create a cluster from explicit per-server tiers over one fetch
    /// backend, recording into shared loader statistics.
    pub fn with_stack(
        backend: Arc<dyn FetchBackend>,
        tiers: Vec<Arc<dyn CacheTier>>,
        loader_stats: Arc<LoaderStats>,
    ) -> Self {
        assert!(!tiers.is_empty(), "need at least one server");
        let servers = tiers
            .into_iter()
            .map(|tier| ServerState {
                tier,
                stats: PartitionStats::default(),
            })
            .collect();
        PartitionedCacheCluster {
            backend,
            servers: RwLock::new(servers),
            directory: RwLock::new(HashMap::new()),
            loader_stats,
        }
    }

    /// Number of servers.
    pub fn num_servers(&self) -> usize {
        self.servers.read().len()
    }

    /// Aggregate loader statistics across the cluster.
    pub fn loader_stats(&self) -> &LoaderStats {
        &self.loader_stats
    }

    /// Per-server statistics snapshot.
    pub fn stats(&self, server: usize) -> PartitionStats {
        self.servers.read()[server].stats
    }

    /// Cluster-wide aggregate of the per-server statistics.
    pub fn aggregate_stats(&self) -> PartitionStats {
        let servers = self.servers.read();
        let mut out = PartitionStats::default();
        for s in servers.iter() {
            out.merge(&s.stats);
        }
        out
    }

    /// The cache tier of `server`.
    pub fn tier(&self, server: usize) -> Arc<dyn CacheTier> {
        Arc::clone(&self.servers.read()[server].tier)
    }

    /// Number of distinct items currently registered in the directory.
    pub fn directory_len(&self) -> usize {
        self.directory.read().len()
    }

    /// Fetch `item` on behalf of `server`, following the CoorDL lookup order:
    /// local cache tier → remote peer tier (via the directory) → backend.
    /// A failed backend read is a typed [`CoordlError::BackendIo`].
    pub fn fetch(
        &self,
        server: usize,
        item: ItemId,
    ) -> Result<(Arc<Vec<u8>>, FetchOrigin), CoordlError> {
        // 1. Local cache chain.
        {
            let servers = self.servers.read();
            assert!(server < servers.len(), "server {server} out of range");
            if let Some((bytes, level)) = servers[server].tier.lookup_traced(item) {
                drop(servers);
                let mut servers = self.servers.write();
                servers[server].stats.local_hits += 1;
                self.loader_stats.record_cache_read(bytes.len() as u64);
                if level > 0 {
                    self.loader_stats.record_lower_tier_read(bytes.len() as u64);
                }
                return Ok((bytes, FetchOrigin::LocalCache));
            }
        }
        // 2. The remote peer tier: the directory resolves the owner, the
        // peer's cache chain serves the bytes (over the network in the real
        // system — §4.2: 10-40 Gbps beats the local SATA SSD).
        if let Some((bytes, peer)) = self.remote_lookup(server, item) {
            let mut servers = self.servers.write();
            servers[server].stats.remote_hits += 1;
            servers[server].stats.remote_bytes_in += bytes.len() as u64;
            servers[peer].stats.remote_bytes_out += bytes.len() as u64;
            self.loader_stats.record_remote_read(bytes.len() as u64);
            return Ok((bytes, FetchOrigin::RemoteCache(peer)));
        }
        // 3. Backend: read locally, admit into the local tier and register.
        let bytes = Arc::new(self.backend.read(item)?);
        let size = bytes.len() as u64;
        let admitted;
        {
            let servers = self.servers.read();
            let retained = servers[server].tier.admit(item, Arc::clone(&bytes));
            admitted = servers[server].tier.contains(item);
            drop(retained);
        }
        if admitted {
            self.directory.write().insert(item, server);
        }
        {
            let mut servers = self.servers.write();
            servers[server].stats.storage_reads += 1;
            servers[server].stats.storage_bytes += size;
        }
        self.loader_stats.record_storage_read(size);
        Ok((bytes, FetchOrigin::Storage))
    }

    /// Total bytes read from storage across the cluster.
    pub fn total_storage_bytes(&self) -> u64 {
        let servers = self.servers.read();
        servers.iter().map(|s| s.stats.storage_bytes).sum()
    }

    /// Resolve `item` through the directory and read it from the owning
    /// peer's cache chain (`None` when uncached, unowned, or owned by
    /// `server` itself — a racing local eviction).  This is the lookup half
    /// of the remote tier; [`RemotePeerTier`] wraps it as a [`CacheTier`].
    fn remote_lookup(&self, server: usize, item: ItemId) -> Option<(Arc<Vec<u8>>, usize)> {
        let peer = self.directory.read().get(&item).copied()?;
        if peer == server {
            return None;
        }
        let bytes = self.servers.read()[peer].tier.lookup(item)?;
        Some((bytes, peer))
    }

    /// View the cluster's peer caches as one intermediate cache tier from
    /// `server`'s perspective: everything the *other* nodes hold, sitting
    /// between `server`'s local chain and the shared backend.
    pub fn remote_tier(self: &Arc<Self>, server: usize) -> RemotePeerTier {
        assert!(server < self.num_servers(), "server {server} out of range");
        RemotePeerTier {
            cluster: Arc::clone(self),
            server,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }
}

/// The partitioned peer index expressed as a [`CacheTier`]: a read-through
/// view of every *other* server's cache chain, resolved through the item
/// directory.  Lookups serve peer-resident bytes; `admit` is a no-op (peers
/// populate their own tiers when they fetch), so the tier is purely an
/// intermediate level between a node's local chain and the durable store.
pub struct RemotePeerTier {
    cluster: Arc<PartitionedCacheCluster>,
    server: usize,
    // The view carries its own fetch counters: the cluster's per-server
    // stats count cluster.fetch traffic, not accesses made through this
    // adapter.
    hits: AtomicU64,
    misses: AtomicU64,
}

impl CacheTier for RemotePeerTier {
    fn lookup(&self, item: ItemId) -> Option<Arc<Vec<u8>>> {
        match self.cluster.remote_lookup(self.server, item) {
            Some((bytes, _)) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(bytes)
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    fn admit(&self, _item: ItemId, bytes: Arc<Vec<u8>>) -> Arc<Vec<u8>> {
        bytes
    }

    fn contains(&self, item: ItemId) -> bool {
        // The directory alone is not enough: an evicting peer policy can
        // drop a registered item, and `contains` must imply a successful
        // lookup.
        match self.cluster.directory.read().get(&item) {
            Some(&peer) if peer != self.server => self.cluster.tier(peer).contains(item),
            _ => false,
        }
    }

    fn used_bytes(&self) -> u64 {
        self.peers().map(|t| t.used_bytes()).sum()
    }

    fn capacity_bytes(&self) -> u64 {
        self.peers().map(|t| t.capacity_bytes()).sum()
    }

    fn resident_items(&self) -> usize {
        self.peers().map(|t| t.resident_items()).sum()
    }

    fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    fn policy_name(&self) -> &'static str {
        "remote-peers"
    }
}

impl RemotePeerTier {
    fn peers(&self) -> impl Iterator<Item = Arc<dyn CacheTier>> + '_ {
        (0..self.cluster.num_servers())
            .filter(move |&s| s != self.server)
            .map(|s| self.cluster.tier(s))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::MinIoByteCache;
    use crate::DirectBackend;
    use dataset::{DataSource, DatasetSpec, EpochSampler, SyntheticItemStore};

    fn dataset(n: u64, size: u64) -> Arc<SyntheticItemStore> {
        Arc::new(SyntheticItemStore::new(
            DatasetSpec::new("t", n, size, 0.0, 6.0),
            9,
        ))
    }

    /// The historical MinIO-per-server stack, built through the explicit
    /// constructor the sessions use.
    fn minio_cluster(
        dataset: Arc<dyn DataSource>,
        num_servers: usize,
        per_server_cache_bytes: u64,
    ) -> PartitionedCacheCluster {
        let tiers = (0..num_servers)
            .map(|_| Arc::new(MinIoByteCache::new(per_server_cache_bytes)) as Arc<dyn CacheTier>)
            .collect();
        PartitionedCacheCluster::with_stack(
            Arc::new(DirectBackend::new(dataset)),
            tiers,
            Arc::new(LoaderStats::default()),
        )
    }

    /// Run one "epoch": each server fetches its (epoch-varying) shard.
    fn run_epoch(cluster: &PartitionedCacheCluster, n: u64, epoch: u64, servers: usize) {
        let sampler = EpochSampler::new(n, 42);
        for s in 0..servers {
            for item in sampler.distributed_shard(epoch, s, servers) {
                let (bytes, _) = cluster.fetch(s, item).unwrap();
                assert!(!bytes.is_empty());
            }
        }
    }

    #[test]
    fn first_epoch_reads_dataset_from_storage_exactly_once() {
        let n = 100;
        let ds = dataset(n, 100);
        let cluster = minio_cluster(ds, 2, 100 * 100);
        run_epoch(&cluster, n, 0, 2);
        assert_eq!(cluster.total_storage_bytes(), n * 100);
        assert_eq!(cluster.directory_len(), n as usize);
    }

    #[test]
    fn later_epochs_never_touch_storage_when_aggregate_memory_suffices() {
        let n = 100;
        let ds = dataset(n, 100);
        // Each server caches 65 % of the dataset; together they cover it.
        let cluster = minio_cluster(ds, 2, 65 * 100);
        run_epoch(&cluster, n, 0, 2);
        let after_warmup = cluster.total_storage_bytes();
        for epoch in 1..4 {
            run_epoch(&cluster, n, epoch, 2);
        }
        assert_eq!(
            cluster.total_storage_bytes(),
            after_warmup,
            "no storage I/O beyond the first epoch"
        );
        // The epoch-varying shards force remote fetches.
        let remote: u64 = (0..2).map(|s| cluster.stats(s).remote_hits).sum();
        assert!(remote > 0);
        let agg = cluster.aggregate_stats();
        assert_eq!(agg.remote_hits, remote);
        assert_eq!(agg.remote_bytes_in, agg.remote_bytes_out);
    }

    #[test]
    fn remote_fetches_return_identical_bytes_to_storage_reads() {
        let n = 50;
        let ds = dataset(n, 64);
        let cluster = minio_cluster(Arc::clone(&ds) as Arc<dyn DataSource>, 2, 64 * 50);
        run_epoch(&cluster, n, 0, 2);
        for item in 0..n {
            let (a, _) = cluster.fetch(0, item).unwrap();
            let (b, _) = cluster.fetch(1, item).unwrap();
            assert_eq!(a.as_slice(), ds.read(item).as_slice());
            assert_eq!(a, b);
        }
    }

    #[test]
    fn cache_too_small_for_shard_falls_back_to_storage() {
        let n = 100;
        let ds = dataset(n, 100);
        // Each server can cache only 20 items; aggregate 40 < 100.
        let cluster = minio_cluster(ds, 2, 20 * 100);
        for epoch in 0..3 {
            run_epoch(&cluster, n, epoch, 2);
        }
        // Storage is still needed every epoch for the uncached remainder.
        assert!(cluster.total_storage_bytes() > n * 100);
        // But at least the cached fraction is served from DRAM.
        let hits: u64 = (0..2)
            .map(|s| cluster.stats(s).local_hits + cluster.stats(s).remote_hits)
            .sum();
        assert!(hits > 0);
    }

    #[test]
    fn bytes_in_and_out_are_symmetric_across_the_cluster() {
        let n = 80;
        let ds = dataset(n, 128);
        let cluster = minio_cluster(ds, 4, 128 * 80);
        for epoch in 0..3 {
            run_epoch(&cluster, n, epoch, 4);
        }
        let total_in: u64 = (0..4).map(|s| cluster.stats(s).remote_bytes_in).sum();
        let total_out: u64 = (0..4).map(|s| cluster.stats(s).remote_bytes_out).sum();
        assert_eq!(total_in, total_out);
        assert_eq!(cluster.loader_stats().bytes_from_remote(), total_in);
    }

    #[test]
    fn concurrent_fetches_from_all_servers_are_safe() {
        let n = 200;
        let ds = dataset(n, 64);
        let cluster = Arc::new(minio_cluster(ds, 4, 64 * 200));
        // Warm up.
        run_epoch(&cluster, n, 0, 4);
        let mut handles = Vec::new();
        for s in 0..4 {
            let cluster = Arc::clone(&cluster);
            handles.push(std::thread::spawn(move || {
                let sampler = EpochSampler::new(n, 42);
                for item in sampler.distributed_shard(1, s, 4) {
                    let (bytes, origin) = cluster.fetch(s, item).unwrap();
                    assert!(!bytes.is_empty());
                    assert_ne!(origin, FetchOrigin::Storage, "fully cached after warm-up");
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn lru_tiers_slot_into_the_same_cluster_stack() {
        // The pluggable-tier point: a page-cache-like cluster (LRU per node)
        // uses the identical lookup order and directory machinery.
        let n = 60;
        let ds = dataset(n, 100);
        let tiers = (0..2)
            .map(|_| {
                Arc::new(crate::PolicyByteCache::new(
                    dcache::PolicyKind::Lru,
                    100 * 100,
                )) as Arc<dyn CacheTier>
            })
            .collect();
        let cluster = PartitionedCacheCluster::with_stack(
            Arc::new(DirectBackend::new(ds)),
            tiers,
            Arc::new(LoaderStats::default()),
        );
        for epoch in 0..2 {
            run_epoch(&cluster, n, epoch, 2);
        }
        assert_eq!(cluster.total_storage_bytes(), n * 100, "fits: read once");
        assert!(cluster.stats(0).local_hits + cluster.stats(0).remote_hits > 0);
        assert_eq!(cluster.tier(0).policy_name(), "LRU");
    }

    #[test]
    fn remote_peer_tier_expresses_the_peer_index_as_an_intermediate_tier() {
        let n = 40;
        let ds = dataset(n, 100);
        let cluster = Arc::new(minio_cluster(ds, 2, 100 * 100));
        run_epoch(&cluster, n, 0, 2);
        let remote = cluster.remote_tier(0);
        assert_eq!(remote.policy_name(), "remote-peers");
        // Everything node 1 cached is visible to node 0 through the tier;
        // node 0's own items are not (they are its *local* tier).
        let mut seen = 0;
        for item in 0..n {
            let local = cluster.tier(0).contains(item);
            let remote_hit = remote.lookup(item).is_some();
            assert_eq!(remote.contains(item), remote_hit, "item {item}");
            assert!(local ^ remote_hit, "exactly one tier owns item {item}");
            seen += remote_hit as usize;
        }
        assert!(seen > 0, "peer holds part of the dataset");
        // The view counts its own accesses, not the cluster's fetch stats.
        assert_eq!(remote.hits(), seen as u64);
        assert_eq!(CacheTier::misses(&remote), n - seen as u64);
        // With an evicting peer policy, `contains` must track the peer's
        // actual residency, not the (stale) directory registration.
        let lru_tiers = (0..2)
            .map(|_| {
                Arc::new(crate::PolicyByteCache::new(dcache::PolicyKind::Lru, 300))
                    as Arc<dyn CacheTier>
            })
            .collect();
        let lru_cluster = Arc::new(PartitionedCacheCluster::with_stack(
            Arc::new(DirectBackend::new(dataset(40, 100))),
            lru_tiers,
            Arc::new(LoaderStats::default()),
        ));
        for item in 0..20 {
            let _ = lru_cluster.fetch(1, item); // node 1 caches, then thrashes
        }
        let view = lru_cluster.remote_tier(0);
        for item in 0..20 {
            assert_eq!(
                view.contains(item),
                view.lookup(item).is_some(),
                "contains must imply lookup for evicted item {item}"
            );
        }
        // The remote tier never admits: it is read-through by design.
        let before = remote.resident_items();
        let _ = remote.admit(999_999, Arc::new(vec![1, 2, 3]));
        assert_eq!(remote.resident_items(), before);
        assert_eq!(
            CacheTier::capacity_bytes(&remote),
            100 * 100,
            "capacity is the peers' aggregate"
        );
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_server_rejected() {
        let ds = dataset(10, 10);
        let cluster = minio_cluster(ds, 2, 1000);
        let _ = cluster.fetch(5, 0);
    }
}
