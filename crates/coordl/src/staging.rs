//! The cross-job staging area (§4.3).
//!
//! Prepared minibatches are published here by whichever job prepared them and
//! consumed by *every* concurrent job exactly once per epoch.  A minibatch is
//! evicted as soon as its per-batch use counter shows that all jobs have taken
//! it, which keeps the staging area's footprint to a handful of in-flight
//! batches (the paper measures ~5 GB of extra process memory for 8 AlexNet
//! jobs).  Consumers that wait too long for a batch receive a timeout so the
//! job group's failure detector can identify and replace a dead producer.

use crate::minibatch::Minibatch;
use parking_lot::{Condvar, Mutex};
use std::collections::{HashMap, HashSet};
use std::sync::Arc;
use std::time::Duration;

/// Why a `take` call did not return a minibatch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TakeError {
    /// The batch did not appear within the timeout — the responsible producer
    /// may have failed; report to the failure detector.
    Timeout,
    /// The staging area was shut down.
    Shutdown,
}

/// The typed outcome of a [`StagingArea::publish`] call, so producers react
/// to shutdown from the return value instead of polling
/// [`StagingArea::is_shutdown`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[must_use = "producers must stop on PublishOutcome::Shutdown"]
pub enum PublishOutcome {
    /// The batch entered the staging area.
    Published,
    /// The batch was already resident or already fully consumed — a harmless
    /// failure-recovery double publish.
    Duplicate,
    /// The staging area was shut down before the batch could be published;
    /// the producer must stop.
    Shutdown,
}

impl PublishOutcome {
    /// True unless the staging area was shut down.
    pub fn is_live(self) -> bool {
        self != PublishOutcome::Shutdown
    }
}

/// Point-in-time statistics of the staging area.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StagingStats {
    /// Batches currently resident.
    pub resident_batches: usize,
    /// Bytes currently resident.
    pub resident_bytes: u64,
    /// High-water mark of resident bytes since creation.
    pub peak_bytes: u64,
    /// Batches published so far.
    pub published: u64,
    /// Batches fully consumed (by every job) and evicted so far.
    pub evicted: u64,
}

#[derive(Debug)]
struct Slot {
    batch: Arc<Minibatch>,
    consumed_by: HashSet<usize>,
}

#[derive(Debug)]
struct Inner {
    slots: HashMap<usize, Slot>,
    resident_bytes: u64,
    peak_bytes: u64,
    published: u64,
    evicted: u64,
    shutdown: bool,
}

/// A bounded, shared buffer of prepared minibatches with per-batch use
/// counters.
#[derive(Debug)]
pub struct StagingArea {
    inner: Mutex<Inner>,
    available: Condvar,
    space: Condvar,
    num_consumers: usize,
    window: usize,
}

impl StagingArea {
    /// Create a staging area shared by `num_consumers` jobs, holding at most
    /// `window` batches at a time (producer backpressure).
    pub fn new(num_consumers: usize, window: usize) -> Self {
        assert!(num_consumers > 0, "need at least one consumer");
        assert!(window > 0, "window must be positive");
        StagingArea {
            inner: Mutex::new(Inner {
                slots: HashMap::new(),
                resident_bytes: 0,
                peak_bytes: 0,
                published: 0,
                evicted: 0,
                shutdown: false,
            }),
            available: Condvar::new(),
            space: Condvar::new(),
            num_consumers,
            window,
        }
    }

    /// Number of consumer jobs each batch must be taken by before eviction.
    pub fn num_consumers(&self) -> usize {
        self.num_consumers
    }

    /// Publish `batch` (blocking while the window is full).
    ///
    /// Backpressure is expressed relative to consumer progress: batch `i` may
    /// only enter the staging area once every batch below `i - window + 1`
    /// has been fully consumed.  Because consumers take batches in index
    /// order, this bounds resident memory to `window` batches *and*
    /// guarantees that the batch the slowest consumer is waiting for can
    /// always be published (no producer/consumer deadlock even when one
    /// producer runs far ahead of the others).
    ///
    /// Returns [`PublishOutcome::Shutdown`] if the staging area was shut down
    /// before the batch could be published.  Re-publishing an index that is
    /// already resident or already fully consumed (which can happen during
    /// failure recovery) is a harmless no-op reported as
    /// [`PublishOutcome::Duplicate`].
    pub fn publish(&self, batch: Minibatch) -> PublishOutcome {
        let mut inner = self.inner.lock();
        while batch.index >= inner.evicted as usize + self.window && !inner.shutdown {
            self.space.wait(&mut inner);
        }
        if inner.shutdown {
            return PublishOutcome::Shutdown;
        }
        if batch.index < inner.evicted as usize || inner.slots.contains_key(&batch.index) {
            // Already delivered (or in flight): recovery double-publish.
            return PublishOutcome::Duplicate;
        }
        let bytes = batch.payload_bytes();
        inner.resident_bytes += bytes;
        inner.peak_bytes = inner.peak_bytes.max(inner.resident_bytes);
        inner.published += 1;
        inner.slots.insert(
            batch.index,
            Slot {
                batch: Arc::new(batch),
                consumed_by: HashSet::new(),
            },
        );
        self.available.notify_all();
        PublishOutcome::Published
    }

    /// Take minibatch `index` on behalf of consumer `job`, waiting up to
    /// `timeout` for it to be published.
    ///
    /// Each `(job, index)` pair receives the batch exactly once; asking again
    /// after the batch was evicted times out (that is a caller bug — batches
    /// are never reused across epochs).
    pub fn take(
        &self,
        job: usize,
        index: usize,
        timeout: Duration,
    ) -> Result<Arc<Minibatch>, TakeError> {
        assert!(job < self.num_consumers, "job {job} out of range");
        let mut inner = self.inner.lock();
        loop {
            if inner.shutdown {
                return Err(TakeError::Shutdown);
            }
            if let Some(slot) = inner.slots.get_mut(&index) {
                if slot.consumed_by.contains(&job) {
                    // Exactly-once: a repeat take behaves like a missing batch.
                    return Err(TakeError::Timeout);
                }
                slot.consumed_by.insert(job);
                let batch = Arc::clone(&slot.batch);
                if slot.consumed_by.len() == self.num_consumers {
                    let bytes = slot.batch.payload_bytes();
                    inner.slots.remove(&index);
                    inner.resident_bytes -= bytes;
                    inner.evicted += 1;
                    self.space.notify_all();
                }
                return Ok(batch);
            }
            if self.available.wait_for(&mut inner, timeout).timed_out() {
                return Err(TakeError::Timeout);
            }
        }
    }

    /// Shut the staging area down, waking every waiter with an error.
    pub fn shutdown(&self) {
        let mut inner = self.inner.lock();
        inner.shutdown = true;
        self.available.notify_all();
        self.space.notify_all();
    }

    /// Whether the staging area has been shut down.
    pub fn is_shutdown(&self) -> bool {
        self.inner.lock().shutdown
    }

    /// Current statistics.
    pub fn stats(&self) -> StagingStats {
        let inner = self.inner.lock();
        StagingStats {
            resident_batches: inner.slots.len(),
            resident_bytes: inner.resident_bytes,
            peak_bytes: inner.peak_bytes,
            published: inner.published,
            evicted: inner.evicted,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prep::PreparedSample;
    use std::sync::Arc;
    use std::time::Duration;

    fn batch(index: usize, bytes: usize) -> Minibatch {
        Minibatch {
            epoch: 0,
            index,
            samples: vec![PreparedSample {
                item: index as u64,
                epoch: 0,
                augmentation_seed: 0,
                data: vec![0u8; bytes],
            }],
        }
    }

    const T: Duration = Duration::from_millis(200);

    #[test]
    fn publish_then_take_by_all_consumers_evicts() {
        let area = StagingArea::new(2, 4);
        assert_eq!(area.publish(batch(0, 100)), PublishOutcome::Published);
        let a = area.take(0, 0, T).unwrap();
        assert_eq!(a.index, 0);
        assert_eq!(area.stats().resident_batches, 1, "still waiting for job 1");
        let _b = area.take(1, 0, T).unwrap();
        let stats = area.stats();
        assert_eq!(stats.resident_batches, 0, "evicted once all jobs consumed");
        assert_eq!(stats.evicted, 1);
        assert_eq!(stats.resident_bytes, 0);
        assert_eq!(stats.peak_bytes, 100);
    }

    #[test]
    fn take_before_publish_blocks_until_available() {
        let area = Arc::new(StagingArea::new(1, 2));
        let a2 = Arc::clone(&area);
        let consumer = std::thread::spawn(move || a2.take(0, 0, Duration::from_secs(5)));
        std::thread::sleep(Duration::from_millis(50));
        assert_eq!(area.publish(batch(0, 10)), PublishOutcome::Published);
        let got = consumer.join().unwrap().unwrap();
        assert_eq!(got.index, 0);
    }

    #[test]
    fn take_times_out_when_batch_never_arrives() {
        let area = StagingArea::new(1, 2);
        let err = area.take(0, 7, Duration::from_millis(50)).unwrap_err();
        assert_eq!(err, TakeError::Timeout);
    }

    #[test]
    fn double_take_by_same_job_is_refused() {
        let area = StagingArea::new(2, 2);
        let _ = area.publish(batch(0, 10));
        area.take(0, 0, T).unwrap();
        let err = area.take(0, 0, Duration::from_millis(30)).unwrap_err();
        assert_eq!(err, TakeError::Timeout);
    }

    #[test]
    fn window_applies_backpressure_to_producers() {
        let area = Arc::new(StagingArea::new(1, 2));
        let _ = area.publish(batch(0, 10));
        let _ = area.publish(batch(1, 10));
        let a2 = Arc::clone(&area);
        let producer = std::thread::spawn(move || a2.publish(batch(2, 10)));
        std::thread::sleep(Duration::from_millis(50));
        assert_eq!(area.stats().resident_batches, 2, "third publish must wait");
        // Consuming batch 0 frees a slot.
        area.take(0, 0, T).unwrap();
        assert_eq!(producer.join().unwrap(), PublishOutcome::Published);
        assert_eq!(area.stats().published, 3);
    }

    #[test]
    fn recovery_double_publish_is_reported_as_duplicate() {
        let area = StagingArea::new(2, 4);
        assert_eq!(area.publish(batch(0, 10)), PublishOutcome::Published);
        assert_eq!(area.publish(batch(0, 10)), PublishOutcome::Duplicate);
        // Fully consumed and evicted: re-publishing is still a duplicate.
        area.take(0, 0, T).unwrap();
        area.take(1, 0, T).unwrap();
        assert_eq!(area.publish(batch(0, 10)), PublishOutcome::Duplicate);
        assert_eq!(area.stats().published, 1);
    }

    #[test]
    fn shutdown_wakes_blocked_consumers_and_producers() {
        let area = Arc::new(StagingArea::new(1, 1));
        let _ = area.publish(batch(0, 10));
        let a2 = Arc::clone(&area);
        let blocked_producer = std::thread::spawn(move || a2.publish(batch(1, 10)));
        let a3 = Arc::clone(&area);
        let blocked_consumer = std::thread::spawn(move || a3.take(0, 99, Duration::from_secs(10)));
        std::thread::sleep(Duration::from_millis(50));
        area.shutdown();
        let outcome = blocked_producer.join().unwrap();
        assert_eq!(
            outcome,
            PublishOutcome::Shutdown,
            "publish reports shutdown"
        );
        assert!(!outcome.is_live());
        assert_eq!(
            blocked_consumer.join().unwrap().unwrap_err(),
            TakeError::Shutdown
        );
        assert!(area.is_shutdown());
    }

    #[test]
    fn memory_overhead_stays_bounded_by_window() {
        // The paper's Figure 20 claim: coordinated prep only holds a few
        // minibatches at a time.
        let area = Arc::new(StagingArea::new(1, 3));
        let a2 = Arc::clone(&area);
        let producer = std::thread::spawn(move || {
            for i in 0..50 {
                assert_eq!(a2.publish(batch(i, 1000)), PublishOutcome::Published);
            }
        });
        for i in 0..50 {
            let mb = area.take(0, i, Duration::from_secs(5)).unwrap();
            assert_eq!(mb.index, i);
            assert!(area.stats().resident_bytes <= 3 * 1000);
        }
        producer.join().unwrap();
        let stats = area.stats();
        assert_eq!(stats.published, 50);
        assert_eq!(stats.evicted, 50);
        assert!(stats.peak_bytes <= 3 * 1000);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_job_rejected() {
        let area = StagingArea::new(2, 2);
        let _ = area.take(5, 0, T);
    }
}
