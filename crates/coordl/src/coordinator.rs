//! Coordinated prep: one fetch + prep sweep per epoch shared by all
//! concurrent hyper-parameter-search jobs (§4.3).
//!
//! The engine here ([`EpochSession`], [`JobEpochIterator`]) is what a
//! [`Session`](crate::Session) in [`Mode::Coordinated`](crate::Mode) runs
//! on.  All jobs of an epoch share **one prefetching executor** (the
//! crate's `executor` module): a single fetch thread sweeps the epoch's
//! batches
//! in training order (so the shared cache tier sees a deterministic access
//! sequence) and a pool of prep workers pre-processes them in parallel,
//! publishing each prepared minibatch into the [`StagingArea`] exactly once
//! — the cache-once-serve-all invariant.  Every job then consumes the
//! *entire* epoch — every minibatch exactly once — through its
//! [`JobEpochIterator`].
//!
//! For failure attribution each minibatch still *belongs* to a job: batch
//! `i` is job `i % num_jobs`'s responsibility (its "shard"), and per-shard
//! watermarks track the contiguous prefix already published.  When a job is
//! killed mid-epoch ([`EpochSession::inject_failure`]) its shard's batches
//! stop flowing; a consumer that times out waiting identifies the dead
//! shard and spawns a *recovery producer* that resumes it from the
//! watermark (mirroring §4.3's "Handling job failures and terminations").
//!
//! The session's [`Session::coordinated_epoch`](crate::Session) hands the
//! raw [`EpochSession`] out for callers that drive epochs manually.

use crate::error::CoordlError;
use crate::executor::{ExecutorShared, ExecutorSpec, PrefetchExecutor, PreparedSink, SkipFn};
use crate::minibatch::Minibatch;
use crate::stack::LoaderStack;
use crate::staging::{PublishOutcome, StagingArea, TakeError};
use dataset::{minibatches, EpochSampler, ItemId};
use parking_lot::Mutex;
use std::collections::BTreeSet;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// The coordinated-prep engine: everything needed to run shared epochs.
pub(crate) struct CoordinatedEngine {
    pub(crate) stack: LoaderStack,
    pub(crate) dataset_len: u64,
    pub(crate) num_jobs: usize,
    pub(crate) batch_size: usize,
    pub(crate) staging_window: usize,
    pub(crate) seed: u64,
    pub(crate) take_timeout: Duration,
    /// Prep workers in the shared pool (shared by all jobs of the session).
    pub(crate) num_workers: usize,
    /// Raw batches buffered between the fetch thread and the prep pool.
    pub(crate) prefetch_depth: usize,
    /// Fetch-stage threads (1 = the serial sweep; more = the sharded pool).
    pub(crate) fetch_threads: usize,
    /// Cache shards the pool's key-ownership map is computed against.
    pub(crate) fetch_shards: usize,
}

impl CoordinatedEngine {
    /// Start one coordinated epoch.
    pub(crate) fn run_epoch(&self, epoch: u64) -> EpochSession {
        let sampler = EpochSampler::new(self.dataset_len, self.seed);
        let order = sampler.permutation(epoch);
        let batches: Vec<Vec<ItemId>> = minibatches(&order, self.batch_size);
        let total = batches.len();
        let num_jobs = self.num_jobs;

        let staging = Arc::new(StagingArea::new(num_jobs, self.staging_window));
        // Round-robin shard *ownership* (failure attribution): batch index
        // i belongs to job i % num_jobs.  Recovery producers replay a
        // shard's ordered batch list from its watermark.
        let shards: Vec<Vec<(usize, Vec<ItemId>)>> = (0..num_jobs)
            .map(|j| {
                batches
                    .iter()
                    .enumerate()
                    .skip(j)
                    .step_by(num_jobs)
                    .map(|(i, b)| (i, b.clone()))
                    .collect()
            })
            .collect();

        let state = Arc::new(ProducerState {
            handles: Mutex::new(Vec::new()),
            progress: (0..num_jobs)
                .map(|_| Mutex::new(ShardProgress::default()))
                .collect(),
            kill_flags: (0..num_jobs)
                .map(|_| Arc::new(AtomicBool::new(false)))
                .collect(),
            recovered: (0..num_jobs).map(|_| AtomicBool::new(false)).collect(),
        });

        // One shared executor per epoch: the fetch thread sweeps every batch
        // in training order; the prep pool publishes into the staging area.
        // Batches of a killed job are dropped at dispatch so its work
        // disappears mid-epoch, exactly like a dying producer's would.
        let plan: Vec<(usize, Vec<ItemId>)> = batches.into_iter().enumerate().collect();
        let kill_flags = state.kill_flags.clone();
        let skip: Arc<SkipFn> =
            Arc::new(move |index: usize| kill_flags[index % num_jobs].load(Ordering::SeqCst));
        let sink = Arc::new(StagingSink {
            staging: Arc::clone(&staging),
            state: Arc::clone(&state),
            num_jobs,
        });
        let executor = PrefetchExecutor::spawn(ExecutorSpec {
            epoch,
            batches: plan,
            fetch: self.stack.fetch_fn(),
            skip: Some(skip),
            pipeline: Arc::clone(&self.stack.pipeline),
            stats: Arc::clone(&self.stack.stats),
            sink,
            workers: self.num_workers,
            prefetch_depth: self.prefetch_depth,
            fetch_threads: self.fetch_threads,
            fetch_shards: self.fetch_shards,
        });
        let shared = Arc::clone(executor.shared());

        EpochSession {
            epoch,
            total,
            shards: Arc::new(shards),
            staging,
            state,
            stack: self.stack.clone(),
            take_timeout: self.take_timeout,
            executor,
            shared,
        }
    }
}

/// Contiguous-published tracking for one shard: the prep pool publishes a
/// shard's batches slightly out of order, but recovery must resume from a
/// position below which *everything* is durably published.
#[derive(Default)]
struct ShardProgress {
    /// Lowest shard position not yet published.
    next: usize,
    /// Published positions above `next` (gaps still open).
    done: BTreeSet<usize>,
}

/// Shared state of one epoch's shards, used for failure detection.
struct ProducerState {
    /// Recovery producer threads (the main pool belongs to the executor).
    handles: Mutex<Vec<JoinHandle<()>>>,
    /// Out-of-order publish tracking per shard; `ShardProgress::next` is
    /// the contiguous published prefix recovery resumes from.
    progress: Vec<Mutex<ShardProgress>>,
    /// Kill switches used by tests (and by `inject_failure`) to simulate a
    /// job being terminated mid-epoch.
    kill_flags: Vec<Arc<AtomicBool>>,
    /// Whether a recovery producer has already been launched for a shard.
    recovered: Vec<AtomicBool>,
}

impl ProducerState {
    /// Record that epoch batch `index` was published (or found already
    /// resident) and advance its shard's contiguous watermark.
    fn mark_published(&self, index: usize, num_jobs: usize) {
        let shard = index % num_jobs;
        let pos = index / num_jobs;
        let mut progress = self.progress[shard].lock();
        if pos >= progress.next {
            progress.done.insert(pos);
            loop {
                let next = progress.next;
                if !progress.done.remove(&next) {
                    break;
                }
                progress.next += 1;
            }
        }
    }

    /// The contiguous prefix of `shard`'s batch list already published.
    fn watermark(&self, shard: usize) -> usize {
        self.progress[shard].lock().next
    }
}

/// The executor sink for coordinated epochs: publish into the staging area
/// and keep the per-shard watermarks current.
struct StagingSink {
    staging: Arc<StagingArea>,
    state: Arc<ProducerState>,
    num_jobs: usize,
}

impl PreparedSink for StagingSink {
    fn publish(&self, mb: Minibatch) -> bool {
        let index = mb.index;
        match self.staging.publish(mb) {
            PublishOutcome::Shutdown => false,
            PublishOutcome::Published | PublishOutcome::Duplicate => {
                self.state.mark_published(index, self.num_jobs);
                true
            }
        }
    }
}

/// The per-shard minibatch plan for one epoch: for each shard, the ordered
/// `(batch_index, items)` pairs its producer prepares.
type ShardPlan = Arc<Vec<Vec<(usize, Vec<ItemId>)>>>;

/// One epoch of coordinated prep: the shared prefetching executor running in
/// the background plus per-job consumers.
pub struct EpochSession {
    epoch: u64,
    total: usize,
    shards: ShardPlan,
    staging: Arc<StagingArea>,
    state: Arc<ProducerState>,
    stack: LoaderStack,
    take_timeout: Duration,
    executor: PrefetchExecutor,
    shared: Arc<ExecutorShared>,
}

impl EpochSession {
    /// Total minibatches per job this epoch.
    pub fn total_batches(&self) -> usize {
        self.total
    }

    /// The staging area (for memory-overhead inspection).
    pub fn staging(&self) -> &StagingArea {
        &self.staging
    }

    /// The shared staging-area handle (survives the session for post-drop
    /// statistics).
    pub(crate) fn staging_arc(&self) -> &Arc<StagingArea> {
        &self.staging
    }

    /// Simulate the user killing job `job` mid-epoch: its producer stops
    /// publishing new minibatches.  Consumers will detect the failure and the
    /// group will spawn a replacement producer for its shard.
    pub fn inject_failure(&self, job: usize) {
        self.state.kill_flags[job].store(true, Ordering::SeqCst);
    }

    /// The consumer-side iterator for `job`.
    pub fn consumer(&self, job: usize) -> JobEpochIterator {
        assert!(job < self.shards.len(), "job {job} out of range");
        JobEpochIterator {
            job,
            next: 0,
            total: self.total,
            staging: Arc::clone(&self.staging),
            state: Arc::clone(&self.state),
            shards: Arc::clone(&self.shards),
            stack: self.stack.clone(),
            epoch: self.epoch,
            take_timeout: self.take_timeout,
            shared: Arc::clone(&self.shared),
        }
    }
}

impl Drop for EpochSession {
    fn drop(&mut self) {
        // Order matters for a deadlock-free teardown: shutting the staging
        // area down first wakes any prep worker blocked in `publish`, so the
        // executor's pool (and then its fetch thread) can drain and join.
        self.staging.shutdown();
        self.executor.shutdown_and_join();
        let mut handles = self.state.handles.lock();
        for h in handles.drain(..) {
            let _ = h.join();
        }
    }
}

/// A recovery producer: sequentially re-fetch, re-prep and publish one
/// shard's batches from its watermark after the owning job died.
#[allow(clippy::too_many_arguments)]
fn spawn_recovery_thread(
    epoch: u64,
    shard: usize,
    from: usize,
    shards: ShardPlan,
    stack: LoaderStack,
    staging: Arc<StagingArea>,
    state: Arc<ProducerState>,
    shared: Arc<ExecutorShared>,
) -> JoinHandle<()> {
    std::thread::spawn(move || {
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            let my_batches = &shards[shard];
            let num_jobs = shards.len();
            for (index, items) in my_batches.iter().skip(from) {
                let samples = match stack.prepare(epoch, items) {
                    Ok(samples) => samples,
                    Err(err) => {
                        // A typed backend failure during recovery surfaces
                        // like a recovery panic: recorded once, consumers
                        // see the real cause.
                        shared.record_error(err);
                        return;
                    }
                };
                let outcome = staging.publish(Minibatch {
                    epoch,
                    index: *index,
                    samples,
                });
                if outcome == PublishOutcome::Shutdown {
                    return;
                }
                state.mark_published(*index, num_jobs);
            }
        }));
        if let Err(payload) = outcome {
            shared.record_recovery_panic(payload);
        }
    })
}

/// Iterator over one job's view of a coordinated epoch.
///
/// Yields every minibatch of the epoch exactly once, in training order.  If a
/// producer dies, the iterator transparently triggers recovery; only if
/// recovery itself fails does it yield an error.
pub struct JobEpochIterator {
    job: usize,
    next: usize,
    total: usize,
    staging: Arc<StagingArea>,
    state: Arc<ProducerState>,
    shards: ShardPlan,
    stack: LoaderStack,
    epoch: u64,
    take_timeout: Duration,
    shared: Arc<ExecutorShared>,
}

impl JobEpochIterator {
    /// Handle a take timeout for batch `index`: identify the responsible
    /// shard, and if it is not yet recovered spawn a recovery producer
    /// resuming from its watermark.  Returns `true` when a retry is
    /// worthwhile.
    fn handle_timeout(&self, index: usize) -> bool {
        let num_jobs = self.shards.len();
        let shard = index % num_jobs;
        // Only recover once per shard.
        if self.state.recovered[shard].swap(true, Ordering::SeqCst) {
            return true; // recovery already in flight; retry the take
        }
        let from = self.state.watermark(shard);
        let handle = spawn_recovery_thread(
            self.epoch,
            shard,
            from,
            Arc::clone(&self.shards),
            self.stack.clone(),
            Arc::clone(&self.staging),
            Arc::clone(&self.state),
            Arc::clone(&self.shared),
        );
        self.state.handles.lock().push(handle);
        true
    }
}

impl Iterator for JobEpochIterator {
    type Item = Result<Arc<Minibatch>, CoordlError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.next >= self.total {
            return None;
        }
        let index = self.next;
        let mut attempts = 0;
        loop {
            let wait = Instant::now();
            let taken = self.staging.take(self.job, index, self.take_timeout);
            self.stack.stats.record_consumer_wait(wait.elapsed());
            match taken {
                Ok(batch) => {
                    self.next += 1;
                    self.stack.stats.record_delivered(batch.len() as u64);
                    return Some(Ok(batch));
                }
                Err(TakeError::Shutdown) => return Some(Err(CoordlError::Shutdown)),
                Err(TakeError::Timeout) => {
                    // A panicked worker explains the missing batch better
                    // than a producer-failure guess does.
                    if let Some(err) = self.shared.failure() {
                        return Some(Err(err));
                    }
                    attempts += 1;
                    if attempts > 3 || !self.handle_timeout(index) {
                        return Some(Err(CoordlError::ProducerFailed {
                            job: index % self.shards.len(),
                            batch: index,
                        }));
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::{Mode, Session, SessionConfig};
    use dataset::{DataSource, DatasetSpec, SyntheticItemStore};
    use prep::{ExecutablePipeline, PrepPipeline};
    use std::collections::HashSet;

    /// A coordinated session driven through the raw engine surface
    /// ([`Session::coordinated_epoch`]), which is what these tests exercise.
    fn group(num_jobs: usize, items: u64, batch: usize, cache_bytes: u64) -> Session {
        let spec = DatasetSpec::new("t", items, 128, 0.2, 6.0);
        let store: Arc<dyn DataSource> = Arc::new(SyntheticItemStore::new(spec, 5));
        let pipeline = ExecutablePipeline::new(PrepPipeline::image_classification(), 6, 17);
        Session::builder(
            store,
            SessionConfig {
                batch_size: batch,
                staging_window: 6,
                seed: 3,
                cache_capacity_bytes: cache_bytes,
                take_timeout: Duration::from_millis(250),
                ..SessionConfig::default()
            },
        )
        .mode(Mode::Coordinated { jobs: num_jobs })
        .pipeline(pipeline)
        .build()
        .expect("valid config")
    }

    /// Drain every job's iterator on its own thread (jobs run concurrently in
    /// HP search) and return the per-job item sequences.
    fn drain_all(session: &EpochSession, num_jobs: usize) -> Vec<Vec<u64>> {
        let mut joins = Vec::new();
        for j in 0..num_jobs {
            let mut it = session.consumer(j);
            joins.push(std::thread::spawn(move || {
                let mut items = Vec::new();
                for mb in &mut it {
                    items.extend(mb.expect("no failure").item_ids());
                }
                items
            }));
        }
        joins.into_iter().map(|h| h.join().unwrap()).collect()
    }

    #[test]
    fn every_job_sees_the_whole_epoch_exactly_once() {
        let g = group(4, 120, 16, 1 << 20);
        let session = g.coordinated_epoch(0);
        let per_job = drain_all(&session, 4);
        for items in &per_job {
            assert_eq!(items.len(), 120);
            let set: HashSet<_> = items.iter().collect();
            assert_eq!(set.len(), 120, "exactly-once per job per epoch");
        }
        // All jobs see the same training order (they share the epoch sweep).
        assert!(per_job.windows(2).all(|w| w[0] == w[1]));
    }

    #[test]
    fn dataset_is_fetched_and_prepared_once_for_all_jobs() {
        let g = group(4, 80, 10, 1 << 20);
        {
            let session = g.coordinated_epoch(0);
            let _ = drain_all(&session, 4);
        }
        // Prep happened once per item, not once per item per job.
        assert_eq!(g.stats().samples_prepared(), 80);
        // Every raw byte was read from storage exactly once (MinIO cached it).
        let expected: u64 = {
            let spec = DatasetSpec::new("t", 80, 128, 0.2, 6.0);
            (0..80).map(|i| spec.item_size(i)).sum()
        };
        assert_eq!(g.stats().bytes_from_storage(), expected);
        // But every job received the full epoch.
        assert_eq!(g.stats().samples_delivered(), 4 * 80);
    }

    #[test]
    fn second_epoch_reuses_the_minio_cache() {
        let g = group(2, 60, 10, 1 << 20);
        {
            let s = g.coordinated_epoch(0);
            let _ = drain_all(&s, 2);
        }
        let after_first = g.stats().bytes_from_storage();
        {
            let s = g.coordinated_epoch(1);
            let _ = drain_all(&s, 2);
        }
        assert_eq!(g.stats().bytes_from_storage(), after_first);
    }

    #[test]
    fn augmentations_are_fresh_each_epoch_but_shared_across_jobs() {
        let g = group(2, 20, 5, 1 << 20);
        let collect = |epoch| {
            let s = g.coordinated_epoch(epoch);
            let mut per_job = Vec::new();
            for j in 0..2 {
                let samples: Vec<_> = s
                    .consumer(j)
                    .flat_map(|mb| mb.unwrap().samples.clone())
                    .collect();
                per_job.push(samples);
            }
            per_job
        };
        // NOTE: consumers here run sequentially, which works because the
        // staging window (6) exceeds the number of batches (4).
        let e0 = collect(0);
        let e1 = collect(1);
        // Jobs share identical prepared samples within an epoch...
        assert_eq!(e0[0], e0[1]);
        // ...but the same item is augmented differently across epochs.
        let find = |set: &Vec<prep::PreparedSample>, item: u64| {
            set.iter().find(|s| s.item == item).unwrap().clone()
        };
        assert_ne!(
            find(&e0[0], 7).augmentation_seed,
            find(&e1[0], 7).augmentation_seed
        );
    }

    #[test]
    fn staging_memory_stays_bounded() {
        let g = group(2, 200, 10, 1 << 22);
        let session = g.coordinated_epoch(0);
        let _ = drain_all(&session, 2);
        let stats = session.staging().stats();
        assert_eq!(stats.published, 20);
        assert_eq!(stats.evicted, 20);
        // The window is 6 batches; peak memory must respect it.
        let max_batch_bytes = 10 * 128 * 7; // batch * raw * (decode multiplier + slack)
        assert!(stats.peak_bytes <= 6 * max_batch_bytes as u64);
    }

    #[test]
    fn killed_producer_is_detected_and_its_shard_recovered() {
        let g = group(2, 120, 10, 1 << 22);
        let session = g.coordinated_epoch(0);
        // Kill job 1's producer immediately: its shard (odd batch indices)
        // must be taken over by a recovery producer.
        session.inject_failure(1);
        let per_job = drain_all(&session, 2);
        for items in &per_job {
            assert_eq!(items.len(), 120, "full epoch despite the failure");
            let set: HashSet<_> = items.iter().collect();
            assert_eq!(set.len(), 120);
        }
    }

    #[test]
    fn invalid_configs_are_rejected() {
        let spec = DatasetSpec::new("t", 10, 64, 0.0, 6.0);
        let store: Arc<dyn DataSource> = Arc::new(SyntheticItemStore::new(spec, 1));
        let bad = Session::builder(store, SessionConfig::default())
            .mode(Mode::Coordinated { jobs: 0 })
            .build();
        assert!(matches!(bad, Err(CoordlError::InvalidConfig(_))));
    }

    #[test]
    fn single_job_group_degenerates_to_a_plain_loader() {
        let g = group(1, 50, 8, 1 << 20);
        let session = g.coordinated_epoch(0);
        let items: Vec<u64> = session
            .consumer(0)
            .flat_map(|mb| mb.unwrap().item_ids())
            .collect();
        assert_eq!(items.len(), 50);
    }

    #[test]
    fn consumer_mid_epoch_sees_typed_shutdown_when_the_session_is_dropped() {
        // Satellite invariant: dropping the epoch session shuts the staging
        // area down, and in-flight consumers observe CoordlError::Shutdown
        // as a typed outcome instead of hanging or panicking.
        let g = group(2, 400, 10, 1 << 22);
        let session = g.coordinated_epoch(0);
        let mut consumer = session.consumer(0);
        let first = consumer.next().expect("epoch has batches");
        assert!(first.is_ok());
        drop(session); // shutdown + join producers
        let mut saw_shutdown = false;
        for outcome in consumer.by_ref() {
            match outcome {
                Ok(_) => continue, // already-staged batches may still drain
                Err(CoordlError::Shutdown) => {
                    saw_shutdown = true;
                    break;
                }
                Err(other) => panic!("expected Shutdown, got {other}"),
            }
        }
        assert!(saw_shutdown, "consumer must observe the typed shutdown");
    }
}
