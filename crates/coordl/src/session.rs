//! The unified CoorDL runtime API: one [`Session`] builder for every
//! loading mode, mirroring the simulator's `pipeline::Experiment`.
//!
//! A session describes *one workload* — a dataset, a prep pipeline, a cache
//! tier over a fetch backend — and a [`Mode`] describing how it is consumed:
//!
//! * [`Mode::Single`] — one job, a multi-threaded fetch → prep → collate
//!   worker pool (the classic data loader),
//! * [`Mode::Coordinated`] — `jobs` concurrent HP-search jobs sharing one
//!   fetch + prep sweep per epoch through the staging area (§4.3),
//! * [`Mode::Partitioned`] — `nodes` servers of a distributed job, each
//!   caching a shard and serving peers' misses (§4.2).
//!
//! Every mode hands out per-job [`BatchStream`] iterators from
//! [`Session::epoch`] and records per-epoch [`EpochTrajectory`] deltas, so
//! one [`LoaderReport`] describes any run — which is what `dstool validate`
//! diffs against the simulator's predictions.
//!
//! ```
//! use coordl::{Mode, Session, SessionConfig};
//! use dataset::{DatasetSpec, SyntheticItemStore};
//! use std::sync::Arc;
//!
//! let store = Arc::new(SyntheticItemStore::new(
//!     DatasetSpec::new("doc", 64, 256, 0.0, 4.0),
//!     1,
//! ));
//! let session = Session::builder(store, SessionConfig::default())
//!     .mode(Mode::Coordinated { jobs: 2 })
//!     .build()
//!     .unwrap();
//! let run = session.epoch(0);
//! for job in 0..2 {
//!     assert_eq!(run.stream(job).count(), session.batches_per_epoch());
//! }
//! drop(run);
//! assert_eq!(session.report().epochs.len(), 1);
//! ```

use crate::coordinator::{CoordinatedEngine, EpochSession, JobEpochIterator};
use crate::error::CoordlError;
use crate::executor::{spawn_ordered_epoch, FetchFn, OrderedStream};
use crate::fault::FaultPlan;
use crate::minibatch::Minibatch;
use crate::partition::PartitionedCacheCluster;
use crate::report::{EpochTrajectory, LoaderReport};
use crate::stack::{spawn_single_epoch, LoaderStack};
use crate::staging::{StagingArea, StagingStats};
use crate::stats::LoaderStats;
use crate::tier::{ByteTierSpec, CacheTier, TierSnapshot, TieredByteCache};
use crate::{DirectBackend, FetchBackend, ProfiledBackend};
use dataset::{minibatches, DataSource, EpochSampler, ItemId};
use dcache::PolicyKind;
use parking_lot::Mutex;
use prep::{ExecutablePipeline, PrepPipeline};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// How a session's workload is consumed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// One job on one server (the classic data loader).
    Single,
    /// `jobs` concurrent same-dataset jobs sharing one fetch + prep sweep
    /// per epoch (coordinated prep, §4.3).
    Coordinated {
        /// Number of concurrent HP-search jobs.
        jobs: usize,
    },
    /// One data-parallel job over `nodes` servers with partitioned caching
    /// (§4.2): each node sweeps a random per-epoch shard, local misses are
    /// served from peer caches before storage.
    Partitioned {
        /// Number of servers, each contributing one cache tier.
        nodes: usize,
    },
}

impl Mode {
    /// Short mode name used in reports.
    pub fn name(&self) -> &'static str {
        match self {
            Mode::Single => "single",
            Mode::Coordinated { .. } => "coordinated",
            Mode::Partitioned { .. } => "partitioned",
        }
    }

    /// Number of per-epoch streams this mode hands out.
    pub fn num_jobs(&self) -> usize {
        match self {
            Mode::Single => 1,
            Mode::Coordinated { jobs } => *jobs,
            Mode::Partitioned { nodes } => *nodes,
        }
    }
}

/// Configuration shared by every session mode.
#[derive(Debug, Clone)]
pub struct SessionConfig {
    /// Samples per minibatch.
    pub batch_size: usize,
    /// Prep worker threads per epoch executor: the single-mode pool, the
    /// pool *shared by all jobs* of a coordinated session, or each
    /// partitioned node's pool.  Worker count never changes what a job
    /// observes — streams and counter statistics are bit-identical for any
    /// value (see [`SessionBuilder::workers`]).
    pub num_workers: usize,
    /// Raw minibatches prefetched ahead of the prep pool (and prepared
    /// minibatches buffered ahead of a single/partitioned consumer).
    pub prefetch_depth: usize,
    /// Seed for the per-epoch shuffle (shared by all jobs of a session).
    pub seed: u64,
    /// Cache capacity in bytes — of the one shared tier (single,
    /// coordinated) or of *each* node's tier (partitioned).
    pub cache_capacity_bytes: u64,
    /// Maximum minibatches resident in the coordinated staging area.
    pub staging_window: usize,
    /// How long a coordinated consumer waits before invoking the failure
    /// detector.
    pub take_timeout: Duration,
    /// Fetch-stage threads per epoch executor (default 1: the serial sweep
    /// every baseline digest was produced with).  With `f > 1` the fetch
    /// stage becomes a sharded pool: items are partitioned across the
    /// threads by cache-shard ownership, so streams and counters stay
    /// bit-identical across `f` for a fixed [`SessionConfig::fetch_shards`]
    /// (see [`SessionBuilder::fetch_threads`]).
    pub fetch_threads: usize,
    /// Cache shards of the session's tier(s), and therefore of the fetch
    /// pool's key-ownership map.  `0` (the default) resolves automatically:
    /// 1 shard when `fetch_threads == 1` (the exact legacy tier), or
    /// [`DEFAULT_FETCH_SHARDS`] when the pool is on.  Explicit values must
    /// be `>= fetch_threads` so every pool thread owns at least one shard.
    pub fetch_shards: usize,
}

/// Shard count a `fetch_threads > 1` session resolves `fetch_shards = 0`
/// to.  Eight shards keep per-shard capacity splits coarse enough for the
/// small test datasets while giving a 4-thread pool two shards per thread.
pub const DEFAULT_FETCH_SHARDS: usize = 8;

impl Default for SessionConfig {
    fn default() -> Self {
        SessionConfig {
            batch_size: 32,
            num_workers: 2,
            prefetch_depth: 4,
            seed: 0x5EED,
            cache_capacity_bytes: 256 * 1024 * 1024,
            staging_window: 8,
            take_timeout: Duration::from_secs(2),
            fetch_threads: 1,
            fetch_shards: 0,
        }
    }
}

impl SessionConfig {
    /// The shard count the session's tiers and fetch pool actually use:
    /// [`SessionConfig::fetch_shards`], with `0` resolved to 1 shard for a
    /// serial session (bit-identical to the pre-sharding tier) or
    /// [`DEFAULT_FETCH_SHARDS`] for a pool.
    pub fn resolved_fetch_shards(&self) -> usize {
        match self.fetch_shards {
            0 if self.fetch_threads <= 1 => 1,
            0 => DEFAULT_FETCH_SHARDS,
            s => s,
        }
    }
}

enum TierChoice {
    Policy(PolicyKind),
    Tiers(Vec<ByteTierSpec>),
    Custom(Arc<dyn CacheTier>),
}

/// Builder for a [`Session`]; start from [`Session::builder`].
pub struct SessionBuilder {
    dataset: Arc<dyn DataSource>,
    config: SessionConfig,
    mode: Mode,
    pipeline: Option<ExecutablePipeline>,
    backend: Option<Arc<dyn FetchBackend>>,
    profile: Option<storage::DeviceProfile>,
    tier: TierChoice,
    fault_plan: Option<FaultPlan>,
}

impl SessionBuilder {
    /// Select the session mode (default: [`Mode::Single`]).
    pub fn mode(mut self, mode: Mode) -> Self {
        self.mode = mode;
        self
    }

    /// Size the epoch executor's prep-worker pool (overrides
    /// [`SessionConfig::num_workers`]).
    ///
    /// Parallelism is an implementation detail of *when* work happens, never
    /// of *what* is computed: every cache transaction runs sequentially in
    /// training order on one fetch thread, so `workers(1)` and `workers(n)`
    /// yield bit-identical minibatch streams and [`LoaderStats`] counters
    /// (pinned by `tests/parallel_session_equivalence.rs`).
    pub fn workers(mut self, n: usize) -> Self {
        self.config.num_workers = n;
        self
    }

    /// Set how many raw minibatches the fetch thread runs ahead of the prep
    /// pool (overrides [`SessionConfig::prefetch_depth`]).  Like the worker
    /// count, depth only trades memory for overlap — the delivered streams
    /// and statistics are identical for any value.
    pub fn prefetch_depth(mut self, depth: usize) -> Self {
        self.config.prefetch_depth = depth;
        self
    }

    /// Size the fetch stage (overrides [`SessionConfig::fetch_threads`];
    /// default 1, the serial sweep).
    ///
    /// With `f > 1` each epoch's plan is partitioned by cache-shard
    /// ownership (`dcache::shard_of_key`, the same FNV-style routing the
    /// sharded tiers use): pool thread `t` fetches exactly the items of
    /// shards `{k : k % f == t}`, so every tier transaction on a given key
    /// still happens on one thread, in plan order for that shard.  For a
    /// fixed [`SessionBuilder::fetch_shards`] count, streams *and* counters
    /// are bit-identical across any `f` (pinned by
    /// `tests/parallel_fetch_equivalence.rs`); changing the shard count
    /// changes the per-shard capacity split and may change eviction
    /// decisions, which is why `fetch_threads(1)` defaults to the 1-shard
    /// legacy tier.
    pub fn fetch_threads(mut self, f: usize) -> Self {
        self.config.fetch_threads = f;
        self
    }

    /// Pin the cache-shard count the session's tiers (and the fetch pool's
    /// ownership map) use, instead of the automatic resolution described on
    /// [`SessionConfig::fetch_shards`].  Pin this when comparing runs across
    /// different `fetch_threads` values — equal shard counts is what makes
    /// the comparison bit-identical.
    pub fn fetch_shards(mut self, shards: usize) -> Self {
        self.config.fetch_shards = shards;
        self
    }

    /// Set the executable prep pipeline.  Defaults to the image
    /// classification pipeline with decode multiplier 6, seeded from the
    /// session seed.
    pub fn pipeline(mut self, pipeline: ExecutablePipeline) -> Self {
        self.pipeline = Some(pipeline);
        self
    }

    /// Use a `coordl-cache` replacement policy for the cache tier(s)
    /// (default: [`PolicyKind::MinIo`]).
    pub fn cache_policy(mut self, kind: PolicyKind) -> Self {
        self.tier = TierChoice::Policy(kind);
        self
    }

    /// Use a multi-level cache hierarchy (DRAM spilling into a profiled
    /// local-SSD tier, and so on) for the cache tier(s): one
    /// [`TieredByteCache`] shared by single/coordinated sessions, or one per
    /// node in partitioned mode.  Overrides
    /// [`SessionConfig::cache_capacity_bytes`] with the specs' own sizes.
    pub fn cache_tiers(mut self, tiers: Vec<ByteTierSpec>) -> Self {
        self.tier = TierChoice::Tiers(tiers);
        self
    }

    /// Use a custom cache tier (single and coordinated modes only — the
    /// partitioned mode builds one tier per node from the policy).
    pub fn cache_tier(mut self, tier: Arc<dyn CacheTier>) -> Self {
        self.tier = TierChoice::Custom(tier);
        self
    }

    /// Use a custom fetch backend instead of reading the dataset directly.
    pub fn fetch_backend(mut self, backend: Arc<dyn FetchBackend>) -> Self {
        self.backend = Some(backend);
        self
    }

    /// Time backend reads against `profile` (ramdisk / SSD / HDD), so the
    /// session's report carries modelled device seconds.
    pub fn device_profile(mut self, profile: storage::DeviceProfile) -> Self {
        self.profile = Some(profile);
        self
    }

    /// Inject a deterministic membership-fault schedule into the partitioned
    /// cluster ([`Mode::Partitioned`] only).  The plan's events fire on the
    /// cluster's shared fetch-step axis, so the same plan replays
    /// bit-identically for any worker count.
    pub fn fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = Some(plan);
        self
    }

    /// Validate the configuration and build the session.
    pub fn build(self) -> Result<Session, CoordlError> {
        let config = &self.config;
        if config.batch_size == 0 {
            return Err(CoordlError::InvalidConfig("batch_size must be > 0".into()));
        }
        if config.num_workers == 0 {
            return Err(CoordlError::InvalidConfig("num_workers must be > 0".into()));
        }
        if config.prefetch_depth == 0 {
            return Err(CoordlError::InvalidConfig(
                "prefetch_depth must be > 0".into(),
            ));
        }
        if config.staging_window == 0 {
            return Err(CoordlError::InvalidConfig(
                "staging_window must be > 0".into(),
            ));
        }
        if config.fetch_threads == 0 {
            return Err(CoordlError::InvalidConfig(
                "fetch_threads must be > 0".into(),
            ));
        }
        if config.fetch_shards != 0 && config.fetch_shards < config.fetch_threads {
            return Err(CoordlError::InvalidConfig(format!(
                "fetch_shards ({}) must be >= fetch_threads ({}) so every \
                 fetch thread owns at least one shard",
                config.fetch_shards, config.fetch_threads
            )));
        }
        if self.dataset.is_empty() {
            return Err(CoordlError::InvalidConfig("dataset is empty".into()));
        }
        if self.mode.num_jobs() == 0 {
            return Err(CoordlError::InvalidConfig(format!(
                "{} mode needs at least one job",
                self.mode.name()
            )));
        }
        if self.backend.is_some() && self.profile.is_some() {
            return Err(CoordlError::InvalidConfig(
                "fetch_backend and device_profile are mutually exclusive".into(),
            ));
        }
        if let Some(plan) = &self.fault_plan {
            let Mode::Partitioned { nodes } = self.mode else {
                return Err(CoordlError::InvalidConfig(format!(
                    "fault_plan requires partitioned mode, not {}",
                    self.mode.name()
                )));
            };
            if let Some(max) = plan.max_node() {
                if max >= nodes {
                    return Err(CoordlError::InvalidConfig(format!(
                        "fault_plan touches node {max} but the cluster has {nodes} nodes"
                    )));
                }
            }
        }

        let backend: Arc<dyn FetchBackend> = match (self.backend, self.profile) {
            (Some(b), None) => b,
            (None, Some(p)) => Arc::new(ProfiledBackend::new(Arc::clone(&self.dataset), p)),
            (None, None) => Arc::new(DirectBackend::new(Arc::clone(&self.dataset))),
            (Some(_), Some(_)) => unreachable!("rejected above"),
        };
        let pipeline = Arc::new(self.pipeline.unwrap_or_else(|| {
            ExecutablePipeline::new(PrepPipeline::image_classification(), 6, config.seed)
        }));
        let stats = Arc::new(LoaderStats::default());

        // Every policy-built tier is a TierChain underneath: a single-level
        // chain is pinned bit-identical to the dedicated MinIO/policy byte
        // caches, so the hierarchy refactor changes no observable number.
        // The shard count ties the tier to the fetch pool: 1 shard for a
        // serial session (the exact legacy tier), `resolved_fetch_shards()`
        // otherwise, so pool-thread ownership and tier-shard locking agree.
        let shards = config.resolved_fetch_shards();
        let build_tier = |choice: &TierChoice| -> Arc<dyn CacheTier> {
            match choice {
                TierChoice::Custom(t) => Arc::clone(t),
                TierChoice::Policy(kind) => Arc::new(TieredByteCache::single_sharded(
                    *kind,
                    config.cache_capacity_bytes,
                    shards,
                )),
                TierChoice::Tiers(specs) => {
                    Arc::new(TieredByteCache::new_sharded(specs.clone(), shards))
                }
            }
        };

        let kind = match self.mode {
            Mode::Single => SessionKind::Single {
                stack: LoaderStack {
                    tier: build_tier(&self.tier),
                    backend: Arc::clone(&backend),
                    stats: Arc::clone(&stats),
                    pipeline: Arc::clone(&pipeline),
                },
            },
            Mode::Coordinated { jobs } => SessionKind::Coordinated {
                engine: CoordinatedEngine {
                    stack: LoaderStack {
                        tier: build_tier(&self.tier),
                        backend: Arc::clone(&backend),
                        stats: Arc::clone(&stats),
                        pipeline: Arc::clone(&pipeline),
                    },
                    dataset_len: self.dataset.len(),
                    num_jobs: jobs,
                    batch_size: config.batch_size,
                    staging_window: config.staging_window,
                    seed: config.seed,
                    take_timeout: config.take_timeout,
                    num_workers: config.num_workers,
                    prefetch_depth: config.prefetch_depth,
                    fetch_threads: config.fetch_threads,
                    fetch_shards: shards,
                },
            },
            Mode::Partitioned { nodes } => {
                if matches!(self.tier, TierChoice::Custom(_)) {
                    return Err(CoordlError::InvalidConfig(
                        "partitioned mode builds one tier per node; use cache_policy".into(),
                    ));
                }
                let tiers = (0..nodes).map(|_| build_tier(&self.tier)).collect();
                let cluster = Arc::new(PartitionedCacheCluster::with_stack(
                    Arc::clone(&backend),
                    tiers,
                    Arc::clone(&stats),
                ));
                if let Some(plan) = self.fault_plan {
                    cluster.set_fault_plan(plan);
                }
                SessionKind::Partitioned { cluster }
            }
        };

        Ok(Session {
            dataset: self.dataset,
            config: self.config,
            mode: self.mode,
            stats,
            backend,
            pipeline,
            kind,
            trajectories: Mutex::new(Vec::new()),
        })
    }
}

enum SessionKind {
    Single {
        stack: LoaderStack,
    },
    Coordinated {
        engine: CoordinatedEngine,
    },
    Partitioned {
        cluster: Arc<PartitionedCacheCluster>,
    },
}

/// A configured CoorDL runtime: dataset + prep pipeline + cache tier(s) +
/// fetch backend + mode.  See the [module docs](self) for an overview.
pub struct Session {
    dataset: Arc<dyn DataSource>,
    config: SessionConfig,
    mode: Mode,
    stats: Arc<LoaderStats>,
    backend: Arc<dyn FetchBackend>,
    pipeline: Arc<ExecutablePipeline>,
    kind: SessionKind,
    trajectories: Mutex<Vec<EpochTrajectory>>,
}

/// What [`SessionBuilder::build`] returns (the ISSUE-facing name).
pub type SessionHandle = Session;

impl Session {
    /// Start describing a session over `dataset`.
    pub fn builder(dataset: Arc<dyn DataSource>, config: SessionConfig) -> SessionBuilder {
        SessionBuilder {
            dataset,
            config,
            mode: Mode::Single,
            pipeline: None,
            backend: None,
            profile: None,
            tier: TierChoice::Policy(PolicyKind::MinIo),
            fault_plan: None,
        }
    }

    /// The session mode.
    pub fn mode(&self) -> Mode {
        self.mode
    }

    /// The session configuration.
    pub fn config(&self) -> &SessionConfig {
        &self.config
    }

    /// Number of per-epoch streams ([`EpochRun::stream`] arguments).
    pub fn num_jobs(&self) -> usize {
        self.mode.num_jobs()
    }

    /// Shared loader statistics across all epochs run so far.
    pub fn stats(&self) -> &LoaderStats {
        &self.stats
    }

    /// The fetch backend.
    pub fn backend(&self) -> &dyn FetchBackend {
        self.backend.as_ref()
    }

    /// The shared cache tier (single and coordinated modes; `None` for
    /// partitioned sessions, whose tiers are per node — see
    /// [`Session::node_tier`]).
    pub fn cache_tier(&self) -> Option<Arc<dyn CacheTier>> {
        match &self.kind {
            SessionKind::Single { stack } => Some(Arc::clone(&stack.tier)),
            SessionKind::Coordinated { engine } => Some(Arc::clone(&engine.stack.tier)),
            SessionKind::Partitioned { .. } => None,
        }
    }

    /// The cache tier of one partitioned node (`None` in other modes).
    pub fn node_tier(&self, node: usize) -> Option<Arc<dyn CacheTier>> {
        match &self.kind {
            SessionKind::Partitioned { cluster } => Some(cluster.tier(node)),
            _ => None,
        }
    }

    /// The partitioned cache cluster (`None` in other modes).
    pub fn partitioned_cluster(&self) -> Option<&PartitionedCacheCluster> {
        match &self.kind {
            SessionKind::Partitioned { cluster } => Some(cluster),
            _ => None,
        }
    }

    /// Minibatches each job consumes per epoch.  In partitioned mode this is
    /// the per-node upper bound (nodes whose shard is one item short may
    /// deliver one batch less).
    pub fn batches_per_epoch(&self) -> usize {
        let items = match self.mode {
            Mode::Partitioned { nodes } => (self.dataset.len() as usize).div_ceil(nodes),
            _ => self.dataset.len() as usize,
        };
        items.div_ceil(self.config.batch_size)
    }

    /// Start one epoch, returning the handle that hands out its per-job
    /// [`BatchStream`]s.  Dropping the handle records the epoch's
    /// [`EpochTrajectory`] in the session's report, so consume the streams
    /// within the handle's lifetime.
    pub fn epoch(&self, epoch: u64) -> EpochRun<'_> {
        let inner = match &self.kind {
            SessionKind::Single { .. } => RunInner::Single,
            SessionKind::Coordinated { engine } => RunInner::Coordinated(engine.run_epoch(epoch)),
            SessionKind::Partitioned { .. } => RunInner::Partitioned,
        };
        EpochRun {
            session: self,
            epoch,
            start: self.snapshot(),
            inner,
            single_stream_taken: AtomicBool::new(false),
        }
    }

    /// Run one coordinated epoch on the raw engine, for callers that drive
    /// [`EpochSession`]s manually.
    ///
    /// # Panics
    /// Panics unless the session is in [`Mode::Coordinated`].
    pub fn coordinated_epoch(&self, epoch: u64) -> EpochSession {
        match &self.kind {
            SessionKind::Coordinated { engine } => engine.run_epoch(epoch),
            _ => panic!("coordinated_epoch requires Mode::Coordinated"),
        }
    }

    /// Spawn one single-mode epoch's prefetching executor (behind
    /// [`EpochRun::stream`]).
    ///
    /// # Panics
    /// Panics unless the session is in [`Mode::Single`].
    pub(crate) fn raw_single_epoch(&self, epoch: u64) -> OrderedStream {
        let SessionKind::Single { stack } = &self.kind else {
            panic!("raw_single_epoch requires Mode::Single");
        };
        let sampler = EpochSampler::new(self.dataset.len(), self.config.seed);
        let order = sampler.permutation(epoch);
        let batches: Vec<(usize, Vec<ItemId>)> = minibatches(&order, self.config.batch_size)
            .into_iter()
            .enumerate()
            .collect();
        spawn_single_epoch(
            epoch,
            batches,
            stack.clone(),
            self.config.num_workers,
            self.config.prefetch_depth,
            self.config.fetch_threads,
            self.config.resolved_fetch_shards(),
        )
    }

    /// Every cache tier of the session: the one shared tier, or one per
    /// partitioned node.
    fn all_tiers(&self) -> Vec<Arc<dyn CacheTier>> {
        match &self.kind {
            SessionKind::Partitioned { cluster } => (0..cluster.num_servers())
                .map(|n| cluster.tier(n))
                .collect(),
            _ => vec![self.cache_tier().expect("non-partitioned tier")],
        }
    }

    /// Per-level statistics of every cache tier of the session, aggregated
    /// across partitioned nodes by level index (`dstool validate` uses this
    /// for its per-tier hit-ratio rows).
    pub fn tier_levels(&self) -> Vec<TierSnapshot> {
        let mut levels: Vec<TierSnapshot> = Vec::new();
        for tier in self.all_tiers() {
            for (k, snap) in tier.tier_snapshots().into_iter().enumerate() {
                match levels.get_mut(k) {
                    None => levels.push(snap),
                    Some(agg) => {
                        agg.capacity_bytes += snap.capacity_bytes;
                        agg.used_bytes += snap.used_bytes;
                        agg.resident_items += snap.resident_items;
                        agg.hits += snap.hits;
                        agg.misses += snap.misses;
                        agg.demoted_in += snap.demoted_in;
                        agg.demoted_out += snap.demoted_out;
                        agg.device_seconds += snap.device_seconds;
                    }
                }
            }
        }
        levels
    }

    /// The unified report: totals plus the per-epoch trajectories recorded
    /// as [`EpochRun`]s completed.
    pub fn report(&self) -> LoaderReport {
        let snap = self.snapshot();
        let tiers = self.all_tiers();
        let (capacity, used, resident, policy) = (
            tiers.iter().map(|t| t.capacity_bytes()).sum(),
            tiers.iter().map(|t| t.used_bytes()).sum(),
            tiers.iter().map(|t| t.resident_items()).sum(),
            tiers[0].policy_name(),
        );
        LoaderReport {
            mode: self.mode.name(),
            jobs: self.num_jobs(),
            cache_policy: policy,
            backend: self.backend.name(),
            cache_capacity_bytes: capacity,
            cache_used_bytes: used,
            cache_resident_items: resident,
            bytes_from_storage: snap.bytes_from_storage,
            bytes_from_cache: snap.bytes_from_cache,
            bytes_from_lower_tiers: snap.bytes_from_lower_tiers,
            bytes_from_remote: snap.bytes_from_remote,
            samples_prepared: snap.samples_prepared,
            samples_delivered: snap.samples_delivered,
            cache_hits: snap.hits,
            cache_misses: snap.misses,
            lower_tier_hits: snap.lower_tier_hits,
            device_seconds: snap.device_seconds,
            measured_device_seconds: snap.measured_device_seconds,
            fetch_busy_seconds: snap.fetch_busy_seconds,
            fetch_stall_seconds: snap.fetch_stall_seconds,
            prep_busy_seconds: snap.prep_busy_seconds,
            prep_stall_seconds: snap.prep_stall_seconds,
            consumer_wait_seconds: snap.consumer_wait_seconds,
            fetch_thread_busy_seconds: self.stats.fetch_thread_busy_seconds(),
            fetch_thread_stall_seconds: self.stats.fetch_thread_stall_seconds(),
            epochs: self.trajectories.lock().clone(),
            tenant: None,
        }
    }

    fn snapshot(&self) -> CounterSnapshot {
        let (hits, misses) = match &self.kind {
            // Partitioned hit counts come from the cluster, not the tiers: a
            // remote hit is a *local-tier miss* served by a peer, and must
            // count as a session-level hit.
            SessionKind::Partitioned { cluster } => {
                let agg = cluster.aggregate_stats();
                (agg.local_hits + agg.remote_hits, agg.storage_reads)
            }
            _ => {
                let tier = self.cache_tier().expect("non-partitioned tier");
                (tier.hits(), tier.misses())
            }
        };
        let lower_tier_hits = self
            .tier_levels()
            .iter()
            .skip(1)
            .map(|level| level.hits)
            .sum();
        CounterSnapshot {
            bytes_from_storage: self.stats.bytes_from_storage(),
            bytes_from_cache: self.stats.bytes_from_cache(),
            bytes_from_lower_tiers: self.stats.bytes_from_lower_tiers(),
            bytes_from_remote: self.stats.bytes_from_remote(),
            lower_tier_hits,
            samples_prepared: self.stats.samples_prepared(),
            samples_delivered: self.stats.samples_delivered(),
            hits,
            misses,
            device_seconds: self.backend.device_seconds(),
            measured_device_seconds: self.backend.measured_seconds(),
            fetch_busy_seconds: self.stats.fetch_busy_seconds(),
            fetch_stall_seconds: self.stats.fetch_stall_seconds(),
            prep_busy_seconds: self.stats.prep_busy_seconds(),
            prep_stall_seconds: self.stats.prep_stall_seconds(),
            consumer_wait_seconds: self.stats.consumer_wait_seconds(),
        }
    }

    fn record_trajectory(&self, epoch: u64, start: CounterSnapshot, staging: Option<StagingStats>) {
        let end = self.snapshot();
        let staging = staging.unwrap_or_default();
        self.trajectories.lock().push(EpochTrajectory {
            epoch,
            bytes_from_storage: end.bytes_from_storage - start.bytes_from_storage,
            bytes_from_cache: end.bytes_from_cache - start.bytes_from_cache,
            bytes_from_lower_tiers: end.bytes_from_lower_tiers - start.bytes_from_lower_tiers,
            bytes_from_remote: end.bytes_from_remote - start.bytes_from_remote,
            samples_prepared: end.samples_prepared - start.samples_prepared,
            samples_delivered: end.samples_delivered - start.samples_delivered,
            cache_hits: end.hits - start.hits,
            cache_misses: end.misses - start.misses,
            lower_tier_hits: end.lower_tier_hits - start.lower_tier_hits,
            device_seconds: end.device_seconds - start.device_seconds,
            staging_peak_bytes: staging.peak_bytes,
            staging_published: staging.published,
            staging_evicted: staging.evicted,
            fetch_busy_seconds: end.fetch_busy_seconds - start.fetch_busy_seconds,
            fetch_stall_seconds: end.fetch_stall_seconds - start.fetch_stall_seconds,
            prep_busy_seconds: end.prep_busy_seconds - start.prep_busy_seconds,
            prep_stall_seconds: end.prep_stall_seconds - start.prep_stall_seconds,
            consumer_wait_seconds: end.consumer_wait_seconds - start.consumer_wait_seconds,
        });
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct CounterSnapshot {
    bytes_from_storage: u64,
    bytes_from_cache: u64,
    bytes_from_lower_tiers: u64,
    bytes_from_remote: u64,
    samples_prepared: u64,
    samples_delivered: u64,
    hits: u64,
    misses: u64,
    lower_tier_hits: u64,
    device_seconds: f64,
    measured_device_seconds: f64,
    fetch_busy_seconds: f64,
    fetch_stall_seconds: f64,
    prep_busy_seconds: f64,
    prep_stall_seconds: f64,
    consumer_wait_seconds: f64,
}

enum RunInner {
    Single,
    Coordinated(EpochSession),
    Partitioned,
    Finished,
}

/// One epoch of a session: hands out per-job [`BatchStream`]s and records
/// the epoch's trajectory when dropped.
pub struct EpochRun<'a> {
    session: &'a Session,
    epoch: u64,
    start: CounterSnapshot,
    inner: RunInner,
    single_stream_taken: AtomicBool,
}

impl EpochRun<'_> {
    /// The epoch index this run covers.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Minibatches each stream of this epoch delivers.
    pub fn total_batches(&self) -> usize {
        self.session.batches_per_epoch()
    }

    /// The batch stream of `job` (a node index in partitioned mode; must be
    /// 0 in single mode).
    ///
    /// Streams own their worker threads and statistics handles, so they can
    /// be moved to consumer threads; keep the `EpochRun` alive while they
    /// drain (dropping it shuts a coordinated epoch down).
    ///
    /// # Panics
    /// In single mode, a second `stream(0)` call on the same run panics:
    /// each call would spawn a fresh worker pool and re-fetch the whole
    /// epoch, silently double-counting this run's trajectory.  Call
    /// [`Session::epoch`] again for another pass over the same epoch.
    pub fn stream(&self, job: usize) -> BatchStream {
        assert!(
            job < self.session.num_jobs(),
            "job {job} out of range for {} mode with {} job(s)",
            self.session.mode().name(),
            self.session.num_jobs()
        );
        match (&self.inner, &self.session.kind) {
            (RunInner::Single, SessionKind::Single { .. }) => {
                assert!(
                    !self.single_stream_taken.swap(true, Ordering::SeqCst),
                    "stream(0) already taken for this EpochRun; call \
                     Session::epoch again for another pass"
                );
                let stream = self.session.raw_single_epoch(self.epoch);
                BatchStream {
                    total: stream.total_batches(),
                    inner: StreamInner::Ordered(stream),
                }
            }
            (RunInner::Coordinated(epoch_session), _) => BatchStream {
                total: epoch_session.total_batches(),
                inner: StreamInner::Coordinated(epoch_session.consumer(job)),
            },
            (RunInner::Partitioned, SessionKind::Partitioned { cluster }) => {
                let nodes = self.session.num_jobs();
                let sampler =
                    EpochSampler::new(self.session.dataset.len(), self.session.config.seed);
                let shard = sampler.distributed_shard(self.epoch, job, nodes);
                let batches: Vec<(usize, Vec<ItemId>)> =
                    minibatches(&shard, self.session.config.batch_size)
                        .into_iter()
                        .enumerate()
                        .collect();
                // The node's executor fetches through the cluster (local
                // tier → peers → backend) strictly in shard order, so a
                // node's fetch sequence stays deterministic under any
                // worker count.
                let cluster = Arc::clone(cluster);
                let node = job;
                let fetch: Arc<FetchFn> =
                    Arc::new(move |item| cluster.fetch(node, item).map(|(bytes, _)| bytes));
                let stream = spawn_ordered_epoch(
                    self.epoch,
                    batches,
                    fetch,
                    Arc::clone(&self.session.pipeline),
                    Arc::clone(&self.session.stats),
                    self.session.config.num_workers,
                    self.session.config.prefetch_depth,
                    self.session.config.fetch_threads,
                    self.session.config.resolved_fetch_shards(),
                );
                BatchStream {
                    total: stream.total_batches(),
                    inner: StreamInner::Ordered(stream),
                }
            }
            _ => unreachable!("EpochRun inner state matches the session kind"),
        }
    }

    /// Simulate the user killing job `job` mid-epoch (coordinated mode).
    ///
    /// # Panics
    /// Panics unless the session is in [`Mode::Coordinated`].
    pub fn inject_failure(&self, job: usize) {
        match &self.inner {
            RunInner::Coordinated(s) => s.inject_failure(job),
            _ => panic!("inject_failure requires Mode::Coordinated"),
        }
    }

    /// The coordinated staging area (`None` in other modes).
    pub fn staging(&self) -> Option<&StagingArea> {
        match &self.inner {
            RunInner::Coordinated(s) => Some(s.staging()),
            _ => None,
        }
    }
}

impl Drop for EpochRun<'_> {
    fn drop(&mut self) {
        // Shut a coordinated epoch down (joining its producers) *before*
        // snapshotting, so late producer work is attributed to this epoch.
        let staging = match std::mem::replace(&mut self.inner, RunInner::Finished) {
            RunInner::Coordinated(epoch_session) => {
                let staging = Arc::clone(epoch_session.staging_arc());
                drop(epoch_session);
                Some(staging.stats())
            }
            _ => None,
        };
        self.session
            .record_trajectory(self.epoch, self.start, staging);
    }
}

/// One job's minibatch stream for one epoch, in training order.
///
/// All modes yield `Result<Arc<Minibatch>, CoordlError>`: coordinated
/// epochs surface producer failure, worker panics and shutdown as typed
/// errors; single and partitioned epochs surface a panicking worker as one
/// [`CoordlError::WorkerPanicked`] before ending.
pub struct BatchStream {
    total: usize,
    inner: StreamInner,
}

enum StreamInner {
    /// Single-mode and partitioned-node streams: one executor + reorder
    /// buffer per stream.
    Ordered(OrderedStream),
    Coordinated(JobEpochIterator),
}

impl BatchStream {
    /// Number of minibatches this stream will deliver.
    pub fn total_batches(&self) -> usize {
        self.total
    }
}

impl Iterator for BatchStream {
    type Item = Result<Arc<Minibatch>, CoordlError>;

    fn next(&mut self) -> Option<Self::Item> {
        match &mut self.inner {
            StreamInner::Ordered(s) => match s.next() {
                Some(mb) => Some(Ok(Arc::new(mb))),
                // An early end with a recorded panic becomes one typed
                // error; a clean end (or a repeat call) stays None.
                None => s.take_failure().map(Err),
            },
            StreamInner::Coordinated(s) => s.next(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MinIoByteCache;
    use dataset::{DatasetSpec, SyntheticItemStore};
    use std::collections::HashSet;

    fn store(items: u64, avg: u64) -> Arc<dyn DataSource> {
        Arc::new(SyntheticItemStore::new(
            DatasetSpec::new("sess", items, avg, 0.2, 4.0),
            13,
        ))
    }

    fn config(batch: usize, cache: u64) -> SessionConfig {
        SessionConfig {
            batch_size: batch,
            num_workers: 2,
            prefetch_depth: 4,
            seed: 21,
            cache_capacity_bytes: cache,
            staging_window: 8,
            take_timeout: Duration::from_secs(5),
            fetch_threads: 1,
            fetch_shards: 0,
        }
    }

    #[test]
    fn single_mode_delivers_every_item_once_in_order() {
        let session = Session::builder(store(100, 256), config(16, 1 << 20))
            .build()
            .unwrap();
        let run = session.epoch(0);
        let mut indices = Vec::new();
        let mut items = Vec::new();
        for mb in run.stream(0) {
            let mb = mb.unwrap();
            indices.push(mb.index);
            items.extend(mb.item_ids());
        }
        assert_eq!(indices, (0..7).collect::<Vec<_>>());
        assert_eq!(items.iter().collect::<HashSet<_>>().len(), 100);
        drop(run);
        assert_eq!(session.stats().samples_delivered(), 100);
        let report = session.report();
        assert_eq!(report.mode, "single");
        assert_eq!(report.epochs.len(), 1);
        assert_eq!(report.epochs[0].samples_delivered, 100);
        assert_eq!(report.epochs[0].cache_misses, 100, "cold cache");
    }

    #[test]
    fn coordinated_mode_shares_one_sweep_across_jobs() {
        let session = Session::builder(store(120, 128), config(10, 1 << 20))
            .mode(Mode::Coordinated { jobs: 3 })
            .build()
            .unwrap();
        {
            let run = session.epoch(0);
            let handles: Vec<_> = (0..3)
                .map(|j| {
                    let stream = run.stream(j);
                    std::thread::spawn(move || stream.map(|b| b.unwrap().len()).sum::<usize>())
                })
                .collect();
            for h in handles {
                assert_eq!(h.join().unwrap(), 120);
            }
        }
        assert_eq!(session.stats().samples_prepared(), 120, "prepared once");
        assert_eq!(session.stats().samples_delivered(), 3 * 120);
        let report = session.report();
        assert_eq!(report.mode, "coordinated");
        assert!(report.epochs[0].staging_published > 0);
        assert_eq!(
            report.epochs[0].staging_published,
            report.epochs[0].staging_evicted
        );
    }

    #[test]
    fn partitioned_mode_serves_peer_misses_from_remote_tiers() {
        let items = 100u64;
        let spec = DatasetSpec::new("sess", items, 100, 0.0, 4.0);
        let total = spec.total_bytes();
        let ds: Arc<dyn DataSource> = Arc::new(SyntheticItemStore::new(spec, 9));
        // Each node caches 65 %: together they cover the dataset.
        let session = Session::builder(ds, config(10, total * 65 / 100))
            .mode(Mode::Partitioned { nodes: 2 })
            .build()
            .unwrap();
        for epoch in 0..3u64 {
            let run = session.epoch(epoch);
            for node in 0..2 {
                for mb in run.stream(node) {
                    assert!(!mb.unwrap().is_empty());
                }
            }
        }
        let report = session.report();
        assert_eq!(report.mode, "partitioned");
        assert_eq!(report.epochs.len(), 3);
        // After warm-up the aggregate cache covers the dataset: no storage.
        for e in &report.epochs[1..] {
            assert_eq!(e.bytes_from_storage, 0, "epoch {}", e.epoch);
        }
        assert!(report.bytes_from_remote > 0, "peer fetches happened");
        let agg = session.partitioned_cluster().unwrap().aggregate_stats();
        assert_eq!(agg.storage_bytes, total);
    }

    #[test]
    fn partitioned_session_survives_a_mid_training_kill() {
        let items = 60u64;
        let spec = DatasetSpec::new("sess", items, 100, 0.0, 4.0);
        let total = spec.total_bytes();
        let ds: Arc<dyn DataSource> = Arc::new(SyntheticItemStore::new(spec, 9));
        // Kill node 1 once epoch 0's `items` fetches have completed; it
        // rejoins (tier still warm with its stale epoch-0 shard) for epoch 2.
        let plan = FaultPlan::new(vec![
            crate::FaultStep {
                at_step: items,
                node: 1,
                kind: crate::FaultKind::Kill,
            },
            crate::FaultStep {
                at_step: 2 * items,
                node: 1,
                kind: crate::FaultKind::Join,
            },
        ]);
        let session = Session::builder(ds, config(10, total))
            .mode(Mode::Partitioned { nodes: 2 })
            .fault_plan(plan)
            .build()
            .unwrap();
        for epoch in 0..4u64 {
            let run = session.epoch(epoch);
            for node in 0..2 {
                let mut seen = 0u64;
                for mb in run.stream(node) {
                    seen += mb.unwrap().len() as u64;
                }
                assert_eq!(seen, items / 2, "epoch {epoch} node {node} exactly once");
            }
        }
        let cluster = session.partitioned_cluster().unwrap();
        assert!(
            cluster.is_alive(0) && cluster.is_alive(1),
            "node 1 rejoined"
        );
        assert_eq!(
            session.stats().samples_delivered(),
            4 * items,
            "no sample lost or duplicated across the kill"
        );
        // Epoch 1 (node 1 dead) pays storage for the dropped shard; after the
        // warm tier rejoins, the directory heals lazily on its local hits and
        // the steady state is storage-free again.
        let report = session.report();
        assert!(report.epochs[1].bytes_from_storage > 0, "degraded epoch");
        assert_eq!(report.epochs[3].bytes_from_storage, 0, "recovered epoch");
    }

    #[test]
    fn profiled_backend_shows_up_in_the_report() {
        let session = Session::builder(store(50, 1000), config(10, 1 << 20))
            .device_profile(storage::DeviceProfile::hdd())
            .build()
            .unwrap();
        {
            let run = session.epoch(0);
            assert_eq!(run.stream(0).count(), 5);
        }
        let report = session.report();
        assert_eq!(report.backend, "hdd");
        assert!(report.device_seconds > 0.0);
        assert!(report.epochs[0].device_seconds > 0.0);
    }

    #[test]
    fn lru_policy_tier_thrashes_where_minio_does_not() {
        // §4.1 through the new API: same workload, same capacity, two tiers.
        let run_with = |kind: PolicyKind| {
            let spec = DatasetSpec::new("sess", 100, 1000, 0.0, 4.0);
            let ds: Arc<dyn DataSource> = Arc::new(SyntheticItemStore::new(spec, 9));
            let mut cfg = config(10, 50 * 1000);
            cfg.num_workers = 1; // deterministic access order
            let session = Session::builder(ds, cfg)
                .cache_policy(kind)
                .build()
                .unwrap();
            for epoch in 0..3u64 {
                let run = session.epoch(epoch);
                for mb in run.stream(0) {
                    let _ = mb.unwrap();
                }
            }
            let report = session.report();
            report
                .steady_epochs()
                .iter()
                .map(|e| e.cache_misses)
                .sum::<u64>()
        };
        let minio_misses = run_with(PolicyKind::MinIo);
        let lru_misses = run_with(PolicyKind::Lru);
        assert_eq!(minio_misses, 2 * 50, "MinIO: capacity misses only");
        assert!(
            lru_misses > minio_misses,
            "LRU thrashes: {lru_misses} vs {minio_misses}"
        );
    }

    #[test]
    fn default_chain_tier_matches_dedicated_minio_byte_cache_bitwise() {
        // The hierarchy refactor's core pin at the session level: the
        // TierChain-backed default tier delivers the same streams and the
        // same counters as the dedicated MinIoByteCache it replaced.
        let spec = DatasetSpec::new("sess", 120, 700, 0.25, 4.0);
        let ds: Arc<dyn DataSource> = Arc::new(SyntheticItemStore::new(spec.clone(), 9));
        let cache = spec.total_bytes() / 2; // partial residency
        let run = |custom: bool| {
            let mut builder = Session::builder(Arc::clone(&ds), config(16, cache));
            if custom {
                builder =
                    builder.cache_tier(Arc::new(MinIoByteCache::new(cache)) as Arc<dyn CacheTier>);
            }
            let session = builder.build().unwrap();
            let mut samples = Vec::new();
            for epoch in 0..3u64 {
                let run = session.epoch(epoch);
                for mb in run.stream(0) {
                    samples.extend(mb.unwrap().samples.clone());
                }
            }
            let report = session.report();
            (samples, report)
        };
        let (chain_samples, chain_report) = run(false);
        let (flat_samples, flat_report) = run(true);
        assert_eq!(chain_samples, flat_samples, "bit-identical streams");
        assert_eq!(chain_report.cache_hits, flat_report.cache_hits);
        assert_eq!(chain_report.cache_misses, flat_report.cache_misses);
        assert_eq!(
            chain_report.bytes_from_storage,
            flat_report.bytes_from_storage
        );
        assert_eq!(chain_report.bytes_from_cache, flat_report.bytes_from_cache);
        assert_eq!(chain_report.cache_used_bytes, flat_report.cache_used_bytes);
        assert_eq!(
            chain_report.lower_tier_hits, 0,
            "flat chain has no levels below DRAM"
        );
        // Per-epoch deterministic counters (the *_seconds fields are wall
        // clock and legitimately differ run to run).
        let deterministic = |e: &EpochTrajectory| {
            (
                e.epoch,
                e.bytes_from_storage,
                e.bytes_from_cache,
                e.bytes_from_lower_tiers,
                e.cache_hits,
                e.cache_misses,
                e.lower_tier_hits,
                e.samples_prepared,
                e.samples_delivered,
            )
        };
        assert_eq!(
            chain_report
                .epochs
                .iter()
                .map(deterministic)
                .collect::<Vec<_>>(),
            flat_report
                .epochs
                .iter()
                .map(deterministic)
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn tiered_session_reports_per_level_hit_ratios() {
        // DRAM MinIO holding ~35 % + SSD MinIO holding ~35 %: the chain
        // serves ~70 % of steady-state fetches, split across the levels.
        let spec = DatasetSpec::new("sess", 200, 1000, 0.0, 4.0);
        let total = spec.total_bytes();
        let ds: Arc<dyn DataSource> = Arc::new(SyntheticItemStore::new(spec, 9));
        let session = Session::builder(ds, config(20, 0))
            .cache_tiers(vec![
                ByteTierSpec::dram(PolicyKind::MinIo, total * 35 / 100),
                ByteTierSpec::sata_ssd(PolicyKind::MinIo, total * 35 / 100),
            ])
            .build()
            .unwrap();
        for epoch in 0..3u64 {
            let run = session.epoch(epoch);
            for mb in run.stream(0) {
                let _ = mb.unwrap();
            }
        }
        let report = session.report();
        assert!((report.steady_dram_hit_ratio() - 0.35).abs() < 0.03);
        assert!((report.steady_lower_tier_hit_ratio() - 0.35).abs() < 0.03);
        assert!((report.steady_hit_ratio() - 0.70).abs() < 0.05);
        assert!(report.bytes_from_lower_tiers > 0);
        assert!(
            report.bytes_from_lower_tiers < report.bytes_from_cache,
            "lower-tier bytes are a subset of cache bytes"
        );
        let levels = session.tier_levels();
        assert_eq!(levels.len(), 2);
        assert_eq!(levels[0].name, "dram");
        assert_eq!(levels[1].name, "ssd");
        assert!(
            levels[1].device_seconds > 0.0,
            "SSD level charges device time"
        );
        assert_eq!(report.cache_policy, "dram:MinIO+ssd:MinIO");
    }

    #[test]
    #[should_panic(expected = "already taken")]
    fn second_single_mode_stream_on_one_run_is_refused() {
        // Silently re-running the epoch would double-count the trajectory.
        let session = Session::builder(store(40, 128), config(8, 1 << 20))
            .build()
            .unwrap();
        let run = session.epoch(0);
        let first = run.stream(0);
        drop(first);
        let _second = run.stream(0);
    }

    #[test]
    fn invalid_configs_are_rejected() {
        let ds = store(10, 64);
        let bad = Session::builder(
            Arc::clone(&ds),
            SessionConfig {
                batch_size: 0,
                ..SessionConfig::default()
            },
        )
        .build();
        assert!(matches!(bad, Err(CoordlError::InvalidConfig(_))));
        let bad = Session::builder(Arc::clone(&ds), SessionConfig::default())
            .mode(Mode::Coordinated { jobs: 0 })
            .build();
        assert!(matches!(bad, Err(CoordlError::InvalidConfig(_))));
        let bad = Session::builder(Arc::clone(&ds), SessionConfig::default())
            .mode(Mode::Partitioned { nodes: 2 })
            .cache_tier(Arc::new(MinIoByteCache::new(10)))
            .build();
        assert!(matches!(bad, Err(CoordlError::InvalidConfig(_))));
        // A fault plan only makes sense for a partitioned cluster ...
        let plan = FaultPlan::new(vec![crate::FaultStep {
            at_step: 5,
            node: 1,
            kind: crate::FaultKind::Kill,
        }]);
        let bad = Session::builder(Arc::clone(&ds), SessionConfig::default())
            .fault_plan(plan.clone())
            .build();
        assert!(matches!(bad, Err(CoordlError::InvalidConfig(_))));
        // ... and must only touch nodes the cluster actually has.
        let bad = Session::builder(ds, SessionConfig::default())
            .mode(Mode::Partitioned { nodes: 1 })
            .fault_plan(plan)
            .build();
        assert!(matches!(bad, Err(CoordlError::InvalidConfig(_))));
    }

    #[test]
    fn backend_read_failures_surface_through_the_batch_stream() {
        use crate::{DirectBackend, FsBackend, ProfiledBackend};
        use storage::DeviceProfile;
        use vfs::{MemVfs, Vfs};
        // A dataset of 32 items served by backends that only materialized
        // 24: the epoch's tail items are missing, and each of the three
        // backends must surface one typed BackendIo through the stream
        // instead of panicking a worker thread.
        let dataset = store(32, 256);
        let small = store(24, 256);
        let fs_vfs: Arc<dyn Vfs> = Arc::new(MemVfs::new());
        let backends: Vec<(Arc<dyn FetchBackend>, &str)> = vec![
            (Arc::new(DirectBackend::new(Arc::clone(&small))), "direct"),
            (
                Arc::new(ProfiledBackend::new(
                    Arc::clone(&small),
                    DeviceProfile::sata_ssd(),
                )),
                "profiled",
            ),
            (
                Arc::new(
                    FsBackend::new(fs_vfs, "data", small.as_ref(), 2)
                        .expect("materialization succeeds"),
                ),
                "fs",
            ),
        ];
        for (backend, name) in backends {
            let reported = backend.name();
            let session = Session::builder(Arc::clone(&dataset), config(8, 1 << 22))
                .fetch_backend(backend)
                .build()
                .unwrap();
            let run = session.epoch(0);
            let mut delivered = 0usize;
            let mut failure = None;
            for batch in run.stream(0) {
                match batch {
                    Ok(mb) => delivered += mb.len(),
                    Err(e) => {
                        failure = Some(e);
                        break;
                    }
                }
            }
            match failure {
                Some(CoordlError::BackendIo {
                    backend: b,
                    item,
                    detail,
                }) => {
                    assert_eq!(b, reported, "{name}: error names the backend that failed");
                    assert!(item >= 24, "{name}: item {item} is one of the missing ones");
                    assert!(detail.contains("out of range"), "{name}: {detail}");
                }
                other => panic!("{name}: expected BackendIo through the stream, got {other:?}"),
            }
            assert!(
                delivered < 32,
                "{name}: the epoch must not claim full delivery"
            );
        }
    }

    #[test]
    fn inject_failure_recovers_through_the_session_api() {
        let mut cfg = config(10, 1 << 22);
        cfg.take_timeout = Duration::from_millis(250); // fast failure detection
        let session = Session::builder(store(200, 128), cfg)
            .mode(Mode::Coordinated { jobs: 2 })
            .build()
            .unwrap();
        let run = session.epoch(0);
        run.inject_failure(1);
        let handles: Vec<_> = (0..2)
            .map(|j| {
                let stream = run.stream(j);
                std::thread::spawn(move || {
                    stream
                        .map(|b| b.expect("recovered epoch completes").len())
                        .sum::<usize>()
                })
            })
            .collect();
        for h in handles {
            assert_eq!(h.join().unwrap(), 200);
        }
    }
}
