//! DS-Analyzer: differential profiling of data stalls and predictive
//! ("what-if") analysis (§3.2, §3.4, Appendix C).
//!
//! DS-Analyzer measures four rates for a training job —
//!
//! * `G`: the GPU ingestion rate with synthetic data pre-populated at the
//!   GPUs (no fetch, no prep),
//! * `P`: the pre-processing rate with the dataset fully cached and all CPU
//!   cores available,
//! * `S`: the storage random-read rate,
//! * `C`: the DRAM (cache) read rate —
//!
//! and from them attributes epoch time to compute, prep stalls and fetch
//! stalls, answers what-if questions (how much cache is needed, how many CPU
//! cores per GPU, what if the GPU were 2× faster), and predicts training
//! speed at any cache size using
//! `F(x) = D / (D·x/C + D·(1−x)/S)` and `speed = min(F, P, G)`.

pub mod profile;
pub mod whatif;

pub use profile::{DifferentialReport, ProfiledRates};
pub use whatif::{Bottleneck, SpeedValidationPoint, WhatIfAnalysis};
