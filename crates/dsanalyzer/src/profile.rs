//! The three-phase differential measurement (§3.2).

use gpu::aggregate_samples_per_sec;
use pipeline::{Experiment, JobSpec, Scenario, ServerConfig};
use prep::{PrepBackend, PrepCostModel};
use storage::{AccessPattern, DRAM_BANDWIDTH_BYTES_PER_SEC};

/// The four component rates DS-Analyzer measures, all in samples/second for
/// the given job (byte rates are divided by the dataset's average item size).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProfiledRates {
    /// Max GPU ingestion rate `G` (synthetic data at the GPUs).
    pub gpu_rate: f64,
    /// Pre-processing rate `P` with every core available and data in memory.
    pub prep_rate: f64,
    /// Storage random-read rate `S`.
    pub storage_rate: f64,
    /// DRAM read rate `C`.
    pub cache_rate: f64,
    /// Average raw item size used to convert between bytes and samples.
    pub avg_item_bytes: u64,
}

impl ProfiledRates {
    /// Phase-1/2/3 measurement for `job` on `server`.
    ///
    /// Phase 1 (ingestion rate) uses the GPU compute model directly — in the
    /// real tool this is a run with synthetic data pre-populated at the GPU.
    /// Phase 2 (prep rate) applies the prep cost model with all cores, which
    /// is what a fully-cached, GPU-compute-disabled run measures.
    /// Phase 3 (storage/cache rates) comes from the device profile and memory
    /// bandwidth microbenchmarks.
    pub fn measure(server: &ServerConfig, job: &JobSpec) -> ProfiledRates {
        let profile = job.model.profile();
        let gpu_rate =
            aggregate_samples_per_sec(&profile, server.gpu, job.num_gpus, job.batch_per_gpu);

        let cost = PrepCostModel::for_pipeline(&job.pipeline, job.loader.prep_backend);
        let gpus_for_prep = if job.loader.prep_backend == PrepBackend::DaliGpu {
            job.num_gpus as f64
        } else {
            0.0
        };
        let avg = job.dataset.avg_item_bytes;
        let prep_rate = cost.throughput_bps(server.cpu_cores as f64, gpus_for_prep) / avg as f64;

        let storage_rate = server.device.bandwidth(AccessPattern::Random)
            / (avg as f64 + server.device.request_latency_s * server.device.rand_read_bps);
        let cache_rate = DRAM_BANDWIDTH_BYTES_PER_SEC / avg as f64;

        ProfiledRates {
            gpu_rate,
            prep_rate,
            storage_rate,
            cache_rate,
            avg_item_bytes: avg,
        }
    }
}

/// The outcome of the three differential runs on real (simulated) hardware:
/// how much of the epoch is compute, prep stall and fetch stall.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DifferentialReport {
    /// Epoch time with data pre-populated at the GPUs (no data pipeline).
    pub ingestion_epoch_secs: f64,
    /// Epoch time with the dataset fully cached (prep stalls only).
    pub cached_epoch_secs: f64,
    /// Epoch time with the configured cache size (prep + fetch stalls).
    pub actual_epoch_secs: f64,
}

impl DifferentialReport {
    /// Run the three phases of DS-Analyzer for `job` on `server`, using the
    /// configured cache size of `server` for the third phase.
    pub fn run(server: &ServerConfig, job: &JobSpec, epochs: u64) -> DifferentialReport {
        // Phase 1: ingestion rate — no fetch, no prep.
        let rates = ProfiledRates::measure(server, job);
        let iterations = job.iterations_per_epoch(job.dataset.num_items) as f64;
        let samples = job.dataset.num_items as f64;
        let _ = iterations;
        let ingestion_epoch_secs = samples / rates.gpu_rate;

        // Phase 2: fully cached run.
        let cached_server = server.with_cache_fraction(job.dataset.total_bytes(), 1.1);
        let run_on = |srv: &ServerConfig| {
            Experiment::on(srv)
                .job(job.clone())
                .scenario(Scenario::SingleServer)
                .epochs(epochs.max(2))
                .run()
        };
        let cached = run_on(&cached_server);
        // Phase 3: run with the actual cache size (cold start, like the tool).
        let actual = run_on(server);

        DifferentialReport {
            ingestion_epoch_secs,
            cached_epoch_secs: cached.steady_state().epoch_seconds(),
            actual_epoch_secs: actual.steady_state().epoch_seconds(),
        }
    }

    /// Prep-stall share of the actual epoch time (difference between the
    /// cached run and the ingestion-only run).
    pub fn prep_stall_fraction(&self) -> f64 {
        ((self.cached_epoch_secs - self.ingestion_epoch_secs) / self.actual_epoch_secs).max(0.0)
    }

    /// Fetch-stall share of the actual epoch time (difference between the
    /// actual run and the cached run).
    pub fn fetch_stall_fraction(&self) -> f64 {
        ((self.actual_epoch_secs - self.cached_epoch_secs) / self.actual_epoch_secs).max(0.0)
    }

    /// Total data-stall share of epoch time.
    pub fn data_stall_fraction(&self) -> f64 {
        self.prep_stall_fraction() + self.fetch_stall_fraction()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dataset::DatasetSpec;
    use gpu::ModelKind;
    use pipeline::LoaderConfig;
    use prep::PrepBackend;

    fn small_ds() -> DatasetSpec {
        DatasetSpec::imagenet_1k().scaled(500)
    }

    fn job(model: ModelKind, ds: &DatasetSpec) -> JobSpec {
        JobSpec::new(
            model,
            ds.clone(),
            8,
            LoaderConfig::dali_shuffle(PrepBackend::DaliCpu),
        )
    }

    #[test]
    fn measured_rates_are_ordered_sensibly() {
        let ds = small_ds();
        let server = ServerConfig::config_ssd_v100().with_cache_fraction(ds.total_bytes(), 0.35);
        let r = ProfiledRates::measure(&server, &job(ModelKind::ResNet18, &ds));
        assert!(r.cache_rate > r.storage_rate, "DRAM faster than SSD");
        assert!(r.gpu_rate > 0.0 && r.prep_rate > 0.0);
        // ResNet18 on 8 V100s is prep bound with 24 cores (Figure 1).
        assert!(r.gpu_rate > r.prep_rate);
    }

    #[test]
    fn resnet50_is_gpu_bound_when_cached() {
        let ds = small_ds();
        let server = ServerConfig::config_ssd_v100().with_cache_fraction(ds.total_bytes(), 1.1);
        let r = ProfiledRates::measure(&server, &job(ModelKind::ResNet50, &ds));
        assert!(
            r.prep_rate > r.gpu_rate,
            "ResNet50 needs only ~3 cores/GPU: prep {} vs gpu {}",
            r.prep_rate,
            r.gpu_rate
        );
    }

    #[test]
    fn differential_report_attributes_stalls() {
        let ds = small_ds();
        let server = ServerConfig::config_hdd_1080ti().with_cache_fraction(ds.total_bytes(), 0.35);
        let rep = DifferentialReport::run(&server, &job(ModelKind::ResNet18, &ds), 2);
        // Ingestion-only <= cached <= actual.
        assert!(rep.ingestion_epoch_secs <= rep.cached_epoch_secs * 1.01);
        assert!(rep.cached_epoch_secs <= rep.actual_epoch_secs * 1.01);
        // On an HDD with 35% cache the job is dominated by fetch stalls.
        assert!(rep.fetch_stall_fraction() > 0.4);
        assert!(rep.data_stall_fraction() <= 1.0 + 1e-9);
    }

    #[test]
    fn gpu_bound_model_shows_small_stalls() {
        // ResNet50's global batch is 4096, so the dataset must be large
        // enough for several minibatches per epoch — with a single batch the
        // pipeline cannot overlap prep with compute and every model looks
        // stalled regardless of rates.
        let ds = DatasetSpec::imagenet_1k().scaled(50);
        let server = ServerConfig::config_ssd_v100().with_cache_fraction(ds.total_bytes(), 1.1);
        let rep = DifferentialReport::run(&server, &job(ModelKind::ResNet50, &ds), 2);
        assert!(rep.data_stall_fraction() < 0.2);
    }
}
