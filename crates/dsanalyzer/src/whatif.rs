//! Predictive what-if analysis (§3.4, Appendix C).

use crate::profile::ProfiledRates;
use pipeline::sweep::{Axis, ExperimentSpec, SweepRunner, SweepSpec};
use pipeline::{JobSpec, ServerConfig};

/// Which pipeline stage limits training throughput.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Bottleneck {
    /// `min(F, P, G) = G`: the job is GPU bound (no data stalls).
    Gpu,
    /// `min(F, P, G) = P`: the job is CPU bound (prep stalls).
    Cpu,
    /// `min(F, P, G) = F`: the job is I/O bound (fetch stalls).
    Io,
}

/// What-if analysis built on the measured component rates.
#[derive(Debug, Clone, Copy)]
pub struct WhatIfAnalysis {
    rates: ProfiledRates,
}

impl WhatIfAnalysis {
    /// Wrap a set of measured rates.
    pub fn new(rates: ProfiledRates) -> Self {
        WhatIfAnalysis { rates }
    }

    /// The measured rates.
    pub fn rates(&self) -> &ProfiledRates {
        &self.rates
    }

    /// Effective fetch rate `F(x)` (samples/s) when a fraction `x` of the
    /// dataset is cached — Appendix C, equation (4):
    /// `F = D / (D·x/C + D·(1−x)/S) = 1 / (x/C + (1−x)/S)`.
    pub fn fetch_rate(&self, cache_fraction: f64) -> f64 {
        assert!((0.0..=1.0).contains(&cache_fraction), "fraction in [0,1]");
        let c = self.rates.cache_rate;
        let s = self.rates.storage_rate;
        1.0 / (cache_fraction / c + (1.0 - cache_fraction) / s)
    }

    /// Predicted end-to-end training speed (samples/s) at cache fraction `x`:
    /// `min(F(x), P, G)`.
    pub fn predicted_speed(&self, cache_fraction: f64) -> f64 {
        self.fetch_rate(cache_fraction)
            .min(self.rates.prep_rate)
            .min(self.rates.gpu_rate)
    }

    /// Which stage is the bottleneck at cache fraction `x`.
    pub fn bottleneck(&self, cache_fraction: f64) -> Bottleneck {
        let f = self.fetch_rate(cache_fraction);
        let p = self.rates.prep_rate;
        let g = self.rates.gpu_rate;
        if g <= f && g <= p {
            Bottleneck::Gpu
        } else if p <= f {
            Bottleneck::Cpu
        } else {
            Bottleneck::Io
        }
    }

    /// The smallest cache fraction at which fetch stops being the bottleneck
    /// (larger caches buy nothing — §3.4's "more DRAM has no effect once the
    /// job is CPU/GPU bound"). Returns 1.0 if even a full cache leaves the
    /// job I/O bound (impossible as long as DRAM is faster than the GPU).
    pub fn recommended_cache_fraction(&self) -> f64 {
        let target = self.rates.prep_rate.min(self.rates.gpu_rate);
        // Solve F(x) = target for x:
        // 1/(x/C + (1-x)/S) = target  =>  x = (1/target - 1/S) / (1/C - 1/S).
        let c = self.rates.cache_rate;
        let s = self.rates.storage_rate;
        if self.fetch_rate(0.0) >= target {
            return 0.0;
        }
        let x = (1.0 / target - 1.0 / s) / (1.0 / c - 1.0 / s);
        x.clamp(0.0, 1.0)
    }

    /// Minimum CPU cores per GPU needed to remove prep stalls, given the
    /// per-core prep rate implied by the measured prep rate over
    /// `total_cores` cores and the per-GPU ingestion rate over `num_gpus`.
    pub fn recommended_cores_per_gpu(&self, total_cores: usize, num_gpus: usize) -> f64 {
        assert!(total_cores > 0 && num_gpus > 0);
        let per_core = self.rates.prep_rate / total_cores as f64;
        let per_gpu_demand = self.rates.gpu_rate / num_gpus as f64;
        per_gpu_demand / per_core
    }

    /// A new analysis assuming the GPUs become `factor`× faster (the paper's
    /// "what if GPU compute speeds increase by 2×?").
    pub fn with_faster_gpu(&self, factor: f64) -> WhatIfAnalysis {
        assert!(factor > 0.0);
        let mut rates = self.rates;
        rates.gpu_rate *= factor;
        WhatIfAnalysis { rates }
    }

    /// A new analysis assuming the storage device delivers `factor`× the
    /// random-read bandwidth (e.g. replacing SATA SSD with NVMe).
    pub fn with_faster_storage(&self, factor: f64) -> WhatIfAnalysis {
        assert!(factor > 0.0);
        let mut rates = self.rates;
        rates.storage_rate *= factor;
        WhatIfAnalysis { rates }
    }

    /// Predicted speed across a sweep of cache fractions, for plotting
    /// (Figure 16).
    pub fn speed_curve(&self, points: usize) -> Vec<(f64, f64)> {
        assert!(points >= 2);
        (0..points)
            .map(|i| {
                let x = i as f64 / (points - 1) as f64;
                (x, self.predicted_speed(x))
            })
            .collect()
    }

    /// Validate the what-if model against the full simulator across cache
    /// fractions — the methodology behind Figure 16 and Table 5 ("predictions
    /// within 4 % of empirical").
    ///
    /// All non-zero fractions run as one cache-axis sweep fanned out through
    /// `runner`; `job` should use a MinIO-backed loader, matching the model's
    /// "a cache of size x items has at least x hits per epoch" assumption
    /// (Appendix C).  A zero fraction is not constructible in the simulator,
    /// so its empirical value is the measured storage rate — the model's own
    /// floor.
    ///
    /// # Panics
    /// Panics if any simulated grid point panics (the inputs come from this
    /// analysis, so a failure here is a configuration bug).
    pub fn validate_speed_curve(
        &self,
        server: &ServerConfig,
        job: &JobSpec,
        fractions: &[f64],
        epochs: u64,
        runner: &SweepRunner,
    ) -> Vec<SpeedValidationPoint> {
        let bytes = job.dataset.total_bytes();
        let mut base = ExperimentSpec::new(server.clone(), job.clone());
        base.epochs = epochs;

        let mut axis = Axis::new("cache");
        let sim_fractions: Vec<f64> = fractions.iter().copied().filter(|&f| f > 0.0).collect();
        for &f in &sim_fractions {
            axis.push_value(
                format!("{:.0}%", f * 100.0),
                move |spec: &mut ExperimentSpec| {
                    spec.server = spec.server.with_cache_fraction(bytes, f);
                },
            );
        }
        let mut simulated = if sim_fractions.is_empty() {
            Vec::new()
        } else {
            runner
                .run(&SweepSpec::new("whatif-cache-validation", base).axis(axis))
                .points
        }
        .into_iter();

        fractions
            .iter()
            .map(|&f| {
                let empirical = if f > 0.0 {
                    let point = simulated.next().expect("one grid point per fraction");
                    point
                        .outcome
                        .unwrap_or_else(|e| panic!("cache sweep point {} failed: {e}", f))
                        .steady_samples_per_sec()
                } else {
                    self.rates.storage_rate
                };
                SpeedValidationPoint {
                    cache_fraction: f,
                    predicted: self.predicted_speed(f),
                    empirical,
                    bottleneck: self.bottleneck(f),
                }
            })
            .collect()
    }
}

/// One point of a predicted-vs-empirical cache sweep
/// ([`WhatIfAnalysis::validate_speed_curve`]).
#[derive(Debug, Clone, Copy)]
pub struct SpeedValidationPoint {
    /// Fraction of the dataset held in DRAM.
    pub cache_fraction: f64,
    /// The model's `min(F(x), P, G)` prediction, samples/s.
    pub predicted: f64,
    /// The simulator's steady-state throughput, samples/s.
    pub empirical: f64,
    /// The predicted bottleneck stage at this fraction.
    pub bottleneck: Bottleneck,
}

impl SpeedValidationPoint {
    /// `|predicted - empirical| / empirical` (Table 5's error metric).
    pub fn relative_error(&self) -> f64 {
        (self.predicted - self.empirical).abs() / self.empirical
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Rates shaped like AlexNet on Config-SSD-V100 with ImageNet-1k
    /// (Appendix C.2): storage-bound at small caches, prep-bound at large.
    fn alexnet_like() -> WhatIfAnalysis {
        WhatIfAnalysis::new(ProfiledRates {
            gpu_rate: 24_000.0,
            prep_rate: 6_400.0,
            storage_rate: 4_600.0,
            cache_rate: 175_000.0,
            avg_item_bytes: 114 * 1024,
        })
    }

    #[test]
    fn fetch_rate_is_monotone_in_cache_fraction() {
        let w = alexnet_like();
        let mut prev = 0.0;
        for i in 0..=10 {
            let f = w.fetch_rate(i as f64 / 10.0);
            assert!(f >= prev);
            prev = f;
        }
        assert!((w.fetch_rate(0.0) - w.rates().storage_rate).abs() < 1e-6);
        assert!((w.fetch_rate(1.0) - w.rates().cache_rate).abs() < 1e-6);
    }

    #[test]
    fn predicted_speed_saturates_at_min_of_prep_and_gpu() {
        let w = alexnet_like();
        assert!((w.predicted_speed(1.0) - 6_400.0).abs() < 1e-6);
        assert!(w.predicted_speed(0.0) <= 4_600.0 + 1e-6);
    }

    #[test]
    fn bottleneck_transitions_io_to_cpu_with_more_cache() {
        let w = alexnet_like();
        assert_eq!(w.bottleneck(0.0), Bottleneck::Io);
        assert_eq!(w.bottleneck(1.0), Bottleneck::Cpu);
        // Around the paper's ~55 % crossover (Figure 16) the bottleneck flips.
        let x = w.recommended_cache_fraction();
        assert!(x > 0.2 && x < 0.6, "recommended cache fraction {x}");
        assert_eq!(w.bottleneck((x + 0.05).min(1.0)), Bottleneck::Cpu);
        assert_eq!(w.bottleneck((x - 0.05).max(0.0)), Bottleneck::Io);
    }

    #[test]
    fn recommendation_is_consistent_with_prediction() {
        let w = alexnet_like();
        let x = w.recommended_cache_fraction();
        let speed_at_x = w.predicted_speed(x);
        let speed_at_full = w.predicted_speed(1.0);
        assert!(
            (speed_at_x - speed_at_full).abs() / speed_at_full < 0.01,
            "beyond the recommended cache size more DRAM buys <1 %"
        );
    }

    #[test]
    fn faster_gpu_worsens_data_stalls() {
        // Appendix B.3's point: faster compute makes stalls relatively worse.
        let w = alexnet_like();
        let gpu_bound_now = w.bottleneck(1.0);
        assert_eq!(gpu_bound_now, Bottleneck::Cpu);
        let faster = w.with_faster_gpu(2.0);
        // Still CPU bound, and the gap (stall fraction) grows.
        let stall_now = 1.0 - w.predicted_speed(1.0) / w.rates().gpu_rate;
        let stall_faster = 1.0 - faster.predicted_speed(1.0) / faster.rates().gpu_rate;
        assert!(stall_faster > stall_now);
    }

    #[test]
    fn faster_storage_removes_io_bottleneck() {
        let w = alexnet_like();
        assert_eq!(w.bottleneck(0.0), Bottleneck::Io);
        let nvme = w.with_faster_storage(5.0);
        assert_ne!(nvme.bottleneck(0.0), Bottleneck::Io);
    }

    #[test]
    fn speed_curve_has_requested_resolution_and_is_monotone() {
        let w = alexnet_like();
        let curve = w.speed_curve(21);
        assert_eq!(curve.len(), 21);
        assert!(curve.windows(2).all(|p| p[1].1 >= p[0].1 - 1e-9));
    }

    #[test]
    fn cores_per_gpu_recommendation_scales_with_gpu_rate() {
        let w = alexnet_like();
        // 24 cores feeding 8 GPUs.
        let need = w.recommended_cores_per_gpu(24, 8);
        assert!(need > 3.0, "AlexNet needs many cores per GPU, got {need}");
        let slower_gpu = WhatIfAnalysis::new(ProfiledRates {
            gpu_rate: 6_000.0,
            ..*w.rates()
        });
        assert!(slower_gpu.recommended_cores_per_gpu(24, 8) < need);
    }

    #[test]
    #[should_panic(expected = "fraction in [0,1]")]
    fn out_of_range_fraction_rejected() {
        let _ = alexnet_like().fetch_rate(1.5);
    }

    #[test]
    fn validate_speed_curve_tracks_the_simulator() {
        use dataset::DatasetSpec;
        use gpu::ModelKind;
        use pipeline::{JobSpec, LoaderConfig, ServerConfig};

        let model = ModelKind::AlexNet;
        let dataset = DatasetSpec::imagenet_1k().scaled(64);
        let server =
            ServerConfig::config_ssd_v100().with_cache_fraction(dataset.total_bytes(), 0.35);
        let probe = JobSpec::new(model, dataset.clone(), 8, LoaderConfig::dali_best(model));
        let whatif = WhatIfAnalysis::new(ProfiledRates::measure(&server, &probe));
        let job = probe.with_loader(LoaderConfig::coordl_best(model));

        let fractions = [0.0, 0.25, 0.5, 1.0];
        let parallel = whatif.validate_speed_curve(
            &server,
            &job,
            &fractions,
            3,
            &SweepRunner::with_threads(3),
        );
        assert_eq!(parallel.len(), fractions.len());
        // Fraction 0 reports the model's storage-rate floor.
        assert!((parallel[0].empirical - whatif.rates().storage_rate).abs() < 1e-9);
        // Simulated points track the prediction (the paper reports ≤4 % at
        // full scale — fig16/tab05 reproduce that; this heavily scaled-down
        // test dataset only preserves the shape, so the bound is loose).
        for pair in parallel.windows(2) {
            assert!(
                pair[1].empirical >= pair[0].empirical * 0.99,
                "empirical speed must grow with cache size"
            );
        }
        for p in &parallel[1..] {
            assert!(p.empirical > 0.0);
            assert!(
                p.relative_error() < 0.35,
                "prediction off by {:.0}% at cache {:.0}%",
                p.relative_error() * 100.0,
                p.cache_fraction * 100.0
            );
        }
        // The parallel sweep is bit-identical to a serial one.
        let serial =
            whatif.validate_speed_curve(&server, &job, &fractions, 3, &SweepRunner::serial());
        for (a, b) in parallel.iter().zip(&serial) {
            assert_eq!(a.empirical.to_bits(), b.empirical.to_bits());
            assert_eq!(a.predicted.to_bits(), b.predicted.to_bits());
        }
    }
}
