//! Predictive what-if analysis (§3.4, Appendix C).

use crate::profile::ProfiledRates;

/// Which pipeline stage limits training throughput.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Bottleneck {
    /// `min(F, P, G) = G`: the job is GPU bound (no data stalls).
    Gpu,
    /// `min(F, P, G) = P`: the job is CPU bound (prep stalls).
    Cpu,
    /// `min(F, P, G) = F`: the job is I/O bound (fetch stalls).
    Io,
}

/// What-if analysis built on the measured component rates.
#[derive(Debug, Clone, Copy)]
pub struct WhatIfAnalysis {
    rates: ProfiledRates,
}

impl WhatIfAnalysis {
    /// Wrap a set of measured rates.
    pub fn new(rates: ProfiledRates) -> Self {
        WhatIfAnalysis { rates }
    }

    /// The measured rates.
    pub fn rates(&self) -> &ProfiledRates {
        &self.rates
    }

    /// Effective fetch rate `F(x)` (samples/s) when a fraction `x` of the
    /// dataset is cached — Appendix C, equation (4):
    /// `F = D / (D·x/C + D·(1−x)/S) = 1 / (x/C + (1−x)/S)`.
    pub fn fetch_rate(&self, cache_fraction: f64) -> f64 {
        assert!((0.0..=1.0).contains(&cache_fraction), "fraction in [0,1]");
        let c = self.rates.cache_rate;
        let s = self.rates.storage_rate;
        1.0 / (cache_fraction / c + (1.0 - cache_fraction) / s)
    }

    /// Predicted end-to-end training speed (samples/s) at cache fraction `x`:
    /// `min(F(x), P, G)`.
    pub fn predicted_speed(&self, cache_fraction: f64) -> f64 {
        self.fetch_rate(cache_fraction)
            .min(self.rates.prep_rate)
            .min(self.rates.gpu_rate)
    }

    /// Which stage is the bottleneck at cache fraction `x`.
    pub fn bottleneck(&self, cache_fraction: f64) -> Bottleneck {
        let f = self.fetch_rate(cache_fraction);
        let p = self.rates.prep_rate;
        let g = self.rates.gpu_rate;
        if g <= f && g <= p {
            Bottleneck::Gpu
        } else if p <= f {
            Bottleneck::Cpu
        } else {
            Bottleneck::Io
        }
    }

    /// The smallest cache fraction at which fetch stops being the bottleneck
    /// (larger caches buy nothing — §3.4's "more DRAM has no effect once the
    /// job is CPU/GPU bound"). Returns 1.0 if even a full cache leaves the
    /// job I/O bound (impossible as long as DRAM is faster than the GPU).
    pub fn recommended_cache_fraction(&self) -> f64 {
        let target = self.rates.prep_rate.min(self.rates.gpu_rate);
        // Solve F(x) = target for x:
        // 1/(x/C + (1-x)/S) = target  =>  x = (1/target - 1/S) / (1/C - 1/S).
        let c = self.rates.cache_rate;
        let s = self.rates.storage_rate;
        if self.fetch_rate(0.0) >= target {
            return 0.0;
        }
        let x = (1.0 / target - 1.0 / s) / (1.0 / c - 1.0 / s);
        x.clamp(0.0, 1.0)
    }

    /// Minimum CPU cores per GPU needed to remove prep stalls, given the
    /// per-core prep rate implied by the measured prep rate over
    /// `total_cores` cores and the per-GPU ingestion rate over `num_gpus`.
    pub fn recommended_cores_per_gpu(&self, total_cores: usize, num_gpus: usize) -> f64 {
        assert!(total_cores > 0 && num_gpus > 0);
        let per_core = self.rates.prep_rate / total_cores as f64;
        let per_gpu_demand = self.rates.gpu_rate / num_gpus as f64;
        per_gpu_demand / per_core
    }

    /// A new analysis assuming the GPUs become `factor`× faster (the paper's
    /// "what if GPU compute speeds increase by 2×?").
    pub fn with_faster_gpu(&self, factor: f64) -> WhatIfAnalysis {
        assert!(factor > 0.0);
        let mut rates = self.rates;
        rates.gpu_rate *= factor;
        WhatIfAnalysis { rates }
    }

    /// A new analysis assuming the storage device delivers `factor`× the
    /// random-read bandwidth (e.g. replacing SATA SSD with NVMe).
    pub fn with_faster_storage(&self, factor: f64) -> WhatIfAnalysis {
        assert!(factor > 0.0);
        let mut rates = self.rates;
        rates.storage_rate *= factor;
        WhatIfAnalysis { rates }
    }

    /// Predicted speed across a sweep of cache fractions, for plotting
    /// (Figure 16).
    pub fn speed_curve(&self, points: usize) -> Vec<(f64, f64)> {
        assert!(points >= 2);
        (0..points)
            .map(|i| {
                let x = i as f64 / (points - 1) as f64;
                (x, self.predicted_speed(x))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Rates shaped like AlexNet on Config-SSD-V100 with ImageNet-1k
    /// (Appendix C.2): storage-bound at small caches, prep-bound at large.
    fn alexnet_like() -> WhatIfAnalysis {
        WhatIfAnalysis::new(ProfiledRates {
            gpu_rate: 24_000.0,
            prep_rate: 6_400.0,
            storage_rate: 4_600.0,
            cache_rate: 175_000.0,
            avg_item_bytes: 114 * 1024,
        })
    }

    #[test]
    fn fetch_rate_is_monotone_in_cache_fraction() {
        let w = alexnet_like();
        let mut prev = 0.0;
        for i in 0..=10 {
            let f = w.fetch_rate(i as f64 / 10.0);
            assert!(f >= prev);
            prev = f;
        }
        assert!((w.fetch_rate(0.0) - w.rates().storage_rate).abs() < 1e-6);
        assert!((w.fetch_rate(1.0) - w.rates().cache_rate).abs() < 1e-6);
    }

    #[test]
    fn predicted_speed_saturates_at_min_of_prep_and_gpu() {
        let w = alexnet_like();
        assert!((w.predicted_speed(1.0) - 6_400.0).abs() < 1e-6);
        assert!(w.predicted_speed(0.0) <= 4_600.0 + 1e-6);
    }

    #[test]
    fn bottleneck_transitions_io_to_cpu_with_more_cache() {
        let w = alexnet_like();
        assert_eq!(w.bottleneck(0.0), Bottleneck::Io);
        assert_eq!(w.bottleneck(1.0), Bottleneck::Cpu);
        // Around the paper's ~55 % crossover (Figure 16) the bottleneck flips.
        let x = w.recommended_cache_fraction();
        assert!(x > 0.2 && x < 0.6, "recommended cache fraction {x}");
        assert_eq!(w.bottleneck((x + 0.05).min(1.0)), Bottleneck::Cpu);
        assert_eq!(w.bottleneck((x - 0.05).max(0.0)), Bottleneck::Io);
    }

    #[test]
    fn recommendation_is_consistent_with_prediction() {
        let w = alexnet_like();
        let x = w.recommended_cache_fraction();
        let speed_at_x = w.predicted_speed(x);
        let speed_at_full = w.predicted_speed(1.0);
        assert!(
            (speed_at_x - speed_at_full).abs() / speed_at_full < 0.01,
            "beyond the recommended cache size more DRAM buys <1 %"
        );
    }

    #[test]
    fn faster_gpu_worsens_data_stalls() {
        // Appendix B.3's point: faster compute makes stalls relatively worse.
        let w = alexnet_like();
        let gpu_bound_now = w.bottleneck(1.0);
        assert_eq!(gpu_bound_now, Bottleneck::Cpu);
        let faster = w.with_faster_gpu(2.0);
        // Still CPU bound, and the gap (stall fraction) grows.
        let stall_now = 1.0 - w.predicted_speed(1.0) / w.rates().gpu_rate;
        let stall_faster = 1.0 - faster.predicted_speed(1.0) / faster.rates().gpu_rate;
        assert!(stall_faster > stall_now);
    }

    #[test]
    fn faster_storage_removes_io_bottleneck() {
        let w = alexnet_like();
        assert_eq!(w.bottleneck(0.0), Bottleneck::Io);
        let nvme = w.with_faster_storage(5.0);
        assert_ne!(nvme.bottleneck(0.0), Bottleneck::Io);
    }

    #[test]
    fn speed_curve_has_requested_resolution_and_is_monotone() {
        let w = alexnet_like();
        let curve = w.speed_curve(21);
        assert_eq!(curve.len(), 21);
        assert!(curve.windows(2).all(|p| p[1].1 >= p[0].1 - 1e-9));
    }

    #[test]
    fn cores_per_gpu_recommendation_scales_with_gpu_rate() {
        let w = alexnet_like();
        // 24 cores feeding 8 GPUs.
        let need = w.recommended_cores_per_gpu(24, 8);
        assert!(need > 3.0, "AlexNet needs many cores per GPU, got {need}");
        let slower_gpu = WhatIfAnalysis::new(ProfiledRates {
            gpu_rate: 6_000.0,
            ..*w.rates()
        });
        assert!(slower_gpu.recommended_cores_per_gpu(24, 8) < need);
    }

    #[test]
    #[should_panic(expected = "fraction in [0,1]")]
    fn out_of_range_fraction_rejected() {
        let _ = alexnet_like().fetch_rate(1.5);
    }
}
