//! Minimal offline stand-in for `parking_lot`, backed by `std::sync`.
//!
//! Matches parking_lot's API shape where it differs from std: `lock()` /
//! `read()` / `write()` return guards directly (poisoning is swallowed, as
//! parking_lot has no poisoning), and `Condvar::wait` takes the guard by
//! `&mut` reference.

use std::ops::{Deref, DerefMut};
use std::sync::{self, PoisonError};
use std::time::Duration;

/// A mutex whose `lock` never returns a poison error.
#[derive(Debug, Default)]
pub struct Mutex<T> {
    inner: sync::Mutex<T>,
}

/// Guard wrapper so `Condvar::wait(&mut guard)` can move the inner std guard
/// out and back (std's `wait` consumes the guard; parking_lot's borrows it).
#[derive(Debug)]
pub struct MutexGuard<'a, T> {
    inner: Option<sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: Some(self.inner.lock().unwrap_or_else(PoisonError::into_inner)),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard present")
    }
}

impl<T> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard present")
    }
}

/// A reader-writer lock whose accessors never return poison errors.
#[derive(Debug, Default)]
pub struct RwLock<T> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    pub fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    pub fn read(&self) -> sync::RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn write(&self) -> sync::RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

/// Result of a timed condition-variable wait.
#[derive(Debug, Clone, Copy)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

/// Condition variable taking this crate's `MutexGuard` by `&mut`.
#[derive(Debug, Default)]
pub struct Condvar {
    inner: sync::Condvar,
}

impl Condvar {
    pub fn new() -> Self {
        Condvar {
            inner: sync::Condvar::new(),
        }
    }

    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.inner.take().expect("guard present");
        guard.inner = Some(
            self.inner
                .wait(inner)
                .unwrap_or_else(PoisonError::into_inner),
        );
    }

    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let inner = guard.inner.take().expect("guard present");
        let (inner, result) = self
            .inner
            .wait_timeout(inner, timeout)
            .unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(inner);
        WaitTimeoutResult {
            timed_out: result.timed_out(),
        }
    }

    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_and_rwlock_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        let rw = RwLock::new(10);
        assert_eq!(*rw.read(), 10);
        *rw.write() = 11;
        assert_eq!(rw.into_inner(), 11);
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let (lock, cvar) = &*pair2;
            let mut started = lock.lock();
            while !*started {
                cvar.wait(&mut started);
            }
        });
        {
            let (lock, cvar) = &*pair;
            *lock.lock() = true;
            cvar.notify_all();
        }
        t.join().unwrap();
    }

    #[test]
    fn wait_for_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let res = cv.wait_for(&mut g, Duration::from_millis(10));
        assert!(res.timed_out());
    }
}
