//! Minimal offline stand-in for the `rand` crate.
//!
//! Provides the exact API surface this workspace uses — `SmallRng`,
//! `Rng::{gen, gen_range}`, `SeedableRng::seed_from_u64` and
//! `seq::SliceRandom::shuffle` — backed by xoshiro256++ (the same family the
//! real `SmallRng` uses on 64-bit targets), seeded through SplitMix64.

/// Seeding support: only `seed_from_u64` is needed by this workspace.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed (SplitMix64 state expansion).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sampling methods available on every generator.
pub trait Rng {
    /// The raw 64-bit output of the generator.
    fn next_u64(&mut self) -> u64;

    /// A uniformly distributed value of `T` over its whole domain.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// A uniformly distributed value in `range`.
    fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        unit_f64(self.next_u64()) < p
    }
}

/// Types samplable uniformly over their whole domain (`rng.gen()`).
pub trait Standard: Sized {
    fn sample<R: Rng>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: Rng>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample<R: Rng>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: Rng>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64())
    }
}

/// A 53-bit-precision uniform draw in `[0, 1)`.
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Unbiased-enough uniform draw in `[0, span)` via 128-bit multiply.
fn below<R: Rng>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

/// Ranges samplable with `rng.gen_range(..)`.
pub trait SampleRange {
    type Output;
    fn sample_from<R: Rng>(self, rng: &mut R) -> Self::Output;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange for core::ops::Range<$t> {
            type Output = $t;
            fn sample_from<R: Rng>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + below(rng, span) as $t
            }
        }
        impl SampleRange for core::ops::RangeInclusive<$t> {
            type Output = $t;
            fn sample_from<R: Rng>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + below(rng, span + 1) as $t
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize);

impl SampleRange for core::ops::Range<f64> {
    type Output = f64;
    fn sample_from<R: Rng>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + unit_f64(rng.next_u64()) * (self.end - self.start)
    }
}

pub mod rngs {
    use super::{Rng, SeedableRng};

    /// xoshiro256++, seeded via SplitMix64 — matching the algorithm family
    /// the real `rand::rngs::SmallRng` uses on 64-bit platforms.
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            let mut next = || {
                state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            SmallRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl Rng for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let out = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }
    }
}

pub mod seq {
    use super::Rng;

    /// In-place Fisher–Yates shuffle, the only `SliceRandom` method used here.
    pub trait SliceRandom {
        fn shuffle<R: Rng>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: Rng>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = super::below(rng, i as u64 + 1) as usize;
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_and_seed_sensitive() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(1);
        let mut c = SmallRng::seed_from_u64(2);
        let (xa, xb, xc) = (a.next_u64(), b.next_u64(), c.next_u64());
        assert_eq!(xa, xb);
        assert_ne!(xa, xc);
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = rng.gen_range(10u64..20);
            assert!((10..20).contains(&x));
            let y = rng.gen_range(3usize..=5);
            assert!((3..=5).contains(&y));
            let f = rng.gen_range(-1.0f64..1.0);
            assert!((-1.0..1.0).contains(&f));
        }
    }

    #[test]
    fn shuffle_is_a_permutation_and_roughly_uniform() {
        let mut rng = SmallRng::seed_from_u64(42);
        let mut v: Vec<u64> = (0..1000).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..1000).collect::<Vec<_>>());
        // The first element should move most of the time across shuffles.
        let mut moved = 0;
        for _ in 0..100 {
            let mut w: Vec<u64> = (0..100).collect();
            w.shuffle(&mut rng);
            if w[0] != 0 {
                moved += 1;
            }
        }
        assert!(moved > 90);
    }
}
