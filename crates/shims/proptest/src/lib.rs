//! Minimal offline stand-in for `proptest`.
//!
//! Supports the subset this workspace's property tests use: the `proptest!`
//! macro with an optional `#![proptest_config(..)]` header, integer/float
//! range strategies, `Just`, `prop_oneof!` and the `prop_assert*` macros.
//! Inputs are sampled uniformly (no shrinking); each case's seed is derived
//! deterministically from the test name and case index so failures reproduce.

use std::ops::{Range, RangeInclusive};

/// Per-block configuration; only the case count is honoured.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Deterministic test RNG (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// Seed a case RNG from the test name and case index so each case is
    /// deterministic but distinct.
    pub fn for_case(test_name: &str, case: u32) -> Self {
        let mut seed = 0xcbf2_9ce4_8422_2325u64;
        for b in test_name.bytes() {
            seed = (seed ^ b as u64).wrapping_mul(0x1000_0000_01b3);
        }
        TestRng::new(seed ^ (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, span: u64) -> u64 {
        ((self.next_u64() as u128 * span as u128) >> 64) as u64
    }

    fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A source of random values of one type.
pub trait Strategy {
    type Value;
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

/// Always yields a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                self.start + rng.below((self.end - self.start) as u64) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + rng.below(span + 1) as $t
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i32, i64);

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty strategy range");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

/// Object-safe strategy wrapper so `prop_oneof!` can mix arm types.
pub trait DynStrategy<T> {
    fn sample_dyn(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn sample_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.sample(rng)
    }
}

/// Uniform choice between boxed strategies (what `prop_oneof!` builds).
pub struct OneOf<T>(pub Vec<Box<dyn DynStrategy<T>>>);

impl<T> Strategy for OneOf<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        assert!(!self.0.is_empty(), "prop_oneof! needs at least one arm");
        let idx = rng.below(self.0.len() as u64) as usize;
        self.0[idx].sample_dyn(rng)
    }
}

/// Uniform choice between strategies, all yielding the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::OneOf(vec![$(Box::new($strategy) as Box<dyn $crate::DynStrategy<_>>),+])
    };
}

/// Assert within a property; panics with the case's inputs in the message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => { assert_eq!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)*) => { assert_eq!($left, $right, $($fmt)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => { assert_ne!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)*) => { assert_ne!($left, $right, $($fmt)*) };
}

/// The property-test block macro: each `fn` inside runs `config.cases` times
/// with freshly sampled inputs.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                for case in 0..config.cases {
                    let mut proptest_rng = $crate::TestRng::for_case(stringify!($name), case);
                    $(let $arg = $crate::Strategy::sample(&($strategy), &mut proptest_rng);)+
                    $body
                }
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $(
                $(#[$meta])*
                fn $name($($arg in $strategy),+) $body
            )*
        }
    };
}

/// Everything the tests import.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, DynStrategy, Just,
        OneOf, ProptestConfig, Strategy, TestRng,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(
            x in 5u64..10,
            y in 0.25f64..0.75,
            z in 1usize..=3,
        ) {
            prop_assert!((5..10).contains(&x));
            prop_assert!((0.25..0.75).contains(&y));
            prop_assert!((1..=3).contains(&z));
        }

        #[test]
        fn oneof_picks_only_listed_values(
            v in prop_oneof![Just(1u8), Just(3u8), Just(7u8)],
        ) {
            prop_assert!(v == 1u8 || v == 3u8 || v == 7u8);
        }
    }

    proptest! {
        #[test]
        fn default_config_block_also_works(x in 0u32..4) {
            prop_assert!(x < 4);
        }
    }

    #[test]
    fn cases_are_deterministic_per_name_and_index() {
        let a = TestRng::for_case("t", 0).next_u64();
        let b = TestRng::for_case("t", 0).next_u64();
        let c = TestRng::for_case("t", 1).next_u64();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }
}
