//! Minimal offline stand-in for `crossbeam`: a bounded MPMC channel.
//!
//! Only `channel::bounded` with blocking `send`/`recv`, cloneable endpoints
//! and disconnect detection is provided — the surface this workspace uses.

pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex, PoisonError};

    /// Error returned by `send` when every receiver is gone; carries the
    /// unsent message back to the caller like crossbeam's.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    /// Error returned by `recv` when the channel is empty and every sender is
    /// gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "receiving on an empty and disconnected channel")
        }
    }

    struct Shared<T> {
        queue: Mutex<VecDeque<T>>,
        capacity: usize,
        not_empty: Condvar,
        not_full: Condvar,
        senders: AtomicUsize,
        receivers: AtomicUsize,
    }

    /// The sending half; cloneable (multi-producer).
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// The receiving half; cloneable (multi-consumer).
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// Create a bounded channel holding at most `capacity` messages.
    pub fn bounded<T>(capacity: usize) -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::with_capacity(capacity)),
            capacity: capacity.max(1),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            senders: AtomicUsize::new(1),
            receivers: AtomicUsize::new(1),
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    impl<T> Sender<T> {
        /// Block until there is room, then enqueue; `Err` if all receivers
        /// are gone.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let shared = &self.shared;
            let mut queue = shared.queue.lock().unwrap_or_else(PoisonError::into_inner);
            loop {
                if shared.receivers.load(Ordering::SeqCst) == 0 {
                    return Err(SendError(value));
                }
                if queue.len() < shared.capacity {
                    queue.push_back(value);
                    shared.not_empty.notify_one();
                    return Ok(());
                }
                queue = shared
                    .not_full
                    .wait(queue)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        }
    }

    impl<T> Receiver<T> {
        /// Block until a message arrives; `Err` once the channel is empty and
        /// all senders are gone.
        pub fn recv(&self) -> Result<T, RecvError> {
            let shared = &self.shared;
            let mut queue = shared.queue.lock().unwrap_or_else(PoisonError::into_inner);
            loop {
                if let Some(value) = queue.pop_front() {
                    shared.not_full.notify_one();
                    return Ok(value);
                }
                if shared.senders.load(Ordering::SeqCst) == 0 {
                    return Err(RecvError);
                }
                queue = shared
                    .not_empty
                    .wait(queue)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.senders.fetch_add(1, Ordering::SeqCst);
            Sender {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared.receivers.fetch_add(1, Ordering::SeqCst);
            Receiver {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            if self.shared.senders.fetch_sub(1, Ordering::SeqCst) == 1 {
                // Last sender gone: wake blocked receivers so they observe it.
                let _guard = self.shared.queue.lock();
                self.shared.not_empty.notify_all();
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            if self.shared.receivers.fetch_sub(1, Ordering::SeqCst) == 1 {
                let _guard = self.shared.queue.lock();
                self.shared.not_full.notify_all();
            }
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn values_flow_in_order() {
            let (tx, rx) = bounded(4);
            for i in 0..4 {
                tx.send(i).unwrap();
            }
            for i in 0..4 {
                assert_eq!(rx.recv(), Ok(i));
            }
        }

        #[test]
        fn recv_errors_after_all_senders_drop() {
            let (tx, rx) = bounded::<u32>(2);
            tx.send(9).unwrap();
            drop(tx);
            assert_eq!(rx.recv(), Ok(9));
            assert_eq!(rx.recv(), Err(RecvError));
        }

        #[test]
        fn send_errors_after_all_receivers_drop() {
            let (tx, rx) = bounded::<u32>(2);
            drop(rx);
            assert_eq!(tx.send(1), Err(SendError(1)));
        }

        #[test]
        fn bounded_send_blocks_until_recv() {
            let (tx, rx) = bounded::<u32>(1);
            tx.send(1).unwrap();
            let t = std::thread::spawn(move || tx.send(2).is_ok());
            std::thread::sleep(std::time::Duration::from_millis(20));
            assert_eq!(rx.recv(), Ok(1));
            assert!(t.join().unwrap());
            assert_eq!(rx.recv(), Ok(2));
        }

        #[test]
        fn multiple_consumers_partition_the_stream() {
            let (tx, rx) = bounded::<u32>(64);
            let rx2 = rx.clone();
            for i in 0..64 {
                tx.send(i).unwrap();
            }
            drop(tx);
            let h1 = std::thread::spawn(move || {
                let mut got = Vec::new();
                while let Ok(v) = rx.recv() {
                    got.push(v);
                }
                got
            });
            let h2 = std::thread::spawn(move || {
                let mut got = Vec::new();
                while let Ok(v) = rx2.recv() {
                    got.push(v);
                }
                got
            });
            let mut all = h1.join().unwrap();
            all.extend(h2.join().unwrap());
            all.sort_unstable();
            assert_eq!(all, (0..64).collect::<Vec<_>>());
        }
    }
}
