//! Minimal offline stand-in for `criterion`.
//!
//! Runs each benchmark closure for a short, fixed measurement window and
//! prints the mean time per iteration (plus derived throughput). There is no
//! statistical analysis, warm-up tuning or HTML report — just enough to keep
//! `cargo bench` useful for relative comparisons offline.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Target wall-clock time spent measuring one benchmark.
const MEASUREMENT_WINDOW: Duration = Duration::from_millis(300);

/// Throughput declaration used to derive elements/s or bytes/s.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// How `iter_batched` amortises setup; ignored by this shim.
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Identifier for a parameterised benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.id)
    }
}

/// Measurement driver handed to benchmark closures.
pub struct Bencher {
    iters: u64,
    nanos_per_iter: f64,
}

impl Bencher {
    /// Time `routine` repeatedly for the measurement window.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // One untimed call to warm caches and find a per-iteration estimate.
        let start = Instant::now();
        std::hint::black_box(routine());
        let estimate = start.elapsed().max(Duration::from_nanos(1));
        let target =
            (MEASUREMENT_WINDOW.as_nanos() / estimate.as_nanos().max(1)).clamp(1, 1_000_000) as u64;
        let start = Instant::now();
        for _ in 0..target {
            std::hint::black_box(routine());
        }
        let elapsed = start.elapsed();
        self.iters = target;
        self.nanos_per_iter = elapsed.as_nanos() as f64 / target as f64;
    }

    /// Like `iter`, but re-creates the input with `setup` outside the timed
    /// region on every iteration.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        let input = setup();
        let start = Instant::now();
        std::hint::black_box(routine(input));
        let estimate = start.elapsed().max(Duration::from_nanos(1));
        let target =
            (MEASUREMENT_WINDOW.as_nanos() / estimate.as_nanos().max(1)).clamp(1, 100_000) as u64;
        let mut total = Duration::ZERO;
        for _ in 0..target {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            total += start.elapsed();
        }
        self.iters = target;
        self.nanos_per_iter = total.as_nanos() as f64 / target as f64;
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Sample count is fixed in this shim; accepted for API compatibility.
    pub fn sample_size(&mut self, _samples: usize) -> &mut Self {
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            iters: 0,
            nanos_per_iter: 0.0,
        };
        f(&mut bencher);
        self.report(&id.to_string(), &bencher);
        self
    }

    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut bencher = Bencher {
            iters: 0,
            nanos_per_iter: 0.0,
        };
        f(&mut bencher, input);
        self.report(&id.to_string(), &bencher);
        self
    }

    pub fn finish(self) {}

    fn report(&self, id: &str, bencher: &Bencher) {
        let per_iter = Duration::from_nanos(bencher.nanos_per_iter as u64);
        let rate = match self.throughput {
            Some(Throughput::Elements(n)) => {
                format!("  {:>12.0} elem/s", n as f64 * 1e9 / bencher.nanos_per_iter)
            }
            Some(Throughput::Bytes(n)) => {
                format!(
                    "  {:>12.1} MiB/s",
                    n as f64 * 1e9 / bencher.nanos_per_iter / (1024.0 * 1024.0)
                )
            }
            None => String::new(),
        };
        println!(
            "{}/{id:<24} {:>12?}/iter ({} iters){rate}",
            self.name, per_iter, bencher.iters
        );
    }
}

/// Entry point mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            throughput: None,
            _criterion: self,
        }
    }

    pub fn bench_function<F>(&mut self, id: impl Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.benchmark_group("bench").bench_function(id, f);
        self
    }
}

/// Bundle benchmark functions under one name, as real criterion does.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emit a `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
