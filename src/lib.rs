//! # datastalls — reproducing *Analyzing and Mitigating Data Stalls in DNN Training* (VLDB 2021)
//!
//! This crate is the top-level facade of the reproduction.  The paper makes
//! three artifacts and this workspace rebuilds all of them in Rust:
//!
//! * **DS-Analyzer** ([`analyzer`]) — differential profiling that splits a
//!   training epoch into GPU compute, *prep stalls* (CPU pre-processing) and
//!   *fetch stalls* (storage I/O), plus the what-if model
//!   `speed = min(F(x), P, G)` used to predict the effect of more DRAM, more
//!   cores, or faster GPUs.
//! * **CoorDL** ([`coordl`]) — a coordinated data-loading library with three
//!   techniques: the never-evict **MinIO** cache, **partitioned caching**
//!   across the servers of a distributed job, and **coordinated prep** that
//!   shares one fetch-and-prep sweep among concurrent hyper-parameter-search
//!   jobs.  All three run behind one [`coordl::Session`] builder (mirroring
//!   [`pipeline::Experiment`]) with pluggable cache tiers and fetch
//!   backends.  This is a *functional*, multi-threaded implementation that
//!   really moves bytes — exactly-once delivery, per-epoch randomness and
//!   failure handling are enforced by the types and verified by tests — and
//!   every run yields a [`coordl::LoaderReport`] whose JSON is structurally
//!   comparable to the simulator's, which `dstool validate` diffs for the
//!   paper's predicted-vs-empirical check (Table 5 / Figure 16).
//! * **The analysis** ([`pipeline`]) — a calibrated input-pipeline simulator
//!   that reproduces every figure and table of the paper's evaluation on a
//!   laptop, with the paper's server SKUs ([`pipeline::ServerConfig`]),
//!   datasets ([`dataset::DatasetSpec`]) and model zoo ([`gpu::ModelKind`]).
//!
//! ## Quick start
//!
//! Ask DS-Analyzer whether ResNet18 training on an SSD server with 35 % of
//! ImageNet-1k cached is I/O-, CPU- or GPU-bound, and what cache size would
//! fix it:
//!
//! ```
//! use datastalls::prelude::*;
//!
//! let dataset = DatasetSpec::imagenet_1k().scaled(200); // laptop-sized
//! let server = ServerConfig::config_ssd_v100()
//!     .with_cache_fraction(dataset.total_bytes(), 0.35);
//! let job = JobSpec::new(
//!     ModelKind::ResNet18,
//!     dataset,
//!     8,
//!     LoaderConfig::dali_best(ModelKind::ResNet18),
//! );
//!
//! let rates = ProfiledRates::measure(&server, &job);
//! let whatif = WhatIfAnalysis::new(rates);
//! println!("bottleneck at 35% cache: {:?}", whatif.bottleneck(0.35));
//! println!("cache needed to mask fetch stalls: {:.0}%",
//!          whatif.recommended_cache_fraction() * 100.0);
//!
//! // Then measure the actual effect of switching the loader to CoorDL.
//! // Every scenario runs through the same `Experiment` builder and returns
//! // one `SimReport`.
//! let dali = Experiment::on(&server)
//!     .job(job.clone())
//!     .scenario(Scenario::SingleServer)
//!     .epochs(3)
//!     .run();
//! let coordl = Experiment::on(&server)
//!     .job(job.with_loader(LoaderConfig::coordl_best(ModelKind::ResNet18)))
//!     .epochs(3)
//!     .run();
//! assert!(coordl.speedup_over(&dali) >= 1.0);
//!
//! // The same builder handles HP search, distributed training and mixed
//! // clusters — e.g. 8 concurrent HP-search jobs sharing the server:
//! let hp = Experiment::on(&server)
//!     .job(JobSpec::new(
//!         ModelKind::ResNet18,
//!         DatasetSpec::imagenet_1k().scaled(2000),
//!         1,
//!         LoaderConfig::coordl_best(ModelKind::ResNet18),
//!     ))
//!     .scenario(Scenario::HpSearch { jobs: 8 })
//!     .epochs(2)
//!     .run();
//! println!("{:.0} samples/s/job", hp.steady_per_job_samples_per_sec());
//! ```
//!
//! ## Workspace layout
//!
//! | Crate | Re-exported as | Contents |
//! |---|---|---|
//! | `coordl-simkit` | [`simkit`] | discrete-event primitives: virtual time, pipelined-latency recurrence, fair-share resources |
//! | `coordl-storage` | [`storage`] | device profiles (HDD/SSD/NVMe), the OS-page-cache stand-in, per-node I/O accounting |
//! | `coordl-cache` | [`cache`] | cache policies: LRU/FIFO/CLOCK and MinIO, plus the partitioned-cache directory |
//! | `coordl-dataset` | [`dataset`] | the paper's datasets as synthetic specs, epoch samplers, storage formats, functional stores |
//! | `coordl-prep` | [`prep`] | pre-processing cost model (PyTorch / DALI-CPU / DALI-GPU) and executable transforms |
//! | `coordl-gpu` | [`gpu`] | model zoo with calibrated per-GPU ingestion rates |
//! | `coordl-net` | [`net`] | commodity-Ethernet model used by partitioned caching |
//! | `coordl-pipeline` | [`pipeline`] | the [`pipeline::Experiment`] simulator (single-server, HP search, distributed, mixed cluster) |
//! | `coordl` | [`coordl`] | the functional CoorDL library: MinIO cache, coordinated prep, partitioned cache cluster |
//! | `ds-analyzer` | [`analyzer`] | differential stall profiling and what-if prediction |
//! | `coordl-dnn` | [`dnn`] | miniature MLP training substrate for the accuracy-equivalence experiment |
//!
//! The benches under `crates/bench` regenerate every table and figure of the
//! paper; `EXPERIMENTS.md` maps each one to its paper counterpart.

pub use coordl;
pub use dataset;
pub use dcache as cache;
pub use dnn;
pub use dsanalyzer as analyzer;
pub use gpu;
pub use netsim as net;
pub use pipeline;
pub use prep;
pub use simkit;
pub use storage;

/// Everything needed to run the common experiments, in one import.
pub mod prelude {
    pub use crate::analyzer::{Bottleneck, DifferentialReport, ProfiledRates, WhatIfAnalysis};
    pub use crate::cache::{Cache, MinIoCache, PolicyKind};
    pub use crate::coordl::{
        BatchStream, CacheTier, DirectBackend, FetchBackend, LoaderReport, MinIoByteCache, Mode,
        PartitionedCacheCluster, PolicyByteCache, ProfiledBackend, Session, SessionConfig,
    };
    pub use crate::dataset::{DataSource, DatasetSpec, LabeledVectorStore, SyntheticItemStore};
    pub use crate::gpu::{GpuGeneration, ModelKind, ModelProfile};
    pub use crate::pipeline::{
        Axis, EpochMetrics, EpochUpdate, Experiment, ExperimentSpec, JobSpec, LoaderConfig,
        LoaderKind, RunResult, Scenario, ServerConfig, SimReport, SweepReport, SweepRunner,
        SweepSpec,
    };
    pub use crate::prep::{ExecutablePipeline, PrepBackend, PrepPipeline};
    pub use crate::storage::DeviceProfile;
}

/// Headline numbers the paper reports, kept in one place so tests and
/// documentation agree on what "reproducing the shape" means.
pub mod paper {
    /// Max HP-search speedup the paper reports for CoorDL over DALI (§1: the
    /// M5 audio model on Config-SSD-V100).
    pub const MAX_HP_SEARCH_SPEEDUP: f64 = 5.7;
    /// Max single-server training speedup (§1, §5.1).
    pub const MAX_SINGLE_SERVER_SPEEDUP: f64 = 2.0;
    /// Max distributed-training speedup (§1: AlexNet on two HDD servers).
    pub const MAX_DISTRIBUTED_SPEEDUP: f64 = 15.0;
    /// Fraction of epoch time the worst observed fetch stall consumes (§3.3.1
    /// reports DNNs spend 10–70 % of epoch time blocked on I/O).
    pub const MAX_FETCH_STALL_FRACTION: f64 = 0.70;
    /// Extra page-cache misses attributed to thrashing (§3.3.1: ~20 %).
    pub const PAGE_CACHE_THRASHING_EXTRA_MISSES: f64 = 0.20;
    /// Read amplification observed for 8 uncoordinated HP-search jobs with a
    /// 35 % cache (§3.3.1: 7×).
    pub const HP_SEARCH_READ_AMPLIFICATION: f64 = 7.0;
    /// DS-Analyzer's what-if predictions land within 4 % of empirical runs
    /// (§3.4, Table 5).
    pub const DSANALYZER_PREDICTION_ERROR: f64 = 0.04;
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn prelude_exposes_the_main_entry_points() {
        // A compile-time smoke test: the common workflow is expressible using
        // only the prelude.
        let ds = DatasetSpec::imagenet_1k().scaled(2000);
        let server = ServerConfig::config_ssd_v100().with_cache_fraction(ds.total_bytes(), 0.35);
        let job = JobSpec::new(
            ModelKind::ResNet18,
            ds,
            8,
            LoaderConfig::dali_best(ModelKind::ResNet18),
        );
        let report = Experiment::on(&server)
            .job(job.clone())
            .scenario(Scenario::SingleServer)
            .epochs(2)
            .run();
        assert_eq!(report.single().epochs.len(), 2);
        let rates = ProfiledRates::measure(&server, &job);
        assert!(rates.gpu_rate > 0.0);
    }

    #[test]
    #[allow(clippy::assertions_on_constants)]
    fn paper_constants_are_internally_consistent() {
        use super::paper::*;
        assert!(MAX_HP_SEARCH_SPEEDUP > MAX_SINGLE_SERVER_SPEEDUP);
        assert!(MAX_DISTRIBUTED_SPEEDUP > MAX_HP_SEARCH_SPEEDUP);
        assert!(MAX_FETCH_STALL_FRACTION < 1.0);
        assert!(DSANALYZER_PREDICTION_ERROR < 0.1);
    }
}
