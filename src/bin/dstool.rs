//! `dstool` — run the named sweep suites from the command line.
//!
//! The paper's workflow (what-if analysis and HP search over dozens of
//! configurations) is a *sweep*; `dstool` exposes the preset sweeps from
//! `benchkit::presets` as a CLI, fanned out across OS threads by
//! `pipeline::SweepRunner`:
//!
//! ```text
//! dstool list                            # show the suite registry
//! dstool sweep cache-sweep               # run one suite, print the table
//! dstool sweep all --out sweeps.json     # run everything, export trajectories
//! dstool smoke --out BENCH_sweep.json \
//!              --baseline ci/bench_baseline.json
//! ```
//!
//! `smoke` is the CI entry point: it runs every suite at a reduced scale
//! *twice* — once across worker threads, once serially — fails unless the two
//! are bit-identical, writes the per-point steady-state throughput to a JSON
//! file, and (with `--baseline`) fails if any preset regressed more than the
//! tolerance against the checked-in baseline.  Simulated time is virtual, so
//! these throughput numbers are deterministic across machines: the gate
//! catches behavioural regressions in the simulator, not CI-runner jitter.
//!
//! Refresh the baseline after an intentional change with
//! `cargo run --release --bin dstool -- smoke --refresh-baseline`, which
//! rewrites `ci/bench_baseline.json` in canonical form (sorted keys,
//! trailing newline) so refresh diffs stay minimal.

use benchkit::{
    find_suite, run_chaos, run_fetch_sweep, run_fs_sweep, run_mega_sweep, run_multi_tenant,
    run_tier_sweep, run_validation, run_worker_sweep, ChaosConfig, ChaosReport, FetchSweepConfig,
    FetchSweepReport, FsSweepConfig, FsSweepReport, GateKind, MegaSweepConfig, MegaSweepReport,
    MultiTenantConfig, MultiTenantReport, SweepSuite, Table, TierSweepConfig, TierSweepReport,
    ValidationConfig, WorkerSweepConfig, WorkerSweepReport, CHAOS_NAME, FETCH_SWEEP_NAME,
    FS_SWEEP_NAME, MEGA_SWEEP_NAME, MULTI_TENANT_NAME, SMOKE_EXTRA_SCALE, SUITES, TIER_SWEEP_NAME,
    WORKER_SWEEP_NAME,
};
use datastalls::pipeline::json::{self, Value};
use datastalls::pipeline::{SweepReport, SweepRunner};
use std::process::ExitCode;

/// Default thread count for `smoke`: enough to prove the parallel path even
/// on single-core CI runners.
const SMOKE_THREADS: usize = 4;

/// Default regression tolerance for the baseline gate (fraction).
const DEFAULT_TOLERANCE: f64 = 0.10;

/// Minimum fast-over-exact speedup `sweep mega-sweep` must demonstrate.
/// The ratio compares both engines on the same host and run, so it is
/// machine-independent in a way raw points/sec is not.
const MIN_MEGA_SPEEDUP: f64 = 10.0;

/// Where `smoke --refresh-baseline` writes when no `--baseline` is given.
const DEFAULT_BASELINE: &str = "ci/bench_baseline.json";

/// Minimum serial-over-pool speedup `fetch-sweep` must demonstrate at its
/// largest fetch-thread count — gated only on hosts with at least
/// [`MIN_FETCH_GATE_CORES`] cores, since an undersized host measures the OS
/// scheduler, not the fetch pool.
const MIN_FETCH_SPEEDUP: f64 = 1.5;

/// Core floor below which the fetch-sweep wall-clock gate is skipped.
const MIN_FETCH_GATE_CORES: usize = 4;

fn usage() -> &'static str {
    "usage: dstool <command> [options]\n\
     \n\
     commands:\n\
     \u{20} list                         list the preset sweep suites\n\
     \u{20} sweep <suite|all>            run a simulator suite and print its table\n\
     \u{20}       [--threads N|--serial] [--scale N] [--out FILE]\n\
     \u{20} sweep worker-sweep           run the *runtime* worker-count preset:\n\
     \u{20}       the prep-heavy Session workload at several --workers values,\n\
     \u{20}       gating bit-identical streams and printing wall-clock scaling\n\
     \u{20}       [--scale N] [--out FILE]\n\
     \u{20} sweep tier-sweep             run the *runtime* cache-hierarchy preset:\n\
     \u{20}       a DRAM% x SSD% grid of tiered Sessions, gating one identical\n\
     \u{20}       stream for the whole grid and printing per-tier hit ratios\n\
     \u{20}       [--scale N] [--out FILE]\n\
     \u{20} sweep fs-sweep               run the *runtime* real-bytes I/O preset:\n\
     \u{20}       a readahead x tier-backing grid of FsBackend Sessions over a\n\
     \u{20}       VFS, gating one identical stream, exact physical-read counts\n\
     \u{20}       and a real on-disk spill manifest for persistent points\n\
     \u{20}       [--scale N] [--out FILE] [--os-root DIR]\n\
     \u{20} sweep fetch-sweep            run the *runtime* parallel-fetch preset:\n\
     \u{20}       the fetch-bound Session workload at several --fetch-threads\n\
     \u{20}       values with the cache shard count pinned, gating bit-identical\n\
     \u{20}       streams/counters and printing wall-clock fetch scaling\n\
     \u{20}       [--scale N] [--out FILE]\n\
     \u{20} sweep chaos                  run the *runtime* fault-injection preset:\n\
     \u{20}       a partitioned cluster under a seeded kill/leave/rejoin\n\
     \u{20}       schedule next to its fault-free twin, gating the healthy\n\
     \u{20}       prefix, exactly-once delivery, shard coverage and recovery\n\
     \u{20}       [--scale N] [--out FILE]\n\
     \u{20} sweep multi-tenant           run the *runtime* multi-tenant preset:\n\
     \u{20}       churning tenants over one shared Server, gating one identical\n\
     \u{20}       stream across shard and worker counts plus quota/reclamation\n\
     \u{20}       invariants\n\
     \u{20}       [--scale N] [--out FILE]\n\
     \u{20} sweep mega-sweep             run the 100k-point what-if grid on the\n\
     \u{20}       vectorized MinIO engine, re-run a strided subsample on the\n\
     \u{20}       exact engine, and gate bit-identity plus a >=10x speedup\n\
     \u{20}       [--scale N] [--threads N] [--out FILE]\n\
     \u{20} smoke                        CI smoke: every suite, parallel vs serial\n\
     \u{20}       [--threads N] [--scale N] [--out FILE] [--only SUITE]\n\
     \u{20}       [--baseline FILE] [--tolerance FRAC] [--refresh-baseline]\n\
     \u{20} validate                     run the same workload through the\n\
     \u{20}       simulator (Experiment) and the runtime (Session) and gate\n\
     \u{20}       the predicted-vs-empirical deltas (Table 5 / Figure 16)\n\
     \u{20}       [--scale N] [--cache-frac F] [--jobs N] [--epochs N]\n\
     \u{20}       [--tolerance FRAC] [--out FILE]\n\
     \n\
     sweep options:\n\
     \u{20} --threads N    worker threads (default: one per core, min 2)\n\
     \u{20} --serial       run on the calling thread\n\
     \u{20} --scale N      extra dataset scale-down on top of the bench scale\n\
     \u{20}                (default 1 for sweep, 8 for smoke)\n\
     \u{20} --out FILE     write full sweep trajectories as JSON\n\
     \n\
     smoke options:\n\
     \u{20} --out FILE          summary JSON path (default BENCH_sweep.json)\n\
     \u{20} --only SUITE        run a single suite or runtime preset (skips the\n\
     \u{20}                     summary artifact and the baseline gate; mutually\n\
     \u{20}                     exclusive with --refresh-baseline)\n\
     \u{20} --baseline FILE     fail on >tolerance throughput regressions\n\
     \u{20} --tolerance FRAC    regression tolerance (default 0.10)\n\
     \u{20} --refresh-baseline  instead of gating, rewrite the baseline file\n\
     \u{20}                     (ci/bench_baseline.json unless --baseline) in\n\
     \u{20}                     canonical form: sorted keys, trailing newline\n\
     \n\
     validate options:\n\
     \u{20} --scale N         ImageNet-1k scale-down (default 4000)\n\
     \u{20} --cache-frac F    cache fraction of the dataset (default 0.35)\n\
     \u{20} --jobs N          coordinated HP-search jobs (default 4)\n\
     \u{20} --epochs N        epochs incl. warm-up (default 3, min 2)\n\
     \u{20} --tolerance FRAC  gate tolerance (default 0.05)\n\
     \u{20} --out FILE        JSON report path (default VALIDATE.json)"
}

struct SweepCmd {
    suites: Vec<&'static SweepSuite>,
    threads: Option<usize>,
    serial: bool,
    scale: u64,
    out: Option<String>,
}

struct SmokeCmd {
    threads: usize,
    scale: u64,
    out: String,
    baseline: Option<String>,
    tolerance: f64,
    refresh_baseline: bool,
    /// Run a single suite / runtime preset instead of the full matrix (no
    /// summary artifact, no baseline gate).
    only: Option<String>,
}

struct ValidateCmd {
    config: ValidationConfig,
    out: String,
}

struct RuntimeSweepCmd {
    scale: u64,
    out: Option<String>,
    /// `fs-sweep` only: run on a real filesystem rooted here instead of the
    /// deterministic in-memory VFS.
    os_root: Option<String>,
}

struct MegaSweepCmd {
    scale: u64,
    /// Worker threads for both engine phases (0 = one per core).
    threads: usize,
    out: Option<String>,
}

enum Command {
    Help,
    List,
    Sweep(SweepCmd),
    WorkerSweep(RuntimeSweepCmd),
    TierSweep(RuntimeSweepCmd),
    MultiTenantSweep(RuntimeSweepCmd),
    FsSweep(RuntimeSweepCmd),
    ChaosSweep(RuntimeSweepCmd),
    FetchSweep(RuntimeSweepCmd),
    MegaSweep(MegaSweepCmd),
    Smoke(SmokeCmd),
    Validate(ValidateCmd),
}

fn parse_args(args: &[String]) -> Result<Command, String> {
    let mut it = args.iter();
    let cmd = it.next().ok_or_else(|| usage().to_string())?;
    let rest: Vec<&String> = it.collect();
    match cmd.as_str() {
        "list" => {
            if let Some(extra) = rest.first() {
                return Err(format!("list takes no arguments, got {extra}"));
            }
            Ok(Command::List)
        }
        "sweep" => parse_sweep(&rest),
        "smoke" => parse_smoke(&rest),
        "validate" => parse_validate(&rest),
        "--help" | "-h" | "help" => Ok(Command::Help),
        other => Err(format!(
            "unknown command {other}; valid commands: list, sweep, smoke, validate, help\n\n{}",
            usage()
        )),
    }
}

fn parse_sweep(args: &[&String]) -> Result<Command, String> {
    let mut it = args.iter();
    let which = it
        .next()
        .ok_or_else(|| format!("sweep needs a suite name or 'all'\n\n{}", usage()))?;
    if which.as_str() == MEGA_SWEEP_NAME {
        // The mega sweep runs its own two-phase (fast, then exact) harness
        // rather than a plain SweepRunner, so it parses its own flags.
        let mut cmd = MegaSweepCmd {
            scale: 1,
            threads: 0,
            out: None,
        };
        while let Some(flag) = it.next() {
            let mut value = || -> Result<&String, String> {
                it.next()
                    .copied()
                    .ok_or_else(|| format!("{flag} needs a value"))
            };
            match flag.as_str() {
                "--scale" => cmd.scale = parse_scale(value()?)?,
                "--threads" => cmd.threads = parse_threads(value()?)?,
                "--out" => cmd.out = Some(value()?.clone()),
                other => {
                    return Err(format!(
                        "unknown flag {other} for {MEGA_SWEEP_NAME} \
                         (only --scale, --threads and --out apply)"
                    ))
                }
            }
        }
        return Ok(Command::MegaSweep(cmd));
    }
    if RUNTIME_PRESETS.contains(&which.as_str()) {
        // The runtime presets sweep their own axes (worker counts, tier
        // sizes, shard counts), so the simulator-sweep threading flags do
        // not apply.
        let name = which.as_str().to_string();
        let mut cmd = RuntimeSweepCmd {
            scale: 1,
            out: None,
            os_root: None,
        };
        while let Some(flag) = it.next() {
            let mut value = || -> Result<&String, String> {
                it.next()
                    .copied()
                    .ok_or_else(|| format!("{flag} needs a value"))
            };
            match flag.as_str() {
                "--scale" => cmd.scale = parse_scale(value()?)?,
                "--out" => cmd.out = Some(value()?.clone()),
                "--os-root" if name == FS_SWEEP_NAME => {
                    cmd.os_root = Some(value()?.clone());
                }
                other => {
                    return Err(format!(
                        "unknown flag {other} for {name} (the runtime presets sweep \
                         their own axes; only --scale and --out apply{})",
                        if name == FS_SWEEP_NAME {
                            ", plus --os-root for this preset"
                        } else {
                            ""
                        }
                    ))
                }
            }
        }
        return Ok(match name.as_str() {
            WORKER_SWEEP_NAME => Command::WorkerSweep(cmd),
            TIER_SWEEP_NAME => Command::TierSweep(cmd),
            FS_SWEEP_NAME => Command::FsSweep(cmd),
            CHAOS_NAME => Command::ChaosSweep(cmd),
            FETCH_SWEEP_NAME => Command::FetchSweep(cmd),
            _ => Command::MultiTenantSweep(cmd),
        });
    }
    let suites: Vec<&'static SweepSuite> = if which.as_str() == "all" {
        SUITES.iter().collect()
    } else {
        vec![find_suite(which).ok_or_else(|| {
            format!(
                "unknown suite {which}; available: {}, {}, {}",
                suite_names().join(", "),
                MEGA_SWEEP_NAME,
                RUNTIME_PRESETS.join(", ")
            )
        })?]
    };
    let mut cmd = SweepCmd {
        suites,
        threads: None,
        serial: false,
        scale: 1,
        out: None,
    };
    while let Some(flag) = it.next() {
        let mut value = || -> Result<&String, String> {
            it.next()
                .copied()
                .ok_or_else(|| format!("{flag} needs a value"))
        };
        match flag.as_str() {
            "--threads" => cmd.threads = Some(parse_threads(value()?)?),
            "--serial" => cmd.serial = true,
            "--scale" => cmd.scale = parse_scale(value()?)?,
            "--out" => cmd.out = Some(value()?.clone()),
            other => return Err(format!("unknown flag {other}\n\n{}", usage())),
        }
    }
    if cmd.serial && cmd.threads.is_some() {
        return Err("--serial and --threads are mutually exclusive".to_string());
    }
    Ok(Command::Sweep(cmd))
}

/// Every name `smoke --only` accepts: the simulator suites, the runtime
/// presets and the vectorized-engine sweep.
fn smoke_only_names() -> Vec<&'static str> {
    let mut names = suite_names();
    names.extend(RUNTIME_PRESETS);
    names.push(MEGA_SWEEP_NAME);
    names
}

fn parse_smoke(args: &[&String]) -> Result<Command, String> {
    let mut cmd = SmokeCmd {
        threads: SMOKE_THREADS,
        scale: SMOKE_EXTRA_SCALE,
        out: "BENCH_sweep.json".to_string(),
        baseline: None,
        tolerance: DEFAULT_TOLERANCE,
        refresh_baseline: false,
        only: None,
    };
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = || -> Result<&String, String> {
            it.next()
                .copied()
                .ok_or_else(|| format!("{flag} needs a value"))
        };
        match flag.as_str() {
            "--threads" => {
                cmd.threads = parse_threads(value()?)?;
                if cmd.threads < 2 {
                    return Err(
                        "smoke exists to prove the parallel path; --threads must be >= 2"
                            .to_string(),
                    );
                }
            }
            "--scale" => cmd.scale = parse_scale(value()?)?,
            "--out" => cmd.out = value()?.clone(),
            "--baseline" => cmd.baseline = Some(value()?.clone()),
            "--refresh-baseline" => cmd.refresh_baseline = true,
            "--only" => {
                let v = value()?;
                if !smoke_only_names().contains(&v.as_str()) {
                    return Err(format!(
                        "unknown suite {v} for --only; valid: {}",
                        smoke_only_names().join(", ")
                    ));
                }
                cmd.only = Some(v.clone());
            }
            "--tolerance" => {
                let v = value()?;
                cmd.tolerance = v
                    .parse::<f64>()
                    .ok()
                    .filter(|t| (0.0..1.0).contains(t))
                    .ok_or_else(|| format!("tolerance must be in [0,1), got {v}"))?;
            }
            other => return Err(format!("unknown flag {other}\n\n{}", usage())),
        }
    }
    if cmd.only.is_some() && cmd.refresh_baseline {
        return Err(
            "--only runs a partial smoke and cannot refresh the baseline; \
             run a full smoke --refresh-baseline instead"
                .to_string(),
        );
    }
    Ok(Command::Smoke(cmd))
}

fn parse_validate(args: &[&String]) -> Result<Command, String> {
    let mut cmd = ValidateCmd {
        config: ValidationConfig::default(),
        out: "VALIDATE.json".to_string(),
    };
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = || -> Result<&String, String> {
            it.next()
                .copied()
                .ok_or_else(|| format!("{flag} needs a value"))
        };
        match flag.as_str() {
            "--scale" => cmd.config.scale = parse_scale(value()?)?,
            "--cache-frac" => {
                let v = value()?;
                cmd.config.cache_fraction = v
                    .parse::<f64>()
                    .ok()
                    .filter(|f| (0.01..=1.0).contains(f))
                    .ok_or_else(|| format!("cache-frac must be in [0.01,1], got {v}"))?;
            }
            "--jobs" => {
                let v = value()?;
                cmd.config.jobs = v
                    .parse::<usize>()
                    .ok()
                    .filter(|&n| (1..=64).contains(&n))
                    .ok_or_else(|| format!("jobs must be 1..=64, got {v}"))?;
            }
            "--epochs" => {
                let v = value()?;
                cmd.config.epochs = v
                    .parse::<u64>()
                    .ok()
                    .filter(|&n| (2..=16).contains(&n))
                    .ok_or_else(|| format!("epochs must be 2..=16, got {v}"))?;
            }
            "--tolerance" => {
                let v = value()?;
                cmd.config.tolerance = v
                    .parse::<f64>()
                    .ok()
                    .filter(|t| (0.0..1.0).contains(t))
                    .ok_or_else(|| format!("tolerance must be in [0,1), got {v}"))?;
            }
            "--out" => cmd.out = value()?.clone(),
            other => return Err(format!("unknown flag {other}\n\n{}", usage())),
        }
    }
    Ok(Command::Validate(cmd))
}

fn parse_threads(v: &str) -> Result<usize, String> {
    v.parse::<usize>()
        .ok()
        .filter(|&n| (1..=256).contains(&n))
        .ok_or_else(|| format!("threads must be 1..=256, got {v}"))
}

fn parse_scale(v: &str) -> Result<u64, String> {
    v.parse::<u64>()
        .ok()
        .filter(|&n| n >= 1)
        .ok_or_else(|| format!("scale must be >= 1, got {v}"))
}

/// The runtime presets `sweep` routes past the simulator-suite registry.
const RUNTIME_PRESETS: [&str; 6] = [
    WORKER_SWEEP_NAME,
    TIER_SWEEP_NAME,
    MULTI_TENANT_NAME,
    FS_SWEEP_NAME,
    CHAOS_NAME,
    FETCH_SWEEP_NAME,
];

fn suite_names() -> Vec<&'static str> {
    SUITES.iter().map(|s| s.name).collect()
}

fn run_list() {
    let mut table = Table::new(
        "Preset sweep suites",
        &["name", "points", "paper", "description"],
    );
    for suite in &SUITES {
        table.row(&[
            suite.name.to_string(),
            suite.spec(1).num_points().to_string(),
            suite.paper.to_string(),
            suite.description.to_string(),
        ]);
    }
    table.row(&[
        MEGA_SWEEP_NAME.to_string(),
        MegaSweepConfig::default().spec().num_points().to_string(),
        "§6 (what-if analysis)".to_string(),
        "vectorized MinIO engine: the full cache x vcpus x batch x prefetch \
         x order cross product, exact-engine subsample gated bit-identical"
            .to_string(),
    ]);
    let worker_defaults = WorkerSweepConfig::default();
    table.row(&[
        WORKER_SWEEP_NAME.to_string(),
        worker_defaults.worker_counts.len().to_string(),
        "§5 (prefetch/overlap)".to_string(),
        "runtime Session executor: wall-clock scaling over prep workers, \
         bit-identical streams gated"
            .to_string(),
    ]);
    let tier_defaults = TierSweepConfig::default();
    table.row(&[
        TIER_SWEEP_NAME.to_string(),
        (tier_defaults.dram_percents.len() * tier_defaults.ssd_percents.len()).to_string(),
        "§4.2 / Table 2 (SSD extends MinIO)".to_string(),
        "runtime cache hierarchy: DRAM% x SSD% grid of tiered Sessions, \
         per-tier hit ratios, one stream gated for the whole grid"
            .to_string(),
    ]);
    let mt_defaults = MultiTenantConfig::default();
    table.row(&[
        MULTI_TENANT_NAME.to_string(),
        mt_defaults.shard_counts.len().to_string(),
        "§5 / Fig 10 (coordinated HP search)".to_string(),
        "runtime multi-tenant Server: churning tenants over one shared \
         hierarchy, quotas and reclamation gated, one stream across shard \
         and worker counts"
            .to_string(),
    ]);
    let fs_defaults = FsSweepConfig::default();
    table.row(&[
        FS_SWEEP_NAME.to_string(),
        (fs_defaults.readahead_pages.len() * fs_defaults.persistent_ssd.len()).to_string(),
        "§3 / Fig 5-7 (fetch stalls are real I/O)".to_string(),
        "runtime real-bytes I/O: FsBackend Sessions over a VFS, readahead x \
         tier-backing grid, exact physical reads and on-disk spill manifests \
         gated, one stream for the whole grid"
            .to_string(),
    ]);
    let chaos_defaults = ChaosConfig::default();
    table.row(&[
        CHAOS_NAME.to_string(),
        chaos_defaults.worker_counts.len().to_string(),
        "§5.2 (partitioned caching under churn)".to_string(),
        "runtime fault injection: a partitioned cluster under a seeded \
         kill/leave/rejoin schedule vs its fault-free twin; healthy prefix, \
         exactly-once delivery, shard coverage and recovery gated"
            .to_string(),
    ]);
    let fetch_defaults = FetchSweepConfig::default();
    table.row(&[
        FETCH_SWEEP_NAME.to_string(),
        fetch_defaults.fetch_thread_counts.len().to_string(),
        "§3 (fetch stalls) / §5 (overlap)".to_string(),
        "runtime parallel fetch: the fetch-bound Session workload over a \
         sharded fetch pool, cache shard count pinned, bit-identical streams \
         and counters gated across every fetch-thread count"
            .to_string(),
    ]);
    table.print();
    println!("\nrun one with: dstool sweep <name>   (or 'dstool sweep all')");
}

/// Print one suite's per-point summary table.
fn print_suite_table(suite: &SweepSuite, report: &SweepReport) {
    let mut table = Table::new(
        format!("Sweep {} ({})", suite.name, suite.paper),
        &["point", "samples/s", "samples/s/job", "epoch s"],
    )
    .with_caption(suite.description.to_string());
    for point in &report.points {
        match point.report() {
            Some(sim) => {
                table.row(&[
                    point.label.label(),
                    format!("{:.0}", sim.steady_samples_per_sec()),
                    format!("{:.0}", sim.steady_per_job_samples_per_sec()),
                    format!("{:.2}", sim.steady_epoch_seconds()),
                ]);
            }
            None => {
                table.row(&[
                    point.label.label(),
                    "failed".to_string(),
                    "-".to_string(),
                    "-".to_string(),
                ]);
            }
        }
    }
    table.print();
}

/// Write an `--out` artifact, creating missing parent directories first so
/// `--out results/bench/BENCH.json` works on a fresh checkout; both failure
/// modes name the path and the failing step.
fn write_out(path: &str, contents: &str) -> Result<(), String> {
    let parent = std::path::Path::new(path).parent();
    if let Some(dir) = parent.filter(|d| !d.as_os_str().is_empty()) {
        std::fs::create_dir_all(dir).map_err(|e| {
            format!(
                "cannot create parent directory {} for {path}: {e}",
                dir.display()
            )
        })?;
    }
    std::fs::write(path, contents).map_err(|e| format!("cannot write {path}: {e}"))
}

/// Re-serialize a JSON document in canonical form: sorted object keys and a
/// trailing newline, so checked-in artifacts diff cleanly run to run.
fn canonical_json(doc: &str) -> String {
    let parsed = json::parse(doc).expect("reports emit valid JSON");
    let mut canonical = String::with_capacity(doc.len() + 1);
    json::write_value(&mut canonical, &parsed);
    canonical.push('\n');
    canonical
}

fn run_sweep(cmd: &SweepCmd) -> Result<(), String> {
    let runner = if cmd.serial {
        SweepRunner::serial()
    } else {
        match cmd.threads {
            Some(n) => SweepRunner::with_threads(n),
            None => SweepRunner::new(),
        }
    };
    let mut failed = 0usize;
    let mut exports = Vec::new();
    for suite in &cmd.suites {
        let spec = suite.spec(cmd.scale);
        let report = runner.run(&spec);
        print_suite_table(suite, &report);
        failed += report.num_failed();
        exports.push(report);
    }
    if let Some(path) = &cmd.out {
        let mut doc = String::from("{\"sweeps\":[");
        for (i, report) in exports.iter().enumerate() {
            if i > 0 {
                doc.push(',');
            }
            doc.push_str(&report.to_json());
        }
        doc.push_str("]}");
        write_out(path, &doc)?;
        println!("\nwrote full trajectories to {path}");
    }
    if failed > 0 {
        return Err(format!("{failed} grid point(s) failed"));
    }
    Ok(())
}

/// Print the runtime worker sweep's per-point table.
fn print_worker_table(report: &WorkerSweepReport) {
    let mut table = Table::new(
        format!("Runtime {} (coordl::Session executor)", WORKER_SWEEP_NAME),
        &[
            "workers",
            "wall s",
            "samples/s",
            "speedup",
            "prep busy s",
            "consumer wait s",
        ],
    )
    .with_caption(format!(
        "prep-heavy preset: {} items x{} decode, {} epochs; streams and stats \
         bit-identical across all points",
        report.config.items, report.config.decode_multiplier, report.config.epochs
    ));
    for p in &report.points {
        table.row(&[
            p.workers.to_string(),
            format!("{:.3}", p.wall_seconds),
            format!("{:.0}", p.samples_per_sec),
            format!("{:.2}x", report.speedup(p.workers).unwrap_or(1.0)),
            format!("{:.3}", p.prep_busy_seconds),
            format!("{:.3}", p.consumer_wait_seconds),
        ]);
    }
    table.print();
}

/// Print the runtime tier sweep's per-point table.
fn print_tier_table(report: &TierSweepReport) {
    let mut table = Table::new(
        format!(
            "Runtime {} (coordl::TieredByteCache hierarchy)",
            TIER_SWEEP_NAME
        ),
        &[
            "point",
            "hit ratio",
            "dram hits",
            "ssd hits",
            "disk bytes/epoch",
        ],
    )
    .with_caption(format!(
        "{} items, {} epochs; DRAM MinIO spilling into a SATA-SSD MinIO tier; \
         one identical stream across the whole grid and every worker count",
        report.config.items, report.config.epochs
    ));
    for p in &report.points {
        table.row(&[
            p.label(),
            format!("{:.3}", p.steady_hit_ratio),
            format!("{:.3}", p.dram_hit_ratio),
            format!("{:.3}", p.ssd_hit_ratio),
            format!("{:.0}", p.steady_disk_bytes),
        ]);
    }
    table.print();
}

/// Print the runtime multi-tenant preset's per-point table.
fn print_multi_tenant_table(report: &MultiTenantReport) {
    let mut table = Table::new(
        format!("Runtime {} (coordl::Server)", MULTI_TENANT_NAME),
        &[
            "point",
            "agg hit ratio",
            "peak dram",
            "dram cap",
            "quota excess",
            "leftover",
        ],
    )
    .with_caption(format!(
        "{} tenants churning over {} epochs, {} items each; one stream across \
         every shard and worker count, quotas and departure reclamation gated",
        report.config.tenants, report.config.epochs, report.config.items
    ));
    for p in &report.points {
        table.row(&[
            p.label(),
            format!("{:.3}", p.aggregate_hit_ratio),
            p.peak_dram_used.to_string(),
            p.dram_capacity.to_string(),
            p.max_quota_excess.to_string(),
            p.leftover_bytes.to_string(),
        ]);
    }
    table.print();
}

fn run_multi_tenant_cmd(cmd: &RuntimeSweepCmd) -> Result<(), String> {
    let report = run_multi_tenant(&MultiTenantConfig::scaled(cmd.scale));
    print_multi_tenant_table(&report);
    report.verify()?;
    println!(
        "multi-tenancy gate passed: {} shard counts, one stream (digest {:016x}), \
         quotas enforced and every departed byte reclaimed",
        report.points.len(),
        report.digest().unwrap_or(0)
    );
    if let Some(path) = &cmd.out {
        write_out(path, &report.to_json())?;
        println!("wrote {path}");
    }
    Ok(())
}

/// Print the runtime real-bytes I/O preset's per-point table.
fn print_fs_table(report: &FsSweepReport) {
    let mut table = Table::new(
        format!("Runtime {} (coordl::FsBackend over a VFS)", FS_SWEEP_NAME),
        &[
            "point",
            "hit ratio",
            "span hit/miss",
            "vfs reads",
            "vfs writes",
            "manifest",
            "measured s",
        ],
    )
    .with_caption(format!(
        "{} items, {} epochs; every fetch is a real page-aligned read, \
         persistent points spill the SSD tier to files; one identical stream \
         across the whole readahead x backing grid",
        report.config.items, report.config.epochs
    ));
    for p in &report.points {
        table.row(&[
            p.label(),
            format!("{:.3}", p.steady_hit_ratio),
            format!("{}/{}", p.span_hits, p.span_misses),
            p.vfs_reads.to_string(),
            p.vfs_writes.to_string(),
            if p.manifest_present { "yes" } else { "-" }.to_string(),
            format!("{:.4}", p.measured_device_seconds),
        ]);
    }
    table.print();
}

fn run_fs_sweep_cmd(cmd: &RuntimeSweepCmd) -> Result<(), String> {
    let config = FsSweepConfig {
        os_root: cmd.os_root.as_ref().map(std::path::PathBuf::from),
        ..FsSweepConfig::scaled(cmd.scale)
    };
    let report = run_fs_sweep(&config);
    print_fs_table(&report);
    report.verify()?;
    println!(
        "real-bytes gate passed: {} grid points on {}, one stream (digest \
         {:016x}), physical reads exact and spill manifests durable",
        report.points.len(),
        if config.os_root.is_some() {
            "the real filesystem"
        } else {
            "the in-memory VFS"
        },
        report.digest().unwrap_or(0)
    );
    if let Some(path) = &cmd.out {
        write_out(path, &report.to_json())?;
        println!("wrote {path}");
    }
    Ok(())
}

/// Print the runtime fault-injection preset's per-epoch table.
fn print_chaos_table(report: &ChaosReport) {
    let mut table = Table::new(
        format!("Runtime {CHAOS_NAME} (coordl::PartitionedCacheCluster under faults)"),
        &["epoch", "fault", "samples", "cached frac", "healthy frac"],
    )
    .with_caption(format!(
        "{} nodes, {} items, {} epochs; healthy prefix = {} epoch(s); streams \
         bit-identical across worker counts, faults included",
        report.config.nodes, report.config.items, report.config.epochs, report.prefix_epochs
    ));
    for (e, &samples) in report.chaos_epoch_samples.iter().enumerate() {
        let fault = report
            .faults
            .iter()
            .filter(|f| f.at_epoch == e as u64)
            .map(|f| format!("{} n{}", f.kind, f.node))
            .collect::<Vec<_>>()
            .join(", ");
        table.row(&[
            e.to_string(),
            if fault.is_empty() {
                "-".to_string()
            } else {
                fault
            },
            samples.to_string(),
            format!("{:.3}", report.chaos_epoch_cached_fraction[e]),
            if e + 1 == report.chaos_epoch_samples.len() {
                format!("{:.3}", report.healthy_final_cached_fraction)
            } else {
                "-".to_string()
            },
        ]);
    }
    table.print();
}

fn run_chaos_sweep_cmd(cmd: &RuntimeSweepCmd) -> Result<(), String> {
    let report = run_chaos(&ChaosConfig::scaled(cmd.scale));
    print_chaos_table(&report);
    report.verify()?;
    println!(
        "chaos gate passed: {} fault(s) injected, healthy prefix bit-identical \
         (digest {:016x}), every sample delivered exactly once, no shard lost, \
         hit ratio recovered",
        report.faults.len(),
        report.digest()
    );
    if let Some(path) = &cmd.out {
        write_out(path, &report.to_json())?;
        println!("wrote {path}");
    }
    Ok(())
}

fn run_tier_sweep_cmd(cmd: &RuntimeSweepCmd) -> Result<(), String> {
    let report = run_tier_sweep(&TierSweepConfig::scaled(cmd.scale));
    print_tier_table(&report);
    report.verify()?;
    println!(
        "hierarchy gate passed: {} grid points, one stream (digest {:016x}), \
         SSD monotonically extends MinIO reach",
        report.points.len(),
        report.digest().unwrap_or(0)
    );
    if let Some(path) = &cmd.out {
        write_out(path, &report.to_json())?;
        println!("wrote {path}");
    }
    Ok(())
}

fn run_worker_sweep_cmd(cmd: &RuntimeSweepCmd) -> Result<(), String> {
    let report = run_worker_sweep(&WorkerSweepConfig::scaled(cmd.scale));
    print_worker_table(&report);
    report.bit_identical()?;
    println!(
        "bit-equality gate passed: {} worker counts, one stream (digest {:016x})",
        report.points.len(),
        report.digest().unwrap_or(0)
    );
    if let Some(path) = &cmd.out {
        write_out(path, &report.to_json())?;
        println!("wrote {path}");
    }
    Ok(())
}

/// Print the runtime fetch sweep's per-point table.
fn print_fetch_table(report: &FetchSweepReport) {
    let mut table = Table::new(
        format!("Runtime {} (coordl::Session fetch pool)", FETCH_SWEEP_NAME),
        &[
            "fetch threads",
            "wall s",
            "samples/s",
            "speedup",
            "fetch busy s",
            "fetch stall s",
        ],
    )
    .with_caption(format!(
        "fetch-bound preset: {} items x {} B, {} cache shards (pinned), {} \
         epochs; streams and stats bit-identical across all points",
        report.config.items,
        report.config.avg_item_bytes,
        report.config.fetch_shards,
        report.config.epochs
    ));
    for p in &report.points {
        table.row(&[
            p.fetch_threads.to_string(),
            format!("{:.3}", p.wall_seconds),
            format!("{:.0}", p.samples_per_sec),
            format!("{:.2}x", report.speedup(p.fetch_threads).unwrap_or(1.0)),
            format!("{:.3}", p.fetch_busy_seconds),
            format!("{:.3}", p.fetch_stall_seconds),
        ]);
    }
    table.print();
}

/// Gate the runtime fetch sweep: bit-equality always, wall-clock scaling
/// only where the host can express it.  Called *after* any results JSON is
/// on disk so a gate failure still leaves the artifact for diagnosis.
fn gate_fetch_sweep(report: &FetchSweepReport) -> Result<(), String> {
    report.bit_identical()?;
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let max_f = report
        .config
        .fetch_thread_counts
        .iter()
        .copied()
        .max()
        .unwrap_or(1);
    let Some(speedup) = report.speedup(max_f) else {
        return Ok(());
    };
    if cores < MIN_FETCH_GATE_CORES {
        // An undersized host measures the OS scheduler, not the fetch pool;
        // the bit-equality and baseline digest gates still apply in full.
        println!(
            "note: only {cores} core(s) available; fetch-pool speedup gate \
             skipped (measured {speedup:.2}x at fetch_threads={max_f})"
        );
        return Ok(());
    }
    if speedup >= MIN_FETCH_SPEEDUP {
        return Ok(());
    }
    // The preset is sized (item floor + large raw items + decode
    // multiplier 1) so the fetch stage dominates every point: on a host
    // with enough cores the sharded pool beating the serial sweep is its
    // whole reason to exist, and a miss is a regression.
    Err(format!(
        "fetch-sweep: fetch_threads={max_f} is only {speedup:.2}x over the \
         serial fetch stage on a {cores}-core host \
         (gate: >={MIN_FETCH_SPEEDUP:.1}x)"
    ))
}

fn run_fetch_sweep_cmd(cmd: &RuntimeSweepCmd) -> Result<(), String> {
    let report = run_fetch_sweep(&FetchSweepConfig::scaled(cmd.scale));
    print_fetch_table(&report);
    if let Some(path) = &cmd.out {
        write_out(path, &report.to_json())?;
        println!("wrote {path}");
    }
    gate_fetch_sweep(&report)?;
    println!(
        "parallel-fetch gate passed: {} fetch-thread counts, one stream \
         (digest {:016x}), counters identical",
        report.points.len(),
        report.digest().unwrap_or(0)
    );
    Ok(())
}

/// Print the mega sweep's two-engine comparison.
fn print_mega_table(report: &MegaSweepReport) {
    let mut table = Table::new(
        format!("Sweep {MEGA_SWEEP_NAME} (vectorized MinIO engine, §6 what-if grid)"),
        &["engine", "points", "wall s", "points/s"],
    )
    .with_caption(format!(
        "{} threads; every exact-engine report compared bit for bit against \
         the fast path ({} mismatches)",
        report.threads, report.mismatches
    ));
    table.row(&[
        "fast".to_string(),
        report.points.to_string(),
        format!("{:.2}", report.fast_seconds),
        format!("{:.0}", report.points_per_sec()),
    ]);
    table.row(&[
        "exact".to_string(),
        report.exact_points.to_string(),
        format!("{:.2}", report.exact_seconds),
        format!("{:.0}", report.exact_points_per_sec()),
    ]);
    table.print();
    println!(
        "speedup_vs_exact: {:.1}x  (sim_sweep_points_per_sec: {:.0})",
        report.speedup_vs_exact(),
        report.points_per_sec()
    );
}

fn run_mega_sweep_cmd(cmd: &MegaSweepCmd) -> Result<(), String> {
    let cfg = MegaSweepConfig {
        threads: cmd.threads,
        ..MegaSweepConfig::scaled(cmd.scale)
    };
    let report = run_mega_sweep(&cfg);
    print_mega_table(&report);
    if let Some(path) = &cmd.out {
        write_out(path, &report.to_json())?;
        println!("wrote {path}");
    }
    report.bit_identical()?;
    let speedup = report.speedup_vs_exact();
    if speedup < MIN_MEGA_SPEEDUP {
        return Err(format!(
            "mega-sweep: fast engine is only {speedup:.1}x the exact engine \
             (gate: >={MIN_MEGA_SPEEDUP:.0}x); the vectorized path lost its \
             advantage — profile pipeline::fast before shipping"
        ));
    }
    println!(
        "mega-sweep gate passed: {} points, {} exact re-runs bit-identical, \
         {speedup:.1}x over the exact engine",
        report.points, report.exact_points
    );
    Ok(())
}

/// Gate the runtime worker sweep: bit-equality always, wall-clock scaling
/// only where the host can express it.  Called *after* the results JSON is
/// on disk so a gate failure still leaves the artifact for diagnosis.
fn gate_worker_sweep(report: &WorkerSweepReport) -> Result<(), String> {
    report.bit_identical()?;
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let max_workers = report
        .config
        .worker_counts
        .iter()
        .copied()
        .max()
        .unwrap_or(1);
    let Some(speedup) = report.speedup(max_workers) else {
        return Ok(());
    };
    if cores < max_workers {
        // An undersized host measures the OS scheduler, not the executor;
        // the bit-equality and baseline digest gates still apply in full.
        println!(
            "note: only {cores} core(s) available; wall-clock speedup gate \
             skipped (measured {speedup:.2}x at workers={max_workers})"
        );
        return Ok(());
    }
    if speedup > 1.0 {
        return Ok(());
    }
    // The preset is sized (item floor + decode multiplier) so every point
    // runs for hundreds of milliseconds of prep work even at smoke scale:
    // on a host with enough cores, parallel prep beating serial is the
    // executor's whole point, and a miss here is a regression — not
    // scheduler jitter to be retried away at a different scale.
    Err(format!(
        "worker-sweep: workers={max_workers} did not beat workers=1 \
         ({speedup:.2}x) on a {cores}-core host"
    ))
}

/// Measure the runtime worker preset inside `smoke` (gating happens later,
/// once the artifact is written).
fn smoke_worker_sweep(cmd: &SmokeCmd) -> WorkerSweepReport {
    let report = run_worker_sweep(&WorkerSweepConfig::scaled(cmd.scale));
    print_worker_table(&report);
    report
}

/// `smoke --only <name>`: run a single suite / runtime preset with its own
/// gates, skipping the summary artifact and the baseline comparison (a
/// partial document would not be comparable to the checked-in baseline).
fn run_smoke_only(cmd: &SmokeCmd, name: &str) -> Result<(), String> {
    println!(
        "dstool smoke --only {name}: extra scale {}, {} worker threads vs serial",
        cmd.scale, cmd.threads
    );
    if let Some(suite) = find_suite(name) {
        let spec = suite.spec(cmd.scale);
        let parallel = SweepRunner::with_threads(cmd.threads).run(&spec);
        let serial = SweepRunner::serial().run(&spec);
        if parallel != serial {
            return Err(format!(
                "suite {name}: parallel run is not bit-identical to the serial run"
            ));
        }
        if parallel.num_failed() > 0 {
            return Err(format!(
                "suite {name}: {} point(s) failed",
                parallel.num_failed()
            ));
        }
        print_suite_table(suite, &parallel);
        println!(
            "  {name}: parallel == serial, {} points",
            parallel.points.len()
        );
    } else {
        match name {
            WORKER_SWEEP_NAME => {
                let report = run_worker_sweep(&WorkerSweepConfig::scaled(cmd.scale));
                print_worker_table(&report);
                gate_worker_sweep(&report)?;
            }
            TIER_SWEEP_NAME => {
                let report = run_tier_sweep(&TierSweepConfig::scaled(cmd.scale));
                print_tier_table(&report);
                report.verify()?;
            }
            MULTI_TENANT_NAME => {
                let report = run_multi_tenant(&MultiTenantConfig::scaled(cmd.scale));
                print_multi_tenant_table(&report);
                report.verify()?;
            }
            FS_SWEEP_NAME => {
                let report = run_fs_sweep(&FsSweepConfig::scaled(cmd.scale));
                print_fs_table(&report);
                report.verify()?;
            }
            CHAOS_NAME => {
                let report = run_chaos(&ChaosConfig::scaled(cmd.scale));
                print_chaos_table(&report);
                report.verify()?;
            }
            FETCH_SWEEP_NAME => {
                let report = run_fetch_sweep(&FetchSweepConfig::scaled(cmd.scale));
                print_fetch_table(&report);
                gate_fetch_sweep(&report)?;
            }
            MEGA_SWEEP_NAME => {
                let report = run_mega_sweep(&MegaSweepConfig::scaled(cmd.scale));
                print_mega_table(&report);
                report.bit_identical()?;
            }
            other => {
                // parse_smoke validated the name; reaching here means the
                // registry and this dispatch went out of sync.
                return Err(format!("--only {other} has no runner"));
            }
        }
    }
    println!(
        "note: --only {name} ran a single suite; no summary artifact written, \
         baseline digests not gated"
    );
    Ok(())
}

fn run_smoke(cmd: &SmokeCmd) -> Result<(), String> {
    if let Some(name) = &cmd.only {
        return run_smoke_only(cmd, name);
    }
    println!(
        "dstool smoke: {} suites, extra scale {}, {} worker threads vs serial",
        SUITES.len(),
        cmd.scale,
        cmd.threads
    );
    let parallel_runner = SweepRunner::with_threads(cmd.threads);
    let serial_runner = SweepRunner::serial();
    let mut results: Vec<(&SweepSuite, SweepReport)> = Vec::new();
    for suite in &SUITES {
        let spec = suite.spec(cmd.scale);
        let start = std::time::Instant::now();
        let parallel = parallel_runner.run(&spec);
        let serial = serial_runner.run(&spec);
        if parallel != serial {
            return Err(format!(
                "suite {}: parallel run is not bit-identical to the serial run",
                suite.name
            ));
        }
        if parallel.num_failed() > 0 {
            let labels: Vec<String> = parallel
                .points
                .iter()
                .filter(|p| p.outcome.is_err())
                .map(|p| p.label.label())
                .collect();
            return Err(format!(
                "suite {}: {} point(s) failed: {}",
                suite.name,
                labels.len(),
                labels.join(", ")
            ));
        }
        println!(
            "  {:<14} {:>2} points  parallel == serial  ({:.2?})",
            suite.name,
            parallel.points.len(),
            start.elapsed()
        );
        results.push((suite, parallel));
    }

    // The runtime half: the worker-count and cache-hierarchy presets on the
    // real executor.  Measure first, write the artifact, then gate — a gate
    // failure must not discard the results CI needs for diagnosis.
    let worker_report = smoke_worker_sweep(cmd);
    let tier_report = run_tier_sweep(&TierSweepConfig::scaled(cmd.scale));
    print_tier_table(&tier_report);
    let mt_report = run_multi_tenant(&MultiTenantConfig::scaled(cmd.scale));
    print_multi_tenant_table(&mt_report);
    // The real-bytes preset always smokes on the in-memory VFS: its digests
    // and physical-read counts are machine-independent there, which is what
    // a cross-machine baseline can gate.  CI exercises the OsVfs leg
    // separately via `sweep fs-sweep --os-root`.
    let fs_report = run_fs_sweep(&FsSweepConfig::scaled(cmd.scale));
    print_fs_table(&fs_report);
    // The fault-injection preset: the partitioned runtime under a seeded
    // membership schedule, next to its fault-free twin.
    let chaos_report = run_chaos(&ChaosConfig::scaled(cmd.scale));
    print_chaos_table(&chaos_report);
    // The parallel-fetch preset: the fetch-bound workload over the sharded
    // fetch pool, digest and counters pinned across fetch-thread counts.
    let fetch_report = run_fetch_sweep(&FetchSweepConfig::scaled(cmd.scale));
    print_fetch_table(&fetch_report);
    // The vectorized-engine preset runs with one thread per core (not
    // `--threads`, which exists to prove the parallel sweep path even on
    // undersized hosts): the recorded thread count then doubles as the
    // core count the baseline gate normalizes points/sec by.
    let mega_report = run_mega_sweep(&MegaSweepConfig::scaled(cmd.scale));
    print_mega_table(&mega_report);

    let doc = smoke_json(
        cmd,
        &results,
        &worker_report,
        &tier_report,
        &mt_report,
        &fs_report,
        &chaos_report,
        &fetch_report,
        &mega_report,
    );
    write_out(&cmd.out, &doc)?;
    println!("wrote {}", cmd.out);

    gate_worker_sweep(&worker_report)?;
    tier_report.verify()?;
    mt_report.verify()?;
    fs_report.verify()?;
    chaos_report.verify()?;
    gate_fetch_sweep(&fetch_report)?;
    mega_report.bit_identical()?;

    if cmd.refresh_baseline {
        let path = cmd.baseline.as_deref().unwrap_or(DEFAULT_BASELINE);
        write_out(path, &canonical_json(&doc))?;
        println!("refreshed baseline {path} (canonical: sorted keys, trailing newline)");
    } else if let Some(path) = &cmd.baseline {
        check_baseline(path, &doc, cmd.tolerance, cmd.scale)?;
        println!(
            "baseline gate passed: no preset regressed more than {:.0}% vs {path}",
            cmd.tolerance * 100.0
        );
    }
    Ok(())
}

/// The `BENCH_sweep.json` / `ci/bench_baseline.json` document: per-preset
/// simulated steady-state throughput (deterministic across machines) plus
/// the runtime worker sweep (its stream digest and counters are
/// deterministic and baseline-gated; its wall-clock numbers are
/// informational).
#[allow(clippy::too_many_arguments)]
fn smoke_json(
    cmd: &SmokeCmd,
    results: &[(&SweepSuite, SweepReport)],
    worker_report: &WorkerSweepReport,
    tier_report: &TierSweepReport,
    mt_report: &MultiTenantReport,
    fs_report: &FsSweepReport,
    chaos_report: &ChaosReport,
    fetch_report: &FetchSweepReport,
    mega_report: &MegaSweepReport,
) -> String {
    let mut out = String::with_capacity(4096);
    out.push_str("{\"schema\":\"datastalls-bench-sweep/v1\",\"threads\":");
    out.push_str(&cmd.threads.to_string());
    out.push_str(",\"extra_scale\":");
    out.push_str(&cmd.scale.to_string());
    out.push_str(",\"suites\":[");
    for (i, (suite, report)) in results.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"suite\":");
        json::write_string(&mut out, suite.name);
        out.push_str(",\"paper\":");
        json::write_string(&mut out, suite.paper);
        out.push_str(",\"points\":[");
        for (j, (label, sim)) in report.reports().enumerate() {
            if j > 0 {
                out.push(',');
            }
            out.push_str("{\"label\":");
            json::write_string(&mut out, &label.label());
            out.push_str(",\"steady_samples_per_sec\":");
            json::write_f64(&mut out, sim.steady_samples_per_sec());
            out.push_str(",\"steady_epoch_seconds\":");
            json::write_f64(&mut out, sim.steady_epoch_seconds());
            out.push('}');
        }
        out.push_str("]}");
    }
    out.push_str("],\"runtime_worker_sweep\":");
    out.push_str(&worker_report.to_json());
    out.push_str(",\"runtime_tier_sweep\":");
    out.push_str(&tier_report.to_json());
    out.push_str(",\"runtime_multi_tenant\":");
    out.push_str(&mt_report.to_json());
    out.push_str(",\"runtime_fs_sweep\":");
    out.push_str(&fs_report.to_json());
    out.push_str(",\"runtime_chaos\":");
    out.push_str(&chaos_report.to_json());
    out.push_str(",\"runtime_fetch_sweep\":");
    out.push_str(&fetch_report.to_json());
    out.push_str(",\"sim_sweep\":");
    out.push_str(&mega_report.to_json());
    out.push('}');
    out
}

/// Fail if any baseline preset's throughput regressed more than `tolerance`,
/// or disappeared from the current run.  The runtime worker sweep's stream
/// digest (a machine-independent hash of everything the executor delivered)
/// is compared exactly when the baseline records one.
fn check_baseline(
    path: &str,
    current_doc: &str,
    tolerance: f64,
    current_scale: u64,
) -> Result<(), String> {
    let baseline_text =
        std::fs::read_to_string(path).map_err(|e| format!("cannot read baseline {path}: {e}"))?;
    let baseline = json::parse(&baseline_text)
        .map_err(|e| format!("baseline {path} is not valid JSON: {e}"))?;
    let current = json::parse(current_doc).expect("smoke_json emits valid JSON");

    // Throughput depends on the dataset scale: comparing runs recorded at
    // different --scale values would gate against incomparable numbers.
    let baseline_scale = baseline.get("extra_scale").and_then(Value::as_f64);
    if baseline_scale != Some(current_scale as f64) {
        return Err(format!(
            "baseline {path} was recorded at extra_scale {} but this run used --scale \
             {current_scale}; re-run with a matching --scale or refresh the baseline",
            baseline_scale.map_or("<missing>".to_string(), |s| format!("{s:.0}")),
        ));
    }

    let index = |doc: &Value| -> Vec<(String, String, f64)> {
        let mut points = Vec::new();
        for suite in doc
            .get("suites")
            .and_then(Value::as_array)
            .unwrap_or_default()
        {
            let name = suite
                .get("suite")
                .and_then(Value::as_str)
                .unwrap_or("?")
                .to_string();
            for p in suite
                .get("points")
                .and_then(Value::as_array)
                .unwrap_or_default()
            {
                if let (Some(label), Some(rate)) = (
                    p.get("label").and_then(Value::as_str),
                    p.get("steady_samples_per_sec").and_then(Value::as_f64),
                ) {
                    points.push((name.clone(), label.to_string(), rate));
                }
            }
        }
        points
    };

    // Behavioural gates on the runtime presets: a digest only changes when
    // the delivered stream itself changes, which is a correctness event,
    // not jitter.
    let digest_of = |doc: &Value, preset: &str| -> Option<String> {
        doc.get(preset)?
            .get("stream_digest")
            .and_then(Value::as_str)
            .map(str::to_string)
    };
    for preset in [
        "runtime_worker_sweep",
        "runtime_tier_sweep",
        "runtime_multi_tenant",
        "runtime_fs_sweep",
        "runtime_chaos",
        "runtime_fetch_sweep",
    ] {
        if let Some(expected) = digest_of(&baseline, preset) {
            let got = digest_of(&current, preset);
            if got.as_deref() != Some(expected.as_str()) {
                return Err(format!(
                    "{preset} stream digest changed: baseline {path} has \
                     {expected}, this run produced {} — the runtime now delivers \
                     different bytes; fix the regression or refresh the baseline \
                     after an intentional change",
                    got.as_deref().unwrap_or("<missing>"),
                ));
            }
        }
    }

    // The tier sweep's per-point hit ratios are exact counter arithmetic
    // (virtual sizes, no wall clock), so they are compared exactly: any
    // drift means the hierarchy's placement or demotion behaviour changed.
    let tier_ratios = |doc: &Value| -> Vec<(String, f64, f64, f64)> {
        let mut out = Vec::new();
        for p in doc
            .get("runtime_tier_sweep")
            .and_then(|t| t.get("points"))
            .and_then(Value::as_array)
            .unwrap_or_default()
        {
            if let (Some(label), Some(total), Some(dram), Some(ssd)) = (
                p.get("label").and_then(Value::as_str),
                p.get("steady_hit_ratio").and_then(Value::as_f64),
                p.get("dram_hit_ratio").and_then(Value::as_f64),
                p.get("ssd_hit_ratio").and_then(Value::as_f64),
            ) {
                out.push((label.to_string(), total, dram, ssd));
            }
        }
        out
    };
    let current_ratios = tier_ratios(&current);
    for (label, total, dram, ssd) in tier_ratios(&baseline) {
        let Some((_, cur_total, cur_dram, cur_ssd)) =
            current_ratios.iter().find(|(l, ..)| *l == label)
        else {
            return Err(format!("runtime_tier_sweep/{label}: missing from this run"));
        };
        let same = |a: f64, b: f64| (a - b).abs() <= 1e-9;
        if !same(total, *cur_total) || !same(dram, *cur_dram) || !same(ssd, *cur_ssd) {
            return Err(format!(
                "runtime_tier_sweep/{label}: per-tier hit ratios changed \
                 (total/dram/ssd {total:.6}/{dram:.6}/{ssd:.6} -> \
                 {cur_total:.6}/{cur_dram:.6}/{cur_ssd:.6}); the cache \
                 hierarchy behaves differently — fix it or refresh the baseline"
            ));
        }
    }

    // Like the tier sweep, the multi-tenant preset's aggregate hit ratio is
    // exact counter arithmetic over a deterministic churn schedule: any
    // drift means admission, quota scaling or reclamation changed.
    let mt_ratios = |doc: &Value| -> Vec<(String, f64)> {
        let mut out = Vec::new();
        for p in doc
            .get("runtime_multi_tenant")
            .and_then(|t| t.get("points"))
            .and_then(Value::as_array)
            .unwrap_or_default()
        {
            if let (Some(label), Some(ratio)) = (
                p.get("label").and_then(Value::as_str),
                p.get("aggregate_hit_ratio").and_then(Value::as_f64),
            ) {
                out.push((label.to_string(), ratio));
            }
        }
        out
    };
    let current_mt = mt_ratios(&current);
    for (label, ratio) in mt_ratios(&baseline) {
        let Some((_, cur)) = current_mt.iter().find(|(l, _)| *l == label) else {
            return Err(format!(
                "runtime_multi_tenant/{label}: missing from this run"
            ));
        };
        if (ratio - *cur).abs() > 1e-9 {
            return Err(format!(
                "runtime_multi_tenant/{label}: aggregate hit ratio changed \
                 ({ratio:.6} -> {cur:.6}); the shared hierarchy behaves \
                 differently under churn — fix it or refresh the baseline"
            ));
        }
    }

    // The vectorized-engine preset: raw points/sec is machine-dependent, so
    // the gate compares (a) the fast-over-exact speedup, a same-host ratio,
    // against half the baseline's, and (b) per-core points/sec against a
    // quarter of the baseline's — loose enough to absorb CI-runner
    // generation differences, tight enough to catch the fast path silently
    // degenerating to exact-engine cost.
    let sim_sweep = |doc: &Value| -> Option<(f64, f64, f64)> {
        let s = doc.get("sim_sweep")?;
        Some((
            s.get("points_per_sec").and_then(Value::as_f64)?,
            s.get("threads").and_then(Value::as_f64)?.max(1.0),
            s.get("speedup_vs_exact").and_then(Value::as_f64)?,
        ))
    };
    if let Some((base_pps, base_threads, base_speedup)) = sim_sweep(&baseline) {
        let Some((cur_pps, cur_threads, cur_speedup)) = sim_sweep(&current) else {
            return Err(format!(
                "sim_sweep: baseline {path} records the vectorized-engine \
                 preset but this run did not produce one"
            ));
        };
        if cur_speedup < base_speedup * 0.5 {
            return Err(format!(
                "sim_sweep: fast-over-exact speedup dropped {base_speedup:.1}x \
                 -> {cur_speedup:.1}x (gate: half the baseline); the \
                 vectorized engine regressed relative to the exact engine on \
                 this very host — fix pipeline::fast or refresh the baseline"
            ));
        }
        let base_norm = base_pps / base_threads;
        let cur_norm = cur_pps / cur_threads;
        if cur_norm < base_norm * 0.25 {
            return Err(format!(
                "sim_sweep: per-core sweep throughput dropped {base_norm:.0} \
                 -> {cur_norm:.0} points/sec/core (gate: a quarter of the \
                 baseline); sim_sweep_points_per_sec regressed beyond what \
                 runner variance explains"
            ));
        }
    }

    let current_points = index(&current);
    let mut regressions = Vec::new();
    let mut improvements = 0usize;
    let baseline_points = index(&baseline);
    if baseline_points.is_empty() {
        return Err(format!("baseline {path} contains no comparable points"));
    }
    for (suite, label, old) in baseline_points {
        let Some((_, _, new)) = current_points
            .iter()
            .find(|(s, l, _)| *s == suite && *l == label)
        else {
            regressions.push(format!("{suite}/{label}: missing from this run"));
            continue;
        };
        if *new < old * (1.0 - tolerance) {
            regressions.push(format!(
                "{suite}/{label}: {old:.1} -> {new:.1} samples/s ({:+.1}%)",
                (new / old - 1.0) * 100.0
            ));
        } else if *new > old * (1.0 + tolerance) {
            improvements += 1;
        }
    }
    if improvements > 0 {
        println!(
            "note: {improvements} preset(s) improved more than {:.0}%; consider refreshing {path}",
            tolerance * 100.0
        );
    }
    if regressions.is_empty() {
        Ok(())
    } else {
        Err(format!(
            "perf regression gate failed ({} preset(s) below baseline {path}):\n  {}",
            regressions.len(),
            regressions.join("\n  ")
        ))
    }
}

fn run_validate(cmd: &ValidateCmd) -> Result<(), String> {
    println!(
        "dstool validate: ImageNet-1k/{} at {:.0}% cache, {} HP jobs, {} epochs",
        cmd.config.scale,
        cmd.config.cache_fraction * 100.0,
        cmd.config.jobs,
        cmd.config.epochs
    );
    let report = run_validation(&cmd.config);
    let mut table = Table::new(
        "Predicted (Experiment) vs empirical (Session)",
        &[
            "scenario",
            "metric",
            "predicted",
            "empirical",
            "delta",
            "gate",
        ],
    )
    .with_caption(
        "hit ratios gated absolutely, byte counts relatively; \
         stall-vs-device seconds reported for context (Table 5 / Figure 16)",
    );
    for row in &report.rows {
        let gate = match row.gate {
            GateKind::Informational => "info".to_string(),
            _ if row.passes(report.config.tolerance) => "pass".to_string(),
            _ => "FAIL".to_string(),
        };
        table.row(&[
            row.scenario.to_string(),
            row.metric.to_string(),
            format!("{:.4}", row.predicted),
            format!("{:.4}", row.empirical),
            format!("{:.4}", row.delta()),
            gate,
        ]);
    }
    table.print();

    // Canonical form (sorted keys, trailing newline), same as the bench
    // baseline: VALIDATE.json diffs cleanly across runs and machines.
    write_out(&cmd.out, &canonical_json(&report.to_json()))?;
    println!("wrote {}", cmd.out);

    if report.passed() {
        println!(
            "validation gate passed: every gated delta within {:.0}%",
            report.config.tolerance * 100.0
        );
        Ok(())
    } else {
        let lines: Vec<String> = report
            .failures()
            .iter()
            .map(|r| {
                format!(
                    "{}/{}: predicted {:.4} vs empirical {:.4}",
                    r.scenario, r.metric, r.predicted, r.empirical
                )
            })
            .collect();
        Err(format!(
            "predicted-vs-empirical gate failed ({} row(s)):\n  {}",
            lines.len(),
            lines.join("\n  ")
        ))
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let outcome = match parse_args(&args) {
        Ok(Command::Help) => {
            println!("{}", usage());
            Ok(())
        }
        Ok(Command::List) => {
            run_list();
            Ok(())
        }
        Ok(Command::Sweep(cmd)) => run_sweep(&cmd),
        Ok(Command::WorkerSweep(cmd)) => run_worker_sweep_cmd(&cmd),
        Ok(Command::TierSweep(cmd)) => run_tier_sweep_cmd(&cmd),
        Ok(Command::MultiTenantSweep(cmd)) => run_multi_tenant_cmd(&cmd),
        Ok(Command::FsSweep(cmd)) => run_fs_sweep_cmd(&cmd),
        Ok(Command::ChaosSweep(cmd)) => run_chaos_sweep_cmd(&cmd),
        Ok(Command::FetchSweep(cmd)) => run_fetch_sweep_cmd(&cmd),
        Ok(Command::MegaSweep(cmd)) => run_mega_sweep_cmd(&cmd),
        Ok(Command::Smoke(cmd)) => run_smoke(&cmd),
        Ok(Command::Validate(cmd)) => run_validate(&cmd),
        Err(msg) => Err(msg),
    };
    match outcome {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("{msg}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_list_and_rejects_extras() {
        assert!(matches!(parse_args(&args(&["list"])), Ok(Command::List)));
        assert!(parse_args(&args(&["list", "x"])).is_err());
        assert!(parse_args(&args(&[])).is_err());
        assert!(parse_args(&args(&["bogus"])).is_err());
        // Asking for help is not an error (exit 0, usage on stdout).
        for help in ["--help", "-h", "help"] {
            assert!(matches!(parse_args(&args(&[help])), Ok(Command::Help)));
        }
    }

    #[test]
    fn parses_sweep_flags() {
        let Ok(Command::Sweep(cmd)) = parse_args(&args(&[
            "sweep",
            "cache-sweep",
            "--threads",
            "3",
            "--scale",
            "4",
            "--out",
            "x.json",
        ])) else {
            panic!("expected sweep command");
        };
        assert_eq!(cmd.suites.len(), 1);
        assert_eq!(cmd.suites[0].name, "cache-sweep");
        assert_eq!(cmd.threads, Some(3));
        assert_eq!(cmd.scale, 4);
        assert_eq!(cmd.out.as_deref(), Some("x.json"));

        let Ok(Command::Sweep(all)) = parse_args(&args(&["sweep", "all", "--serial"])) else {
            panic!("expected sweep command");
        };
        assert_eq!(all.suites.len(), SUITES.len());
        assert!(all.serial);
    }

    #[test]
    fn sweep_rejects_bad_input() {
        assert!(parse_args(&args(&["sweep"])).is_err());
        assert!(parse_args(&args(&["sweep", "nope"])).is_err());
        assert!(parse_args(&args(&["sweep", "all", "--serial", "--threads", "2"])).is_err());
        assert!(parse_args(&args(&["sweep", "all", "--threads", "0"])).is_err());
    }

    #[test]
    fn worker_sweep_is_routed_to_the_runtime_preset() {
        let Ok(Command::WorkerSweep(cmd)) = parse_args(&args(&[
            "sweep",
            WORKER_SWEEP_NAME,
            "--scale",
            "4",
            "--out",
            "w.json",
        ])) else {
            panic!("expected worker-sweep command");
        };
        assert_eq!(cmd.scale, 4);
        assert_eq!(cmd.out.as_deref(), Some("w.json"));
        // The simulator threading flags do not apply to the runtime preset.
        assert!(parse_args(&args(&["sweep", WORKER_SWEEP_NAME, "--serial"])).is_err());
        assert!(parse_args(&args(&["sweep", WORKER_SWEEP_NAME, "--threads", "2"])).is_err());
    }

    #[test]
    fn tier_sweep_is_routed_to_the_runtime_preset() {
        let Ok(Command::TierSweep(cmd)) =
            parse_args(&args(&["sweep", TIER_SWEEP_NAME, "--scale", "2"]))
        else {
            panic!("expected tier-sweep command");
        };
        assert_eq!(cmd.scale, 2);
        assert!(parse_args(&args(&["sweep", TIER_SWEEP_NAME, "--serial"])).is_err());
    }

    #[test]
    fn multi_tenant_is_routed_to_the_runtime_preset() {
        let Ok(Command::MultiTenantSweep(cmd)) = parse_args(&args(&[
            "sweep",
            MULTI_TENANT_NAME,
            "--scale",
            "2",
            "--out",
            "mt.json",
        ])) else {
            panic!("expected multi-tenant command");
        };
        assert_eq!(cmd.scale, 2);
        assert_eq!(cmd.out.as_deref(), Some("mt.json"));
        assert!(parse_args(&args(&["sweep", MULTI_TENANT_NAME, "--serial"])).is_err());
        assert!(parse_args(&args(&["sweep", MULTI_TENANT_NAME, "--threads", "2"])).is_err());
    }

    #[test]
    fn mega_sweep_is_routed_to_its_two_phase_harness() {
        let Ok(Command::MegaSweep(cmd)) = parse_args(&args(&[
            "sweep",
            MEGA_SWEEP_NAME,
            "--scale",
            "8",
            "--threads",
            "2",
            "--out",
            "mega.json",
        ])) else {
            panic!("expected mega-sweep command");
        };
        assert_eq!(cmd.scale, 8);
        assert_eq!(cmd.threads, 2);
        assert_eq!(cmd.out.as_deref(), Some("mega.json"));
        // Defaults: full grid, one thread per core.
        let Ok(Command::MegaSweep(cmd)) = parse_args(&args(&["sweep", MEGA_SWEEP_NAME])) else {
            panic!("expected mega-sweep command");
        };
        assert_eq!(cmd.scale, 1);
        assert_eq!(cmd.threads, 0);
        assert!(parse_args(&args(&["sweep", MEGA_SWEEP_NAME, "--serial"])).is_err());
    }

    #[test]
    fn smoke_parses_refresh_baseline() {
        let Ok(Command::Smoke(cmd)) = parse_args(&args(&["smoke", "--refresh-baseline"])) else {
            panic!("expected smoke command");
        };
        assert!(cmd.refresh_baseline);
        assert!(cmd.baseline.is_none(), "defaults to ci/bench_baseline.json");
        let Ok(Command::Smoke(cmd)) = parse_args(&args(&["smoke"])) else {
            panic!("expected smoke command");
        };
        assert!(!cmd.refresh_baseline);
    }

    #[test]
    fn baseline_gate_normalizes_the_sim_sweep_throughput() {
        let baseline = r#"{"extra_scale":8,"suites":[
            {"suite":"s","points":[{"label":"a","steady_samples_per_sec":1000}]}],
            "sim_sweep":{"points_per_sec":32000,"threads":4,"speedup_vs_exact":20.0}}"#;
        let dir = std::env::temp_dir().join("dstool_sim_sweep_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("baseline.json");
        std::fs::write(&path, baseline).unwrap();
        // Same numbers: passes.
        check_baseline(path.to_str().unwrap(), baseline, 0.10, 8).unwrap();
        // Fewer threads at proportional throughput: per-core rate unchanged,
        // still passes — the gate is cores-normalized.
        let fewer = baseline
            .replace("32000", "8000")
            .replace("\"threads\":4", "\"threads\":1");
        check_baseline(path.to_str().unwrap(), &fewer, 0.10, 8).unwrap();
        // Speedup collapsing below half the baseline is a hard failure.
        let slow = baseline.replace("20.0", "6.0");
        let err = check_baseline(path.to_str().unwrap(), &slow, 0.10, 8).unwrap_err();
        assert!(err.contains("fast-over-exact speedup"), "{err}");
        // Per-core throughput collapsing below a quarter is too.
        let cold = baseline.replace("32000", "1000");
        let err = check_baseline(path.to_str().unwrap(), &cold, 0.10, 8).unwrap_err();
        assert!(err.contains("points/sec/core"), "{err}");
        // A baseline that records the preset requires the run to produce it.
        let missing = r#"{"extra_scale":8,"suites":[
            {"suite":"s","points":[{"label":"a","steady_samples_per_sec":1000}]}]}"#;
        let err = check_baseline(path.to_str().unwrap(), missing, 0.10, 8).unwrap_err();
        assert!(err.contains("sim_sweep"), "{err}");
    }

    #[test]
    fn unknown_names_list_the_valid_ones() {
        let Err(err) = parse_args(&args(&["sweep", "nope"])) else {
            panic!("expected an unknown-suite error");
        };
        for name in RUNTIME_PRESETS {
            assert!(err.contains(name), "suite error lists {name}: {err}");
        }
        assert!(err.contains("cache-sweep"), "{err}");
        let Err(err) = parse_args(&args(&["bogus"])) else {
            panic!("expected an unknown-command error");
        };
        for name in ["list", "sweep", "smoke", "validate", "help"] {
            assert!(err.contains(name), "command error lists {name}: {err}");
        }
    }

    #[test]
    fn baseline_gate_compares_multi_tenant_ratios_exactly() {
        let baseline = r#"{"extra_scale":8,"suites":[
            {"suite":"s","points":[{"label":"a","steady_samples_per_sec":1000}]}],
            "runtime_multi_tenant":{"stream_digest":"00000000deadbeef","points":[
                {"label":"shards=1","aggregate_hit_ratio":0.5},
                {"label":"shards=4","aggregate_hit_ratio":0.49}]}}"#;
        let dir = std::env::temp_dir().join("dstool_mt_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("baseline.json");
        std::fs::write(&path, baseline).unwrap();
        check_baseline(path.to_str().unwrap(), baseline, 0.10, 8).unwrap();
        // A drifted aggregate hit ratio is a hard failure.
        let drifted = baseline.replace("0.49}", "0.48}");
        let err = check_baseline(path.to_str().unwrap(), &drifted, 0.10, 8).unwrap_err();
        assert!(err.contains("aggregate hit ratio changed"), "{err}");
        // A changed digest too.
        let changed = baseline.replace("deadbeef", "0badf00d");
        let err = check_baseline(path.to_str().unwrap(), &changed, 0.10, 8).unwrap_err();
        assert!(err.contains("stream digest changed"), "{err}");
        // A missing point is reported as such.
        let missing = r#"{"extra_scale":8,"suites":[
            {"suite":"s","points":[{"label":"a","steady_samples_per_sec":1000}]}],
            "runtime_multi_tenant":{"stream_digest":"00000000deadbeef","points":[
                {"label":"shards=1","aggregate_hit_ratio":0.5}]}}"#;
        let err = check_baseline(path.to_str().unwrap(), missing, 0.10, 8).unwrap_err();
        assert!(
            err.contains("runtime_multi_tenant/shards=4") && err.contains("missing"),
            "{err}"
        );
    }

    #[test]
    fn baseline_gate_compares_tier_sweep_ratios_exactly() {
        let baseline = r#"{"extra_scale":8,"suites":[
            {"suite":"s","points":[{"label":"a","steady_samples_per_sec":1000}]}],
            "runtime_tier_sweep":{"stream_digest":"00000000deadbeef","points":[
                {"label":"dram=35%,ssd=25%","steady_hit_ratio":0.6,
                 "dram_hit_ratio":0.35,"ssd_hit_ratio":0.25}]}}"#;
        let dir = std::env::temp_dir().join("dstool_tier_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("baseline.json");
        std::fs::write(&path, baseline).unwrap();
        check_baseline(path.to_str().unwrap(), baseline, 0.10, 8).unwrap();
        // A drifted ratio is a hard failure even within any throughput
        // tolerance.
        let drifted = baseline.replace("0.25}", "0.26}");
        let err = check_baseline(path.to_str().unwrap(), &drifted, 0.10, 8).unwrap_err();
        assert!(err.contains("per-tier hit ratios changed"), "{err}");
        // A missing point is reported as such.
        let missing = r#"{"extra_scale":8,"suites":[
            {"suite":"s","points":[{"label":"a","steady_samples_per_sec":1000}]}],
            "runtime_tier_sweep":{"stream_digest":"00000000deadbeef","points":[]}}"#;
        let err = check_baseline(path.to_str().unwrap(), missing, 0.10, 8).unwrap_err();
        assert!(err.contains("missing from this run"), "{err}");
    }

    #[test]
    fn baseline_gate_compares_the_runtime_stream_digest() {
        let baseline = r#"{"extra_scale":8,"suites":[
            {"suite":"s","points":[{"label":"a","steady_samples_per_sec":1000}]}],
            "runtime_worker_sweep":{"stream_digest":"00000000deadbeef"}}"#;
        let dir = std::env::temp_dir().join("dstool_digest_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("baseline.json");
        std::fs::write(&path, baseline).unwrap();
        // Matching digest: passes.
        let same = r#"{"extra_scale":8,"suites":[
            {"suite":"s","points":[{"label":"a","steady_samples_per_sec":1000}]}],
            "runtime_worker_sweep":{"stream_digest":"00000000deadbeef"}}"#;
        check_baseline(path.to_str().unwrap(), same, 0.10, 8).unwrap();
        // Changed digest: behavioural regression, hard failure.
        let changed = same.replace("deadbeef", "0badf00d");
        let err = check_baseline(path.to_str().unwrap(), &changed, 0.10, 8).unwrap_err();
        assert!(err.contains("stream digest changed"), "{err}");
        // Missing section counts as a change too.
        let missing = r#"{"extra_scale":8,"suites":[
            {"suite":"s","points":[{"label":"a","steady_samples_per_sec":1000}]}]}"#;
        let err = check_baseline(path.to_str().unwrap(), missing, 0.10, 8).unwrap_err();
        assert!(err.contains("<missing>"), "{err}");
    }

    #[test]
    fn smoke_defaults_and_flags() {
        let Ok(Command::Smoke(cmd)) = parse_args(&args(&["smoke"])) else {
            panic!("expected smoke command");
        };
        assert_eq!(cmd.threads, SMOKE_THREADS);
        assert_eq!(cmd.scale, SMOKE_EXTRA_SCALE);
        assert_eq!(cmd.out, "BENCH_sweep.json");
        assert!(cmd.baseline.is_none());
        assert!((cmd.tolerance - DEFAULT_TOLERANCE).abs() < 1e-12);

        let Ok(Command::Smoke(cmd)) = parse_args(&args(&[
            "smoke",
            "--baseline",
            "ci/bench_baseline.json",
            "--tolerance",
            "0.2",
        ])) else {
            panic!("expected smoke command");
        };
        assert_eq!(cmd.baseline.as_deref(), Some("ci/bench_baseline.json"));
        assert!((cmd.tolerance - 0.2).abs() < 1e-12);

        // smoke exists to prove the parallel path.
        assert!(parse_args(&args(&["smoke", "--threads", "1"])).is_err());
        assert!(parse_args(&args(&["smoke", "--tolerance", "1.5"])).is_err());
    }

    #[test]
    fn validate_defaults_and_flags() {
        let Ok(Command::Validate(cmd)) = parse_args(&args(&["validate"])) else {
            panic!("expected validate command");
        };
        assert_eq!(cmd.config.scale, 4000);
        assert!((cmd.config.cache_fraction - 0.35).abs() < 1e-12);
        assert_eq!(cmd.config.jobs, 4);
        assert_eq!(cmd.config.epochs, 3);
        assert_eq!(cmd.out, "VALIDATE.json");

        let Ok(Command::Validate(cmd)) = parse_args(&args(&[
            "validate",
            "--scale",
            "16000",
            "--cache-frac",
            "0.5",
            "--jobs",
            "2",
            "--epochs",
            "2",
            "--tolerance",
            "0.08",
            "--out",
            "v.json",
        ])) else {
            panic!("expected validate command");
        };
        assert_eq!(cmd.config.scale, 16000);
        assert!((cmd.config.cache_fraction - 0.5).abs() < 1e-12);
        assert_eq!(cmd.config.jobs, 2);
        assert_eq!(cmd.config.epochs, 2);
        assert!((cmd.config.tolerance - 0.08).abs() < 1e-12);
        assert_eq!(cmd.out, "v.json");

        assert!(parse_args(&args(&["validate", "--epochs", "1"])).is_err());
        assert!(parse_args(&args(&["validate", "--cache-frac", "2.0"])).is_err());
        assert!(parse_args(&args(&["validate", "--bogus"])).is_err());
    }

    #[test]
    fn fs_sweep_is_routed_to_the_runtime_preset() {
        let Ok(Command::FsSweep(cmd)) = parse_args(&args(&[
            "sweep",
            FS_SWEEP_NAME,
            "--scale",
            "2",
            "--out",
            "fs.json",
            "--os-root",
            "/tmp/fsroot",
        ])) else {
            panic!("expected fs-sweep command");
        };
        assert_eq!(cmd.scale, 2);
        assert_eq!(cmd.out.as_deref(), Some("fs.json"));
        assert_eq!(cmd.os_root.as_deref(), Some("/tmp/fsroot"));
        // Default: deterministic in-memory VFS.
        let Ok(Command::FsSweep(cmd)) = parse_args(&args(&["sweep", FS_SWEEP_NAME])) else {
            panic!("expected fs-sweep command");
        };
        assert!(cmd.os_root.is_none());
        assert!(parse_args(&args(&["sweep", FS_SWEEP_NAME, "--serial"])).is_err());
        // --os-root is fs-sweep-specific: the other runtime presets never
        // touch a filesystem.
        let Err(err) = parse_args(&args(&["sweep", TIER_SWEEP_NAME, "--os-root", "/tmp/x"])) else {
            panic!("--os-root only applies to fs-sweep");
        };
        assert!(err.contains("--os-root"), "{err}");
    }

    #[test]
    fn chaos_is_routed_to_the_runtime_preset() {
        let Ok(Command::ChaosSweep(cmd)) = parse_args(&args(&[
            "sweep",
            CHAOS_NAME,
            "--scale",
            "2",
            "--out",
            "chaos.json",
        ])) else {
            panic!("expected chaos command");
        };
        assert_eq!(cmd.scale, 2);
        assert_eq!(cmd.out.as_deref(), Some("chaos.json"));
        assert!(parse_args(&args(&["sweep", CHAOS_NAME, "--serial"])).is_err());
        assert!(parse_args(&args(&["sweep", CHAOS_NAME, "--threads", "2"])).is_err());
        assert!(parse_args(&args(&["sweep", CHAOS_NAME, "--os-root", "/tmp/x"])).is_err());
    }

    #[test]
    fn baseline_gate_compares_the_chaos_stream_digest() {
        let baseline = r#"{"extra_scale":8,"suites":[
            {"suite":"s","points":[{"label":"a","steady_samples_per_sec":1000}]}],
            "runtime_chaos":{"stream_digest":"00000000deadbeef"}}"#;
        let dir = std::env::temp_dir().join("dstool_chaos_digest_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("baseline.json");
        std::fs::write(&path, baseline).unwrap();
        check_baseline(path.to_str().unwrap(), baseline, 0.10, 8).unwrap();
        // A changed digest means the faulted stream itself changed: the
        // fault schedule, the rebalance or the retry path regressed.
        let changed = baseline.replace("deadbeef", "0badf00d");
        let err = check_baseline(path.to_str().unwrap(), &changed, 0.10, 8).unwrap_err();
        assert!(
            err.contains("runtime_chaos") && err.contains("stream digest changed"),
            "{err}"
        );
    }

    #[test]
    fn fetch_sweep_is_routed_to_the_runtime_preset() {
        let Ok(Command::FetchSweep(cmd)) = parse_args(&args(&[
            "sweep",
            FETCH_SWEEP_NAME,
            "--scale",
            "2",
            "--out",
            "fetch.json",
        ])) else {
            panic!("expected fetch-sweep command");
        };
        assert_eq!(cmd.scale, 2);
        assert_eq!(cmd.out.as_deref(), Some("fetch.json"));
        // The simulator threading flags and the fs-sweep root do not apply.
        assert!(parse_args(&args(&["sweep", FETCH_SWEEP_NAME, "--serial"])).is_err());
        assert!(parse_args(&args(&["sweep", FETCH_SWEEP_NAME, "--threads", "2"])).is_err());
        assert!(parse_args(&args(&["sweep", FETCH_SWEEP_NAME, "--os-root", "/tmp/x"])).is_err());
    }

    #[test]
    fn smoke_only_accepts_every_registered_suite_name() {
        for name in smoke_only_names() {
            let Ok(Command::Smoke(cmd)) = parse_args(&args(&["smoke", "--only", name])) else {
                panic!("--only {name} should parse");
            };
            assert_eq!(cmd.only.as_deref(), Some(name));
        }
        // Without the flag, the full matrix runs.
        let Ok(Command::Smoke(cmd)) = parse_args(&args(&["smoke"])) else {
            panic!("expected smoke command");
        };
        assert!(cmd.only.is_none());
    }

    #[test]
    fn smoke_only_rejects_unknown_names_listing_the_valid_ones() {
        let Err(err) = parse_args(&args(&["smoke", "--only", "nope"])) else {
            panic!("expected an unknown-suite error");
        };
        for name in RUNTIME_PRESETS {
            assert!(err.contains(name), "--only error lists {name}: {err}");
        }
        assert!(err.contains(MEGA_SWEEP_NAME), "{err}");
        assert!(err.contains("cache-sweep"), "{err}");
    }

    #[test]
    fn smoke_only_is_mutually_exclusive_with_refresh_baseline() {
        let Err(err) = parse_args(&args(&[
            "smoke",
            "--only",
            WORKER_SWEEP_NAME,
            "--refresh-baseline",
        ])) else {
            panic!("a partial smoke must not refresh the baseline");
        };
        assert!(err.contains("--only"), "{err}");
    }

    #[test]
    fn baseline_gate_compares_the_fetch_sweep_stream_digest() {
        let baseline = r#"{"extra_scale":8,"suites":[
            {"suite":"s","points":[{"label":"a","steady_samples_per_sec":1000}]}],
            "runtime_fetch_sweep":{"stream_digest":"00000000deadbeef"}}"#;
        let dir = std::env::temp_dir().join("dstool_fetch_digest_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("baseline.json");
        std::fs::write(&path, baseline).unwrap();
        check_baseline(path.to_str().unwrap(), baseline, 0.10, 8).unwrap();
        // A changed digest means the fetch pool delivered different bytes
        // (or different counters fed the sweep): a correctness event.
        let changed = baseline.replace("deadbeef", "0badf00d");
        let err = check_baseline(path.to_str().unwrap(), &changed, 0.10, 8).unwrap_err();
        assert!(
            err.contains("runtime_fetch_sweep") && err.contains("stream digest changed"),
            "{err}"
        );
    }

    #[test]
    fn baseline_gate_compares_the_fs_sweep_stream_digest() {
        let baseline = r#"{"extra_scale":8,"suites":[
            {"suite":"s","points":[{"label":"a","steady_samples_per_sec":1000}]}],
            "runtime_fs_sweep":{"stream_digest":"00000000deadbeef"}}"#;
        let dir = std::env::temp_dir().join("dstool_fs_digest_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("baseline.json");
        std::fs::write(&path, baseline).unwrap();
        check_baseline(path.to_str().unwrap(), baseline, 0.10, 8).unwrap();
        let changed = baseline.replace("deadbeef", "0badf00d");
        let err = check_baseline(path.to_str().unwrap(), &changed, 0.10, 8).unwrap_err();
        assert!(
            err.contains("runtime_fs_sweep") && err.contains("stream digest changed"),
            "{err}"
        );
    }

    #[test]
    fn write_out_creates_parent_directories() {
        let root = std::env::temp_dir().join("dstool_write_out_test");
        let _ = std::fs::remove_dir_all(&root);
        // The directories a CI invocation would name for its artifacts
        // (`smoke --out .../BENCH_sweep.json`, `validate --out
        // .../VALIDATE.json`) do not exist yet: write_out makes them.
        for name in ["bench/BENCH_sweep.json", "validate/deep/VALIDATE.json"] {
            let path = root.join(name);
            let path = path.to_str().unwrap();
            write_out(path, "{}\n").unwrap();
            assert_eq!(std::fs::read_to_string(path).unwrap(), "{}\n");
        }
        // A bare filename (no parent) writes to the working directory
        // without tripping the mkdir path; prove it by not erroring on the
        // create_dir_all step for an empty parent.
        let bare = root.join("flat.json");
        write_out(bare.to_str().unwrap(), "x").unwrap();
    }

    #[test]
    fn write_out_names_the_path_when_it_cannot_write() {
        // A path whose parent is a *file* cannot be created: both the smoke
        // and validate writers must surface the path, not panic.
        let root = std::env::temp_dir().join("dstool_write_out_err_test");
        let _ = std::fs::remove_dir_all(&root);
        std::fs::create_dir_all(&root).unwrap();
        let blocker = root.join("blocker");
        std::fs::write(&blocker, "a file, not a directory").unwrap();
        let target = blocker.join("BENCH_sweep.json");
        let err = write_out(target.to_str().unwrap(), "{}").unwrap_err();
        assert!(
            err.contains("BENCH_sweep.json") && err.starts_with("cannot create parent"),
            "{err}"
        );
        // Writing *to* a directory fails at the write step with the path.
        let err = write_out(root.to_str().unwrap(), "{}").unwrap_err();
        assert!(err.starts_with("cannot write"), "{err}");
    }

    #[test]
    fn canonical_json_sorts_keys_and_ends_with_newline() {
        let canonical = canonical_json(r#"{"b":1,"a":{"z":true,"y":"s"}}"#);
        assert_eq!(canonical, "{\"a\":{\"y\":\"s\",\"z\":true},\"b\":1}\n");
    }

    #[test]
    fn baseline_gate_flags_regressions_and_missing_presets() {
        let baseline = r#"{"extra_scale":8,"suites":[
            {"suite":"s","points":[
                {"label":"a","steady_samples_per_sec":1000},
                {"label":"gone","steady_samples_per_sec":500}]}]}"#;
        let current = r#"{"extra_scale":8,"suites":[
            {"suite":"s","points":[
                {"label":"a","steady_samples_per_sec":850}]}]}"#;
        let dir = std::env::temp_dir().join("dstool_baseline_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("baseline.json");
        std::fs::write(&path, baseline).unwrap();
        let err = check_baseline(path.to_str().unwrap(), current, 0.10, 8).unwrap_err();
        assert!(err.contains("s/a"), "regression reported: {err}");
        assert!(err.contains("s/gone"), "missing preset reported: {err}");
        // Within tolerance: passes.
        let ok_current = r#"{"extra_scale":8,"suites":[
            {"suite":"s","points":[
                {"label":"a","steady_samples_per_sec":950},
                {"label":"gone","steady_samples_per_sec":480}]}]}"#;
        check_baseline(path.to_str().unwrap(), ok_current, 0.10, 8).unwrap();
        // A scale mismatch is an error, not a spurious regression report.
        let err = check_baseline(path.to_str().unwrap(), ok_current, 0.10, 2).unwrap_err();
        assert!(
            err.contains("extra_scale"),
            "scale mismatch reported: {err}"
        );
    }
}
