//! `ds-analyzer` — the paper's profiling tool as a command-line binary.
//!
//! Mirrors the three things DS-Analyzer does in the paper (§3.2, §3.4):
//! measure the component rates of a training job, attribute epoch time to
//! compute / prep stalls / fetch stalls, and answer what-if questions about
//! cache size, CPU cores, GPU speed and storage speed.
//!
//! ```text
//! ds_analyzer --model resnet18 --dataset imagenet-1k --server ssd-v100 \
//!             --cache-fraction 0.35 [--gpus 8] [--scale 64]
//! ```
//!
//! Run via `cargo run --release --bin ds_analyzer -- --model resnet18 ...`.
//! With no arguments it profiles the Figure 1 configuration.

use datastalls::analyzer::{Bottleneck, DifferentialReport, ProfiledRates, WhatIfAnalysis};
use datastalls::prelude::*;
use std::process::ExitCode;

/// Parsed command-line options with the Figure 1 setting as the default.
struct Options {
    model: ModelKind,
    dataset: DatasetSpec,
    server: ServerConfig,
    cache_fraction: f64,
    gpus: usize,
    scale: u64,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            model: ModelKind::ResNet18,
            dataset: DatasetSpec::imagenet_1k(),
            server: ServerConfig::config_ssd_v100(),
            cache_fraction: 0.35,
            gpus: 8,
            scale: 64,
        }
    }
}

fn parse_model(name: &str) -> Option<ModelKind> {
    let lowered = name.to_ascii_lowercase();
    ModelKind::paper_models()
        .into_iter()
        .chain([ModelKind::BertLarge, ModelKind::Gnmt])
        .find(|m| m.name().to_ascii_lowercase().replace('-', "") == lowered.replace(['-', '_'], ""))
}

fn parse_dataset(name: &str) -> Option<DatasetSpec> {
    match name.to_ascii_lowercase().as_str() {
        "imagenet-1k" | "imagenet1k" => Some(DatasetSpec::imagenet_1k()),
        "imagenet-22k" | "imagenet22k" => Some(DatasetSpec::imagenet_22k()),
        "openimages" => Some(DatasetSpec::openimages()),
        "openimages-ext" | "openimages-extended" => Some(DatasetSpec::openimages_extended()),
        "fma" => Some(DatasetSpec::fma()),
        _ => None,
    }
}

fn parse_server(name: &str) -> Option<ServerConfig> {
    match name.to_ascii_lowercase().as_str() {
        "ssd-v100" | "config-ssd-v100" => Some(ServerConfig::config_ssd_v100()),
        "hdd-1080ti" | "config-hdd-1080ti" => Some(ServerConfig::config_hdd_1080ti()),
        "highcpu-v100" => Some(ServerConfig::config_highcpu_v100()),
        _ => None,
    }
}

fn usage() -> &'static str {
    "usage: ds_analyzer [--model NAME] [--dataset NAME] [--server NAME]\n\
     \u{20}                 [--cache-fraction X] [--gpus N] [--scale N]\n\
     \n\
     models   : shufflenetv2 alexnet resnet18 squeezenet mobilenetv2 resnet50\n\
     \u{20}          vgg11 ssd-res18 audio-m5 bert-large gnmt\n\
     datasets : imagenet-1k imagenet-22k openimages openimages-ext fma\n\
     servers  : ssd-v100 hdd-1080ti highcpu-v100\n\
     scale    : divide the dataset's item count by N so the analysis runs in\n\
     \u{20}          seconds (ratios are unaffected); default 64"
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut opts = Options::default();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = || -> Result<&String, String> {
            it.next().ok_or_else(|| format!("{flag} needs a value"))
        };
        match flag.as_str() {
            "--model" => {
                let v = value()?;
                opts.model = parse_model(v).ok_or_else(|| format!("unknown model {v}"))?;
            }
            "--dataset" => {
                let v = value()?;
                opts.dataset = parse_dataset(v).ok_or_else(|| format!("unknown dataset {v}"))?;
            }
            "--server" => {
                let v = value()?;
                opts.server = parse_server(v).ok_or_else(|| format!("unknown server {v}"))?;
            }
            "--cache-fraction" => {
                let v = value()?;
                opts.cache_fraction = v
                    .parse::<f64>()
                    .ok()
                    .filter(|x| (0.0..=1.0).contains(x))
                    .ok_or_else(|| format!("cache fraction must be in [0,1], got {v}"))?;
            }
            "--gpus" => {
                let v = value()?;
                opts.gpus = v
                    .parse::<usize>()
                    .ok()
                    .filter(|&n| (1..=8).contains(&n))
                    .ok_or_else(|| format!("gpus must be 1..=8, got {v}"))?;
            }
            "--scale" => {
                let v = value()?;
                opts.scale = v
                    .parse::<u64>()
                    .ok()
                    .filter(|&n| n >= 1)
                    .ok_or_else(|| format!("scale must be >= 1, got {v}"))?;
            }
            "--help" | "-h" => return Err(usage().to_string()),
            other => return Err(format!("unknown flag {other}\n\n{}", usage())),
        }
    }
    Ok(opts)
}

fn run(opts: &Options) {
    let dataset = opts.dataset.scaled(opts.scale);
    let server = opts
        .server
        .with_cache_fraction(dataset.total_bytes(), opts.cache_fraction);
    let job = JobSpec::new(
        opts.model,
        dataset.clone(),
        opts.gpus,
        LoaderConfig::dali_best(opts.model),
    );

    println!(
        "== DS-Analyzer: {} on {} ({} GPUs, {} cores, cache = {:.0}% of {:.0} GiB {}) ==",
        opts.model.name(),
        server.name,
        opts.gpus,
        server.cpu_cores,
        opts.cache_fraction * 100.0,
        opts.dataset.total_gib(),
        opts.dataset.name,
    );

    // Phase 1-3: differential measurement.
    let report = DifferentialReport::run(&server, &job, 3);
    println!("\n-- differential report (per epoch, steady state) --");
    println!(
        "ingestion-only epoch : {:10.2} s",
        report.ingestion_epoch_secs
    );
    println!("fully-cached epoch   : {:10.2} s", report.cached_epoch_secs);
    println!("actual epoch         : {:10.2} s", report.actual_epoch_secs);
    println!(
        "prep stall {:5.1}%   fetch stall {:5.1}%   GPU busy {:5.1}%",
        report.prep_stall_fraction() * 100.0,
        report.fetch_stall_fraction() * 100.0,
        (1.0 - report.data_stall_fraction()) * 100.0
    );

    // What-if analysis.
    let rates = ProfiledRates::measure(&server, &job);
    let whatif = WhatIfAnalysis::new(rates);
    let name = |b: Bottleneck| match b {
        Bottleneck::Io => "I/O",
        Bottleneck::Cpu => "CPU (prep)",
        Bottleneck::Gpu => "GPU",
    };
    println!("\n-- component rates (samples/s) --");
    println!("GPU ingest G {:10.0}", rates.gpu_rate);
    println!("prep       P {:10.0}", rates.prep_rate);
    println!("storage    S {:10.0}", rates.storage_rate);
    println!("DRAM       C {:10.0}", rates.cache_rate);
    println!("\n-- what-if --");
    println!(
        "bottleneck at the configured cache : {}",
        name(whatif.bottleneck(opts.cache_fraction))
    );
    println!(
        "cache fraction to mask fetch stalls: {:.0}%",
        whatif.recommended_cache_fraction() * 100.0
    );
    println!(
        "CPU cores per GPU to mask prep     : {:.1}",
        whatif.recommended_cores_per_gpu(server.cpu_cores, opts.gpus)
    );
    println!(
        "2x faster GPUs                     : {:.0} -> {:.0} samples/s ({})",
        whatif.predicted_speed(opts.cache_fraction),
        whatif
            .with_faster_gpu(2.0)
            .predicted_speed(opts.cache_fraction),
        name(whatif.with_faster_gpu(2.0).bottleneck(opts.cache_fraction)),
    );
    println!(
        "NVMe-class storage (6x)            : {:.0} -> {:.0} samples/s ({})",
        whatif.predicted_speed(opts.cache_fraction),
        whatif
            .with_faster_storage(6.0)
            .predicted_speed(opts.cache_fraction),
        name(
            whatif
                .with_faster_storage(6.0)
                .bottleneck(opts.cache_fraction)
        ),
    );

    // And the fix the paper proposes: switch the loader to CoorDL.
    let dali = Experiment::on(&server).job(job.clone()).epochs(3).run();
    let coordl = Experiment::on(&server)
        .job(job.with_loader(LoaderConfig::coordl_best(opts.model)))
        .epochs(3)
        .run();
    println!(
        "\nswitching DALI -> CoorDL: {:.0} -> {:.0} samples/s ({:.2}x)",
        dali.steady_samples_per_sec(),
        coordl.steady_samples_per_sec(),
        coordl.speedup_over(&dali)
    );
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match parse_args(&args) {
        Ok(opts) => {
            run(&opts);
            ExitCode::SUCCESS
        }
        Err(msg) => {
            eprintln!("{msg}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn defaults_match_figure_one_setting() {
        let opts = parse_args(&[]).unwrap();
        assert_eq!(opts.model, ModelKind::ResNet18);
        assert_eq!(opts.dataset.name, "imagenet-1k");
        assert!((opts.cache_fraction - 0.35).abs() < 1e-12);
    }

    #[test]
    fn parses_every_flag() {
        let opts = parse_args(&args(&[
            "--model",
            "resnet50",
            "--dataset",
            "openimages-ext",
            "--server",
            "hdd-1080ti",
            "--cache-fraction",
            "0.5",
            "--gpus",
            "4",
            "--scale",
            "128",
        ]))
        .unwrap();
        assert_eq!(opts.model, ModelKind::ResNet50);
        assert_eq!(opts.dataset.name, "openimages-ext");
        assert_eq!(opts.server.name, "Config-HDD-1080Ti");
        assert_eq!(opts.gpus, 4);
        assert_eq!(opts.scale, 128);
    }

    #[test]
    fn model_names_accept_paper_spelling() {
        assert_eq!(parse_model("ShuffleNetv2"), Some(ModelKind::ShuffleNetV2));
        assert_eq!(parse_model("audio-m5"), Some(ModelKind::AudioM5));
        assert_eq!(parse_model("ssd_res18"), Some(ModelKind::SsdRes18));
        assert_eq!(parse_model("nonexistent"), None);
    }

    #[test]
    fn rejects_bad_values() {
        assert!(parse_args(&args(&["--cache-fraction", "1.5"])).is_err());
        assert!(parse_args(&args(&["--gpus", "0"])).is_err());
        assert!(parse_args(&args(&["--model"])).is_err());
        assert!(parse_args(&args(&["--bogus"])).is_err());
    }
}
